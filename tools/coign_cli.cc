// coign: the command-line face of the toolset, mirroring the paper's
// workflow over real files.
//
//   coign list
//       Applications and their Table 1 scenarios.
//   coign profile --scenario <id> [--scenario <id> ...] -o <base>
//       Scenario-based profiling of the owning application; writes
//       <base>.profile (the ICC profile log) and <base>.config (a
//       profiling-mode configuration record carrying the classification
//       table).
//   coign analyze -i <base> [--network <name>] [--dot <file>]
//       Combines the profile with a fitted network profile, cuts the
//       graph, prints the distribution report and hot spots, and writes
//       <base>.dist (a distributed-mode configuration record: the data the
//       binary rewriter would put into the application binary).
//   coign measure -i <base> --scenario <id> [--network <name>]
//       Runs the scenario under the developer default and under the
//       distribution in <base>.dist; prints a Table 4 style row.
//   coign online -i <base> --scenario <id> [--scenario <id> ...]
//               [--network <name>] [--cycles <n>] [--reps <n>]
//       Replays the scenarios as a cyclic phase-shifting workload under
//       the distribution in <base>.dist, once statically and once with
//       the online repartitioner adapting as usage drifts from the
//       profile; prints both runs and the adaptation statistics.
//   coign chaos -i <base> --scenario <id> [--scenario <id> ...]
//              [--network <name>] [--cycles <n>] [--reps <n>]
//              [--seed <n>] [--drop <p>] [--corrupt-rate <p>]
//       Replays the same workload under a seeded random fault schedule
//       (loss/duplication/reorder bursts, latency and bandwidth spikes,
//       partitions, crash-restart) with the hardened transport: static
//       distribution, adaptive with fault quarantine, and adaptive with
//       quarantine disabled. Fully deterministic per seed — identical
//       invocations print identical bytes.
//   coign fleet -i <base> [--clients <n>] [--threads <n>] [--seed <n>]
//       Plans the profiled application for a simulated fleet of clients
//       with heterogeneous measured networks: cohorts by log-bucketed
//       link parameters, one cut per cohort across a worker pool, plans
//       served from the (profile x bucket) LRU cache. Runs the fleet
//       twice to exercise the cache and reports per-client execution-time
//       regret vs individually optimal cuts. Output is deterministic per
//       seed regardless of thread count.
//
// Networks: isdn, 10baset, 100baset, atm, san.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/dot_export.h"
#include "src/analysis/engine.h"
#include "src/analysis/hotspots.h"
#include "src/analysis/report.h"
#include "src/apps/suite.h"
#include "src/fault/injector.h"
#include "src/fleet/fingerprint.h"
#include "src/fleet/service.h"
#include "src/net/network_profiler.h"
#include "src/obs/obs.h"
#include "src/sim/fleet_population.h"
#include "src/online/measure_online.h"
#include "src/profile/log_file.h"
#include "src/runtime/rte.h"
#include "src/sim/measurement.h"
#include "src/support/str_util.h"

namespace coign {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  coign list\n"
               "  coign profile --scenario <id> [--scenario <id> ...] -o <base>\n"
               "  coign analyze -i <base> [--network <name>] [--dot <file>]\n"
               "  coign measure -i <base> --scenario <id> [--network <name>]\n"
               "  coign online -i <base> --scenario <id> [--scenario <id> ...]\n"
               "              [--network <name>] [--cycles <n>] [--reps <n>]\n"
               "              [--cold-cuts] [--trace-out <file>] [--metrics-out <file>]\n"
               "  coign chaos -i <base> --scenario <id> [--scenario <id> ...]\n"
               "             [--network <name>] [--cycles <n>] [--reps <n>]\n"
               "             [--seed <n>] [--drop <p>] [--corrupt-rate <p>] [--storm]\n"
               "             [--cold-cuts] [--trace-out <file>] [--metrics-out <file>]\n"
               "  coign fleet -i <base> [--clients <n>] [--threads <n>] [--seed <n>]\n"
               "             [--cache-file <path>] [--lossy <fraction>]\n"
               "             [--trace-out <file>] [--metrics-out <file>]\n");
  return 2;
}

Result<NetworkModel> NetworkByName(const std::string& name) {
  if (name == "isdn") {
    return NetworkModel::Isdn();
  }
  if (name == "10baset") {
    return NetworkModel::TenBaseT();
  }
  if (name == "100baset") {
    return NetworkModel::HundredBaseT();
  }
  if (name == "atm") {
    return NetworkModel::Atm155();
  }
  if (name == "san") {
    return NetworkModel::San();
  }
  return NotFoundError("unknown network (use isdn|10baset|100baset|atm|san): " + name);
}

Status WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot write " + path);
  }
  out << text;
  return out.good() ? Status::Ok() : InternalError("short write to " + path);
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Flags {
  std::vector<std::string> scenarios;
  std::string output_base;
  std::string input_base;
  std::string network = "10baset";
  std::string dot_path;
  int cycles = 2;
  int reps = 3;
  uint64_t seed = 42;
  double drop = 0.01;
  // chaos --corrupt-rate: bad-state payload-corruption probability. > 0
  // adds corrupt-burst episodes (per-direction in storm mode) and arms the
  // circuit breaker + degrade-to-local safe mode on the hardened run.
  double corrupt_rate = 0.0;
  int clients = 2000;
  int threads = 8;
  // chaos --storm: crash-storm schedule with coordinator crashes forced
  // mid-migration (exercises journaled recovery end to end).
  bool storm = false;
  // fleet --cache-file: load the plan cache from this path when present,
  // save it back after planning (warm restarts).
  std::string cache_file;
  // fleet --lossy: fraction of generated clients with a lossy link (they
  // cohort separately from clean clients and get loss-inflated plans).
  double lossy_fraction = 0.25;
  // --trace-out / --metrics-out: write the run's Chrome trace_event JSON
  // and metrics snapshot. Deterministic: same seed, byte-identical files.
  std::string trace_out;
  std::string metrics_out;
  // online/chaos --cold-cuts: re-cut with the paper's relabel-to-front
  // algorithm instead of the warm-started push-relabel engine. Exactness
  // says both produce identical partitions; CI diffs the two runs'
  // reports to prove it end to end.
  bool cold_cuts = false;
};

Result<Flags> ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return InvalidArgumentError("missing value after " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--scenario") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      flags.scenarios.push_back(*value);
    } else if (arg == "-o") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      flags.output_base = *value;
    } else if (arg == "-i") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      flags.input_base = *value;
    } else if (arg == "--network") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      flags.network = *value;
    } else if (arg == "--dot") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      flags.dot_path = *value;
    } else if (arg == "--cycles" || arg == "--reps" || arg == "--clients" ||
               arg == "--threads") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      const int parsed = std::atoi(value->c_str());
      if (parsed <= 0) {
        return InvalidArgumentError(arg + " wants a positive integer, got " + *value);
      }
      (arg == "--cycles"    ? flags.cycles
       : arg == "--reps"    ? flags.reps
       : arg == "--clients" ? flags.clients
                            : flags.threads) = parsed;
    } else if (arg == "--seed") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      flags.seed = std::strtoull(value->c_str(), nullptr, 10);
    } else if (arg == "--drop" || arg == "--corrupt-rate") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      const double parsed = std::atof(value->c_str());
      if (parsed < 0.0 || parsed >= 1.0) {
        return InvalidArgumentError(arg + " wants a probability in [0, 1), got " + *value);
      }
      (arg == "--drop" ? flags.drop : flags.corrupt_rate) = parsed;
    } else if (arg == "--storm") {
      flags.storm = true;
    } else if (arg == "--cold-cuts") {
      flags.cold_cuts = true;
    } else if (arg == "--cache-file") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      flags.cache_file = *value;
    } else if (arg == "--lossy") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      const double parsed = std::atof(value->c_str());
      if (parsed < 0.0 || parsed > 1.0) {
        return InvalidArgumentError(arg + " wants a fraction in [0, 1], got " + *value);
      }
      flags.lossy_fraction = parsed;
    } else if (arg == "--trace-out") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      flags.trace_out = *value;
    } else if (arg == "--metrics-out") {
      Result<std::string> value = next();
      if (!value.ok()) {
        return value.status();
      }
      flags.metrics_out = *value;
    } else {
      return InvalidArgumentError("unknown flag: " + arg);
    }
  }
  return flags;
}

// Builds the run's Observability when either output flag was given; null
// (and therefore zero instrumentation cost) otherwise. Flight-recorder
// dumps land next to the trace file.
std::unique_ptr<Observability> MakeObservability(const Flags& flags) {
  if (flags.trace_out.empty() && flags.metrics_out.empty()) {
    return nullptr;
  }
  auto obs = std::make_unique<Observability>();
  if (!flags.trace_out.empty()) {
    obs->SetDumpPrefix(flags.trace_out + ".dump");
  }
  return obs;
}

// Writes the --trace-out / --metrics-out artifacts for a finished run.
int DumpObservability(Observability& obs, const Flags& flags) {
  if (!flags.trace_out.empty()) {
    const Status wrote = obs.WriteTrace(flags.trace_out);
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%llu event(s), %llu dropped)\n", flags.trace_out.c_str(),
                static_cast<unsigned long long>(obs.tracer().recorded()),
                static_cast<unsigned long long>(obs.tracer().dropped()));
  }
  if (!flags.metrics_out.empty()) {
    const Status wrote = obs.WriteMetrics(flags.metrics_out);
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.metrics_out.c_str());
  }
  return 0;
}

int CmdList() {
  for (const std::unique_ptr<Application>& app : BuildApplicationSuite()) {
    std::printf("%s\n", app->name().c_str());
    for (const Scenario& scenario : app->Scenarios()) {
      std::printf("  %-10s %s\n", scenario.id.c_str(), scenario.description.c_str());
    }
  }
  return 0;
}

int CmdProfile(const Flags& flags) {
  if (flags.scenarios.empty() || flags.output_base.empty()) {
    return Usage();
  }
  Result<std::unique_ptr<Application>> app =
      BuildApplicationForScenario(flags.scenarios.front());
  if (!app.ok()) {
    std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return 1;
  }

  ObjectSystem system;
  Status installed = (*app)->Install(&system);
  if (!installed.ok()) {
    std::fprintf(stderr, "%s\n", installed.ToString().c_str());
    return 1;
  }
  BinaryRewriter rewriter;
  Result<ApplicationImage> image = rewriter.Instrument((*app)->Image(), ConfigurationRecord());
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<CoignRuntime>> runtime = CoignRuntime::LoadFromImage(&system, *image);
  if (!runtime.ok()) {
    std::fprintf(stderr, "%s\n", runtime.status().ToString().c_str());
    return 1;
  }

  Rng rng(17);
  for (const std::string& id : flags.scenarios) {
    Result<Scenario> scenario = (*app)->FindScenario(id);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
      return 1;
    }
    (*runtime)->BeginScenario();
    const Status run = scenario->run(system, rng);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", id.c_str(), run.ToString().c_str());
      return 1;
    }
    system.DestroyAll();
    std::printf("profiled %s\n", id.c_str());
  }

  const IccProfile& profile = (*runtime)->profiling_logger()->profile();
  const Status wrote_profile =
      WriteProfileFile(profile, flags.output_base + ".profile");
  if (!wrote_profile.ok()) {
    std::fprintf(stderr, "%s\n", wrote_profile.ToString().c_str());
    return 1;
  }
  ConfigurationRecord config;
  config.classifier_table = (*runtime)->classifier().ExportDescriptors();
  const Status wrote_config =
      WriteFile(flags.output_base + ".config", config.Serialize());
  if (!wrote_config.ok()) {
    std::fprintf(stderr, "%s\n", wrote_config.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s.profile (%llu calls, %zu classifications) and %s.config\n",
              flags.output_base.c_str(),
              static_cast<unsigned long long>(profile.total_calls()),
              profile.classifications().size(), flags.output_base.c_str());
  return 0;
}

int CmdAnalyze(const Flags& flags) {
  if (flags.input_base.empty()) {
    return Usage();
  }
  Result<IccProfile> profile = ReadProfileFile(flags.input_base + ".profile");
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  Result<std::string> config_text = ReadFile(flags.input_base + ".config");
  if (!config_text.ok()) {
    std::fprintf(stderr, "%s\n", config_text.status().ToString().c_str());
    return 1;
  }
  Result<ConfigurationRecord> config = ConfigurationRecord::Parse(*config_text);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  Result<NetworkModel> network = NetworkByName(flags.network);
  if (!network.ok()) {
    std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
    return 1;
  }

  Rng rng(23);
  NetworkProfiler profiler;
  const NetworkProfile fitted = profiler.Profile(Transport(*network), rng);
  std::printf("network %s: %.1f us/message + %.1f ns/byte (r^2 %.4f)\n\n",
              fitted.network_name.c_str(), fitted.per_message_seconds * 1e6,
              fitted.seconds_per_byte * 1e9, fitted.fit_r_squared);

  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(*profile, fitted);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", DistributionReport(*profile, *analysis).c_str());
  std::printf("%s\n", HotSpotReport(FindHotSpots(*profile, analysis->distribution, fitted,
                                                 nullptr, 8))
                          .c_str());

  config->mode = RuntimeMode::kDistributed;
  config->distribution = analysis->distribution;
  const Status wrote = WriteFile(flags.input_base + ".dist", config->Serialize());
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s.dist\n", flags.input_base.c_str());

  if (!flags.dot_path.empty()) {
    const Status dot = WriteDistributionDot(*profile, *analysis, flags.dot_path);
    if (!dot.ok()) {
      std::fprintf(stderr, "%s\n", dot.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.dot_path.c_str());
  }
  return 0;
}

int CmdMeasure(const Flags& flags) {
  if (flags.input_base.empty() || flags.scenarios.size() != 1) {
    return Usage();
  }
  const std::string& scenario_id = flags.scenarios.front();
  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(scenario_id);
  if (!app.ok()) {
    std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return 1;
  }
  Result<std::string> dist_text = ReadFile(flags.input_base + ".dist");
  if (!dist_text.ok()) {
    std::fprintf(stderr, "%s (run `coign analyze` first)\n",
                 dist_text.status().ToString().c_str());
    return 1;
  }
  Result<ConfigurationRecord> config = ConfigurationRecord::Parse(*dist_text);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  Result<NetworkModel> network = NetworkByName(flags.network);
  if (!network.ok()) {
    std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
    return 1;
  }

  MeasurementOptions options;
  options.network = *network;
  Rng rng(17);

  double default_seconds = 0.0;
  {
    ObjectSystem system;
    Status installed = (*app)->Install(&system);
    if (!installed.ok()) {
      return 1;
    }
    const ClassPlacement placement = (*app)->DefaultPlacement(system);
    system.SetPlacementPolicy(placement.AsPolicy());
    Result<Scenario> scenario = (*app)->FindScenario(scenario_id);
    Result<RunMeasurement> run = MeasureRun(
        system, [&](ObjectSystem& sys) { return scenario->run(sys, rng); }, options);
    if (!run.ok()) {
      std::fprintf(stderr, "default run: %s\n", run.status().ToString().c_str());
      return 1;
    }
    default_seconds = run->communication_seconds;
  }

  double coign_seconds = 0.0;
  {
    ObjectSystem system;
    Status installed = (*app)->Install(&system);
    if (!installed.ok()) {
      return 1;
    }
    CoignRuntime runtime(&system, *config);
    runtime.BeginScenario();
    Result<Scenario> scenario = (*app)->FindScenario(scenario_id);
    Result<RunMeasurement> run = MeasureRun(
        system, [&](ObjectSystem& sys) { return scenario->run(sys, rng); }, options);
    if (!run.ok()) {
      std::fprintf(stderr, "coign run: %s\n", run.status().ToString().c_str());
      return 1;
    }
    coign_seconds = run->communication_seconds;
  }

  const double savings =
      default_seconds > 0.0 ? 100.0 * (1.0 - coign_seconds / default_seconds) : 0.0;
  std::printf("%-10s | default %.3f s | coign %.3f s | savings %.0f%%\n",
              scenario_id.c_str(), default_seconds, coign_seconds, savings);
  return 0;
}

int CmdOnline(const Flags& flags) {
  if (flags.input_base.empty() || flags.scenarios.empty()) {
    return Usage();
  }
  Result<std::unique_ptr<Application>> app =
      BuildApplicationForScenario(flags.scenarios.front());
  if (!app.ok()) {
    std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return 1;
  }
  Result<IccProfile> profile = ReadProfileFile(flags.input_base + ".profile");
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  Result<std::string> dist_text = ReadFile(flags.input_base + ".dist");
  if (!dist_text.ok()) {
    std::fprintf(stderr, "%s (run `coign analyze` first)\n",
                 dist_text.status().ToString().c_str());
    return 1;
  }
  Result<ConfigurationRecord> config = ConfigurationRecord::Parse(*dist_text);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  Result<NetworkModel> network = NetworkByName(flags.network);
  if (!network.ok()) {
    std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
    return 1;
  }

  Rng rng(23);
  NetworkProfiler profiler;

  OnlineMeasurementOptions options;
  options.network = *network;
  options.fitted = profiler.Profile(Transport(*network), rng);
  if (flags.cold_cuts) {
    options.online.analysis.algorithm = CutAlgorithm::kRelabelToFront;
  }

  const std::vector<OnlinePhase> workload =
      CyclicWorkload(flags.scenarios, flags.reps, flags.cycles);
  std::printf("workload: %zu scenario(s) x %d rep(s) x %d cycle(s) = %zu epochs on %s\n",
              flags.scenarios.size(), flags.reps, flags.cycles, workload.size() *
                  static_cast<size_t>(flags.reps), network->name.c_str());

  options.adaptive = false;
  Result<OnlineRunResult> fixed =
      MeasureOnlineRun(**app, workload, *config, *profile, options);
  if (!fixed.ok()) {
    std::fprintf(stderr, "static run: %s\n", fixed.status().ToString().c_str());
    return 1;
  }
  // Instrumentation rides the adaptive run only; the static baseline stays
  // byte-identical to an untraced invocation.
  std::unique_ptr<Observability> obs = MakeObservability(flags);
  options.adaptive = true;
  options.obs = obs.get();
  Result<OnlineRunResult> adaptive =
      MeasureOnlineRun(**app, workload, *config, *profile, options);
  if (!adaptive.ok()) {
    std::fprintf(stderr, "adaptive run: %s\n", adaptive.status().ToString().c_str());
    return 1;
  }

  std::printf("static   | comm %.3f s | exec %.3f s\n",
              fixed->run.communication_seconds, fixed->run.execution_seconds);
  std::printf("adaptive | comm %.3f s | exec %.3f s | %llu repartitions, %llu moves\n",
              adaptive->run.communication_seconds, adaptive->run.execution_seconds,
              static_cast<unsigned long long>(adaptive->online.repartitions),
              static_cast<unsigned long long>(adaptive->online.instances_moved));
  std::printf("%s\n", adaptive->online.ToString().c_str());
  std::printf("final drift: %s\n", adaptive->final_drift.ToString().c_str());
  const double savings =
      fixed->run.execution_seconds > 0.0
          ? 100.0 * (1.0 - adaptive->run.execution_seconds / fixed->run.execution_seconds)
          : 0.0;
  std::printf("online adaptation saves %.1f%% vs the shipped static distribution\n",
              savings);
  if (obs != nullptr) {
    return DumpObservability(*obs, flags);
  }
  return 0;
}

int CmdChaos(const Flags& flags) {
  if (flags.input_base.empty() || flags.scenarios.empty()) {
    return Usage();
  }
  Result<std::unique_ptr<Application>> app =
      BuildApplicationForScenario(flags.scenarios.front());
  if (!app.ok()) {
    std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return 1;
  }
  Result<IccProfile> profile = ReadProfileFile(flags.input_base + ".profile");
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  Result<std::string> dist_text = ReadFile(flags.input_base + ".dist");
  if (!dist_text.ok()) {
    std::fprintf(stderr, "%s (run `coign analyze` first)\n",
                 dist_text.status().ToString().c_str());
    return 1;
  }
  Result<ConfigurationRecord> config = ConfigurationRecord::Parse(*dist_text);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  Result<NetworkModel> network = NetworkByName(flags.network);
  if (!network.ok()) {
    std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
    return 1;
  }

  Rng rng(23);
  NetworkProfiler profiler;
  OnlineMeasurementOptions options;
  options.network = *network;
  options.fitted = profiler.Profile(Transport(*network), rng);
  options.retry = SuggestedRetryPolicy(*network);
  if (flags.cold_cuts) {
    options.online.analysis.algorithm = CutAlgorithm::kRelabelToFront;
  }

  const std::vector<OnlinePhase> workload =
      CyclicWorkload(flags.scenarios, flags.reps, flags.cycles);

  // The fault-free static run sizes the schedule horizon in modeled time.
  options.adaptive = false;
  Result<OnlineRunResult> clean_static =
      MeasureOnlineRun(**app, workload, *config, *profile, options);
  if (!clean_static.ok()) {
    std::fprintf(stderr, "fault-free static run: %s\n",
                 clean_static.status().ToString().c_str());
    return 1;
  }
  options.adaptive = true;
  Result<OnlineRunResult> clean_adaptive =
      MeasureOnlineRun(**app, workload, *config, *profile, options);
  if (!clean_adaptive.ok()) {
    std::fprintf(stderr, "fault-free adaptive run: %s\n",
                 clean_adaptive.status().ToString().c_str());
    return 1;
  }

  FaultSchedule schedule;
  if (flags.storm) {
    CrashStormOptions storm_options;
    storm_options.horizon_seconds = clean_static->run.execution_seconds;
    storm_options.corruption_rate = flags.corrupt_rate;
    schedule = FaultSchedule::CrashStorm(storm_options, flags.seed);
  } else {
    RandomFaultOptions fault_options;
    fault_options.horizon_seconds = clean_static->run.execution_seconds;
    fault_options.mean_duration_seconds = fault_options.horizon_seconds / 8.0;
    if (flags.corrupt_rate > 0.0) {
      // The flag caps the drawn bad-state corrupt probability, so the
      // requested rate is the storm's worst case.
      fault_options.corrupt_burst_max = flags.corrupt_rate;
    }
    schedule = FaultSchedule::Random(fault_options, flags.seed);
  }
  FaultRates background;
  background.drop = flags.drop;

  std::printf("chaos seed %llu on %s%s: %zu episode(s), background drop %.1f%%",
              static_cast<unsigned long long>(flags.seed), network->name.c_str(),
              flags.storm ? " (crash storm)" : "",
              schedule.episodes().size(), 100.0 * flags.drop);
  if (flags.corrupt_rate > 0.0) {
    std::printf(", corrupt rate %.1f%%", 100.0 * flags.corrupt_rate);
  }
  std::printf("\n");
  std::printf("%s\n\n", schedule.ToString().c_str());
  std::printf("%-26s %10s %10s %7s %6s %12s\n", "run", "comm (s)", "exec (s)", "recuts",
              "moves", "quarantined");

  const auto print_row = [](const char* label, const OnlineRunResult& result,
                            bool adaptive) {
    if (adaptive) {
      std::printf("%-26s %10.3f %10.3f %7llu %6llu %12llu\n", label,
                  result.run.communication_seconds, result.run.execution_seconds,
                  static_cast<unsigned long long>(result.online.repartitions),
                  static_cast<unsigned long long>(result.online.instances_moved),
                  static_cast<unsigned long long>(result.online.quarantined_epochs));
    } else {
      std::printf("%-26s %10.3f %10.3f %7s %6s %12s\n", label,
                  result.run.communication_seconds, result.run.execution_seconds, "-",
                  "-", "-");
    }
  };
  print_row("fault-free static", *clean_static, false);
  print_row("fault-free adaptive", *clean_adaptive, true);

  // Each faulted run replays the identical schedule with a fresh injector
  // so the three runs (and any rerun of this command) see the same network.
  const auto faulted_run = [&](bool adaptive, bool quarantine,
                               Observability* obs) -> Result<OnlineRunResult> {
    FaultInjector injector(schedule, background, flags.seed + 1);
    injector.SetObservability(obs);
    OnlineMeasurementOptions run_options = options;
    run_options.adaptive = adaptive;
    run_options.faults = &injector;
    run_options.obs = obs;
    run_options.online.quarantine.enabled = quarantine;
    // Corruption runs arm the circuit breaker on the hardened
    // configuration only: the comparison run shows what quarantine alone
    // does against a poisoned wire.
    run_options.online.breaker.enabled = quarantine && flags.corrupt_rate > 0.0;
    // Storm mode forces coordinator crashes mid-migration: a deterministic
    // countdown gate (seeded, re-arming with a doubling interval, three
    // crashes per run) interrupts the journaled protocol so recovery and
    // resume run end to end.
    struct StormGate {
      uint64_t step = 0;
      uint64_t next = 0;
      int crashes_left = 3;
    };
    auto gate = std::make_shared<StormGate>();
    if (flags.storm && adaptive) {
      gate->next = 3 + flags.seed % 5;
      run_options.migration_crash_gate = [gate]() {
        if (gate->crashes_left <= 0) {
          return false;
        }
        if (++gate->step >= gate->next) {
          gate->step = 0;
          gate->next *= 2;
          --gate->crashes_left;
          return true;
        }
        return false;
      };
    }
    Result<OnlineRunResult> result =
        MeasureOnlineRun(**app, workload, *config, *profile, run_options);
    if (result.ok() && adaptive && quarantine) {
      std::printf("faults: %s\n", injector.stats().ToString().c_str());
    }
    return result;
  };

  // Only the fully hardened run (adaptive + quarantine) is traced: that is
  // the configuration a deployment would fly, and the one whose quarantine
  // entries and migration recoveries are worth a flight-recorder dump.
  std::unique_ptr<Observability> obs = MakeObservability(flags);

  Result<OnlineRunResult> faulted_static = faulted_run(false, true, nullptr);
  if (!faulted_static.ok()) {
    std::fprintf(stderr, "static under faults: %s\n",
                 faulted_static.status().ToString().c_str());
    return 1;
  }
  print_row("static under faults", *faulted_static, false);
  Result<OnlineRunResult> naive = faulted_run(true, false, nullptr);
  if (!naive.ok()) {
    std::fprintf(stderr, "adaptive (no quarantine): %s\n",
                 naive.status().ToString().c_str());
    return 1;
  }
  print_row("adaptive (no quarantine)", *naive, true);
  Result<OnlineRunResult> quarantined = faulted_run(true, true, obs.get());
  if (!quarantined.ok()) {
    std::fprintf(stderr, "adaptive (quarantine): %s\n",
                 quarantined.status().ToString().c_str());
    return 1;
  }
  print_row("adaptive (quarantine)", *quarantined, true);

  std::printf("\nonline: %s\n", quarantined->online.ToString().c_str());
  const double ratio =
      clean_adaptive->run.execution_seconds > 0.0
          ? quarantined->run.execution_seconds / clean_adaptive->run.execution_seconds
          : 0.0;
  std::printf(
      "chaos summary: quarantine recuts=%llu naive recuts=%llu quarantined_epochs=%llu "
      "interrupted=%llu resumes=%llu exec vs fault-free adaptive=%.2fx",
      static_cast<unsigned long long>(quarantined->online.repartitions),
      static_cast<unsigned long long>(naive->online.repartitions),
      static_cast<unsigned long long>(quarantined->online.quarantined_epochs),
      static_cast<unsigned long long>(quarantined->online.interrupted_migrations),
      static_cast<unsigned long long>(quarantined->online.migration_resumes), ratio);
  if (flags.corrupt_rate > 0.0) {
    // Integrity verdict: every checksum-rejected delivery was retried
    // instead of consumed, so the storm must not have been able to steer
    // the final partition away from the fault-free adaptive run's.
    const bool same_partition =
        quarantined->final_distribution.placement ==
            clean_adaptive->final_distribution.placement &&
        quarantined->final_distribution.default_machine ==
            clean_adaptive->final_distribution.default_machine;
    std::printf(
        " corrupt_rejected=%llu corrupt_consumed=%llu breaker_trips=%llu "
        "safe_mode_epochs=%llu partitions_match=%s",
        static_cast<unsigned long long>(quarantined->transport.corrupt_rejected),
        static_cast<unsigned long long>(quarantined->transport.corrupt_consumed),
        static_cast<unsigned long long>(quarantined->online.breaker_trips),
        static_cast<unsigned long long>(quarantined->online.safe_mode_epochs),
        same_partition ? "yes" : "no");
  }
  std::printf("\n");
  if (obs != nullptr) {
    return DumpObservability(*obs, flags);
  }
  return 0;
}

int CmdFleet(const Flags& flags) {
  if (flags.input_base.empty()) {
    return Usage();
  }
  Result<IccProfile> profile = ReadProfileFile(flags.input_base + ".profile");
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }

  FleetPopulationOptions population;
  population.client_count = flags.clients;
  population.lossy_fraction = flags.lossy_fraction;
  const std::vector<FleetClient> fleet = GenerateFleet(population, flags.seed);
  size_t lossy_clients = 0;
  for (const FleetClient& client : fleet) {
    if (client.fault_rates.drop > 0.0) {
      ++lossy_clients;
    }
  }

  std::unique_ptr<Observability> obs = MakeObservability(flags);
  FleetServiceOptions options;
  options.worker_threads = flags.threads;
  options.compute_regret = true;
  options.obs = obs.get();
  FleetPartitionService service(options);

  std::printf("fleet: %d client(s) (%zu lossy), seed %llu, %d thread(s), "
              "profile %016llx\n",
              flags.clients, lossy_clients,
              static_cast<unsigned long long>(flags.seed), flags.threads,
              static_cast<unsigned long long>(ProfileFingerprint(*profile)));

  // Warm start: a restarted service reloads its persisted plan cache and
  // serves repeat fleets without recomputing a single cut.
  if (!flags.cache_file.empty()) {
    const Status loaded = service.LoadCache(flags.cache_file);
    if (loaded.ok()) {
      std::printf("plan cache: loaded %zu entr%s from %s\n", service.cache_size(),
                  service.cache_size() == 1 ? "y" : "ies", flags.cache_file.c_str());
    } else if (loaded.code() == StatusCode::kNotFound) {
      std::printf("plan cache: %s not found, starting cold\n", flags.cache_file.c_str());
    } else {
      std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
      return 1;
    }
  }

  // Two passes over the same fleet: the first fills the plan cache, the
  // second is served from it — the steady state of a long-running service.
  for (int pass = 1; pass <= 2; ++pass) {
    Result<FleetPlanResult> planned = service.Plan(*profile, fleet);
    if (!planned.ok()) {
      std::fprintf(stderr, "pass %d: %s\n", pass, planned.status().ToString().c_str());
      return 1;
    }
    std::printf("\npass %d: %s\n", pass, planned->stats.ToString().c_str());
    if (pass == 1) {
      std::printf("%-16s %8s %12s %12s %8s %10s\n", "cohort", "clients", "lat (us)",
                  "bw (MB/s)", "srv cls", "comm (s)");
      for (const CohortPlan& plan : planned->plans) {
        std::printf("%-16s %8zu %12.1f %12.2f %8zu %10.4f\n",
                    plan.cohort.key.ToString().c_str(), plan.cohort.members.size(),
                    plan.cohort.representative.per_message_seconds * 1e6,
                    plan.cohort.representative.bytes_per_second / 1e6,
                    plan.analysis.server_classifications,
                    plan.analysis.predicted_comm_seconds);
      }
    }
    std::printf("%s\n", planned->regret.ToString().c_str());
  }
  std::printf("\n%s\n", service.cache_stats().ToString().c_str());
  if (!flags.cache_file.empty()) {
    const Status saved = service.SaveCache(flags.cache_file);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("plan cache: saved %zu entr%s to %s\n", service.cache_size(),
                service.cache_size() == 1 ? "y" : "ies", flags.cache_file.c_str());
  }
  if (obs != nullptr) {
    return DumpObservability(*obs, flags);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "list") {
    return CmdList();
  }
  Result<Flags> flags = ParseFlags(argc, argv, 2);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return Usage();
  }
  if (command == "profile") {
    return CmdProfile(*flags);
  }
  if (command == "analyze") {
    return CmdAnalyze(*flags);
  }
  if (command == "measure") {
    return CmdMeasure(*flags);
  }
  if (command == "online") {
    return CmdOnline(*flags);
  }
  if (command == "chaos") {
    return CmdChaos(*flags);
  }
  if (command == "fleet") {
    return CmdFleet(*flags);
  }
  return Usage();
}

}  // namespace
}  // namespace coign

int main(int argc, char** argv) { return coign::Main(argc, argv); }
