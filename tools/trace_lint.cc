// trace_lint: validates Chrome trace_event JSON written by --trace-out and
// the flight-recorder dumps.
//
//   trace_lint [--require <name>]... <file.json> [more files...]
//
// Checks, per file: the bytes parse as JSON (a small built-in parser — the
// repo takes no JSON dependency), the root carries a "traceEvents" array,
// and every event has the fields a trace viewer needs: a name, a known
// phase ("X" complete / "i" instant / "C" counter), numeric pid/tid, a
// non-negative "ts", a non-negative "dur" on complete events, an "s"
// scope on instants, and a non-empty all-numeric "args" series object on
// counters. Each --require <name> (repeatable) must appear across the
// linted files as an event name or a counter-series key — CI uses this to
// pin the observability contract (e.g. transport.corrupt_rejected,
// breaker.state) so instrumentation cannot silently vanish. Exit 0 with a
// per-file summary, or 1 on the first malformed file or a missing
// required name — CI runs this over freshly written traces so a formatting
// regression in the exporter fails the build, not the viewer.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- Minimal JSON parser ----------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  JsonArray array;
  JsonObject object;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::shared_ptr<JsonValue> Parse(std::string* error) {
    std::shared_ptr<JsonValue> value = ParseValue();
    SkipSpace();
    if (value == nullptr) {
      *error = error_;
      return nullptr;
    }
    if (pos_ != text_.size()) {
      *error = Where("trailing bytes after the JSON value");
      return nullptr;
    }
    return value;
  }

 private:
  std::string Where(const std::string& message) {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
      }
    }
    return message + " (line " + std::to_string(line) + ")";
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::shared_ptr<JsonValue> Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = Where(message);
    }
    return nullptr;
  }

  std::shared_ptr<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      return ParseString();
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    return ParseKeyword();
  }

  std::shared_ptr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kObject;
    if (Consume('}')) {
      return value;
    }
    while (true) {
      SkipSpace();
      std::shared_ptr<JsonValue> key = ParseString();
      if (key == nullptr) {
        return Fail("expected object key");
      }
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      std::shared_ptr<JsonValue> member = ParseValue();
      if (member == nullptr) {
        return nullptr;
      }
      value->object[key->string] = member;
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return value;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  std::shared_ptr<JsonValue> ParseArray() {
    ++pos_;  // '['
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kArray;
    if (Consume(']')) {
      return value;
    }
    while (true) {
      std::shared_ptr<JsonValue> element = ParseValue();
      if (element == nullptr) {
        return nullptr;
      }
      value->array.push_back(element);
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return value;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  std::shared_ptr<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return value;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        value->string += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': value->string += '"'; break;
        case '\\': value->string += '\\'; break;
        case '/': value->string += '/'; break;
        case 'b': value->string += '\b'; break;
        case 'f': value->string += '\f'; break;
        case 'n': value->string += '\n'; break;
        case 'r': value->string += '\r'; break;
        case 't': value->string += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          // The lint cares about well-formedness, not the decoded rune.
          value->string += '?';
          pos_ += 4;
          break;
        }
        default:
          return Fail("unknown escape in string");
      }
    }
    return Fail("unterminated string");
  }

  std::shared_ptr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    try {
      auto value = std::make_shared<JsonValue>();
      value->kind = JsonValue::Kind::kNumber;
      size_t used = 0;
      value->number = std::stod(token, &used);
      if (used != token.size()) {
        return Fail("malformed number: " + token);
      }
      return value;
    } catch (...) {
      return Fail("malformed number: " + token);
    }
  }

  std::shared_ptr<JsonValue> ParseKeyword() {
    const auto match = [&](const char* word) {
      const size_t n = std::string(word).size();
      if (text_.compare(pos_, n, word) == 0) {
        pos_ += n;
        return true;
      }
      return false;
    };
    auto value = std::make_shared<JsonValue>();
    if (match("true")) {
      value->kind = JsonValue::Kind::kBool;
      value->boolean = true;
      return value;
    }
    if (match("false")) {
      value->kind = JsonValue::Kind::kBool;
      return value;
    }
    if (match("null")) {
      return value;
    }
    return Fail("expected a JSON value");
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// --- trace_event checks -----------------------------------------------------

const JsonValue* Field(const JsonObject& object, const std::string& key) {
  auto it = object.find(key);
  return it == object.end() ? nullptr : it->second.get();
}

bool LintEvent(const JsonValue& event, size_t index, std::set<std::string>* seen,
               std::string* error) {
  const auto fail = [&](const std::string& message) {
    *error = "event " + std::to_string(index) + ": " + message;
    return false;
  };
  if (event.kind != JsonValue::Kind::kObject) {
    return fail("not an object");
  }
  const JsonValue* name = Field(event.object, "name");
  if (name == nullptr || name->kind != JsonValue::Kind::kString || name->string.empty()) {
    return fail("missing or empty \"name\"");
  }
  seen->insert(name->string);
  const JsonValue* ph = Field(event.object, "ph");
  if (ph == nullptr || ph->kind != JsonValue::Kind::kString) {
    return fail("missing \"ph\"");
  }
  if (ph->string != "X" && ph->string != "i" && ph->string != "C") {
    return fail("unknown phase \"" + ph->string + "\"");
  }
  for (const char* key : {"pid", "tid", "ts"}) {
    const JsonValue* field = Field(event.object, key);
    if (field == nullptr || field->kind != JsonValue::Kind::kNumber) {
      return fail(std::string("missing numeric \"") + key + "\"");
    }
  }
  if (Field(event.object, "ts")->number < 0.0) {
    return fail("negative \"ts\"");
  }
  if (ph->string == "X") {
    const JsonValue* dur = Field(event.object, "dur");
    if (dur == nullptr || dur->kind != JsonValue::Kind::kNumber || dur->number < 0.0) {
      return fail("complete event needs a non-negative \"dur\"");
    }
  }
  if (ph->string == "i") {
    const JsonValue* scope = Field(event.object, "s");
    if (scope == nullptr || scope->kind != JsonValue::Kind::kString) {
      return fail("instant event needs an \"s\" scope");
    }
  }
  const JsonValue* args = Field(event.object, "args");
  if (args != nullptr && args->kind != JsonValue::Kind::kObject) {
    return fail("\"args\" must be an object");
  }
  if (ph->string == "C") {
    // Counter events are value graphs: the viewer plots each args member
    // as a series, so there must be at least one and all must be numeric.
    if (args == nullptr) {
      return fail("counter event needs an \"args\" object with its series");
    }
    if (args->object.empty()) {
      return fail("counter event has no series in \"args\"");
    }
    for (const auto& [series, value] : args->object) {
      if (value->kind != JsonValue::Kind::kNumber) {
        return fail("counter series \"" + series + "\" is not numeric");
      }
      seen->insert(series);
    }
  }
  return true;
}

int LintFile(const std::string& path, std::set<std::string>* seen) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_lint: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::string error;
  Parser parser(text);
  std::shared_ptr<JsonValue> root = parser.Parse(&error);
  if (root == nullptr) {
    std::fprintf(stderr, "trace_lint: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  if (root->kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "trace_lint: %s: root is not an object\n", path.c_str());
    return 1;
  }
  const JsonValue* events = Field(root->object, "traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "trace_lint: %s: missing \"traceEvents\" array\n", path.c_str());
    return 1;
  }
  for (size_t i = 0; i < events->array.size(); ++i) {
    if (!LintEvent(*events->array[i], i, seen, &error)) {
      std::fprintf(stderr, "trace_lint: %s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
  }
  std::printf("trace_lint: %s: OK (%zu events)\n", path.c_str(), events->array.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> required;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "trace_lint: --require wants a name\n");
        return 2;
      }
      required.push_back(argv[++i]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: trace_lint [--require <name>]... <trace.json> [more...]\n");
    return 2;
  }
  std::set<std::string> seen;
  for (const std::string& file : files) {
    const int code = LintFile(file, &seen);
    if (code != 0) {
      return code;
    }
  }
  for (const std::string& name : required) {
    if (seen.count(name) == 0) {
      std::fprintf(stderr,
                   "trace_lint: required name \"%s\" appears in no linted file "
                   "(as an event name or counter series)\n",
                   name.c_str());
      return 1;
    }
  }
  return 0;
}
