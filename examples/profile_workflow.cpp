// The end-user workflow of paper §6's second usage model:
//
// "Coign is applied onsite by the application user or system
// administrator. The user enables application profiling through a simple
// GUI ... After 'training' the application to the user's usage patterns —
// by running the application through representative tasks with profiling —
// the GUI triggers post-profiling analysis and writes the distribution
// model into the application."
//
// This example trains the Corporate Benefits Sample on several sessions,
// writing one profile log file per session (as the profiling logger does at
// the end of each execution), merges the log files, analyzes, writes the
// distribution into the binary, and finally runs the distributed binary —
// showing the peer component factories relocating instantiations.
//
// Build and run:  ./build/examples/profile_workflow

#include <cstdio>

#include "src/analysis/engine.h"
#include "src/analysis/report.h"
#include "src/apps/benefits.h"
#include "src/net/network_profiler.h"
#include "src/profile/log_file.h"
#include "src/runtime/rte.h"
#include "src/sim/measurement.h"

using namespace coign;  // NOLINT: example code.

namespace {

template <typename T>
T Check(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*result);
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::unique_ptr<Application> app = MakeBenefits();
  BinaryRewriter rewriter;
  ApplicationImage instrumented =
      Check(rewriter.Instrument(app->Image(), ConfigurationRecord()), "instrument");

  // --- Training: three user sessions, one profile log file each --------------
  const char* kSessions[] = {"b_vueone", "b_addone", "b_bigone"};
  std::vector<std::string> log_paths;
  Rng rng(2);
  for (const char* session : kSessions) {
    ObjectSystem system;
    Check(app->Install(&system), "install");
    std::unique_ptr<CoignRuntime> runtime =
        Check(CoignRuntime::LoadFromImage(&system, instrumented), "load runtime");
    runtime->BeginScenario();
    Scenario scenario = Check(app->FindScenario(session), "scenario");
    Check(scenario.run(system, rng), "session run");
    system.DestroyAll();

    const std::string path = std::string("/tmp/coign_session_") + session + ".log";
    Check(WriteProfileFile(runtime->profiling_logger()->profile(), path), "write log");
    log_paths.push_back(path);
    std::printf("Session %-10s -> %s (%llu calls summarized)\n", session, path.c_str(),
                static_cast<unsigned long long>(
                    runtime->profiling_logger()->profile().total_calls()));
  }

  // --- Post-profiling analysis: merge the logs, cut the graph ----------------
  IccProfile merged = Check(MergeProfileFiles(log_paths), "merge logs");
  std::printf("\nMerged %zu log files: %llu calls, %llu bytes of ICC.\n", log_paths.size(),
              static_cast<unsigned long long>(merged.total_calls()),
              static_cast<unsigned long long>(merged.total_bytes()));

  const NetworkModel network = NetworkModel::TenBaseT();
  NetworkProfiler profiler;
  ProfileAnalysisEngine engine;
  AnalysisResult result =
      Check(engine.Analyze(merged, profiler.Profile(Transport(network), rng)), "analyze");
  std::printf("\n%s\n", DistributionReport(merged, result).c_str());

  // --- Write the distribution into the binary --------------------------------
  ApplicationImage distributed =
      Check(rewriter.WriteDistribution(instrumented, result.distribution,
                                       SerializeProfile(merged)),
            "write distribution");
  std::printf("Distribution written into %s (%zu placements).\n", distributed.name.c_str(),
              result.distribution.size());

  // --- Run the distributed application ----------------------------------------
  ObjectSystem system;
  Check(app->Install(&system), "install distributed");
  std::unique_ptr<CoignRuntime> light =
      Check(CoignRuntime::LoadFromImage(&system, distributed), "load light runtime");
  light->BeginScenario();
  Scenario scenario = Check(app->FindScenario("b_bigone"), "scenario");
  MeasurementOptions options;
  options.network = network;
  RunMeasurement run = Check(
      MeasureRun(system, [&](ObjectSystem& sys) { return scenario.run(sys, rng); }, options),
      "distributed run");

  std::printf("\nDistributed b_bigone: %.3f s communication, %llu of %llu calls remote.\n",
              run.communication_seconds,
              static_cast<unsigned long long>(run.remote_calls),
              static_cast<unsigned long long>(run.total_calls));
  std::printf("Component factories: client fulfilled %llu locally, forwarded %llu; "
              "server fulfilled %llu locally, %llu for its peer.\n",
              static_cast<unsigned long long>(light->client_factory().local_instantiations()),
              static_cast<unsigned long long>(
                  light->client_factory().forwarded_instantiations()),
              static_cast<unsigned long long>(light->server_factory().local_instantiations()),
              static_cast<unsigned long long>(light->server_factory().fulfilled_for_peer()));
  for (const std::string& path : log_paths) {
    std::remove(path.c_str());
  }
  return 0;
}
