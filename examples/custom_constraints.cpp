// Programmer location constraints (paper §4.3):
//
// "Although not used in this analysis, the programmer can place two kinds
// of explicit location constraints on components to guarantee data
// integrity and security requirements. Absolute constraints explicitly
// force an instance to a designated machine. Pair-wise constraints force
// the co-location of two component instances."
//
// This example analyzes the Benefits application three ways: unconstrained
// (Coign moves the caching components to the client), with an absolute
// constraint forcing the caches back to the middle tier (a data-integrity
// policy), and with a pair-wise constraint welding the business rules to
// the session manager.
//
// Build and run:  ./build/examples/custom_constraints

#include <cstdio>

#include "src/analysis/engine.h"
#include "src/analysis/report.h"
#include "src/apps/benefits.h"
#include "src/net/network_profiler.h"
#include "src/runtime/rte.h"

using namespace coign;  // NOLINT: example code.

namespace {

template <typename T>
T Check(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*result);
}

// Classifications whose class name starts with a prefix.
std::vector<ClassificationId> ClassificationsWithPrefix(const IccProfile& profile,
                                                        const std::string& prefix) {
  std::vector<ClassificationId> out;
  for (const auto& [id, info] : profile.classifications()) {
    if (info.class_name.rfind(prefix, 0) == 0) {
      out.push_back(id);
    }
  }
  return out;
}

void Report(const char* title, const IccProfile& profile, const AnalysisResult& result) {
  std::printf("=== %s ===\n", title);
  size_t caches_on_client = 0, caches_total = 0;
  for (ClassificationId id : ClassificationsWithPrefix(profile, "BN.Cache")) {
    const ClassificationInfo* info = profile.FindClassification(id);
    caches_total += info->instance_count;
    if (result.distribution.MachineFor(id) == kClientMachine) {
      caches_on_client += info->instance_count;
    }
  }
  std::printf("caches on client: %zu of %zu; predicted comm %.4f s\n\n", caches_on_client,
              caches_total, result.predicted_comm_seconds);
}

}  // namespace

int main() {
  std::unique_ptr<Application> app = MakeBenefits();

  // Profile b_bigone.
  ObjectSystem system;
  if (!app->Install(&system).ok()) {
    return 1;
  }
  ConfigurationRecord config;
  CoignRuntime runtime(&system, config);
  runtime.BeginScenario();
  Rng rng(5);
  Scenario scenario = Check(app->FindScenario("b_bigone"), "scenario");
  if (!scenario.run(system, rng).ok()) {
    return 1;
  }
  system.DestroyAll();
  const IccProfile& profile = runtime.profiling_logger()->profile();

  NetworkProfiler profiler;
  const NetworkProfile network = profiler.Profile(Transport(NetworkModel::TenBaseT()), rng);

  // 1. Unconstrained: Coign pulls the chatty caches to the client.
  {
    ProfileAnalysisEngine engine;
    AnalysisResult result = Check(engine.Analyze(profile, network), "analyze");
    Report("Unconstrained (Coign's choice)", profile, result);
  }

  // 2. Absolute constraints: company policy says cached benefits records
  // may never leave the middle tier.
  {
    AnalysisOptions options;
    for (ClassificationId id : ClassificationsWithPrefix(profile, "BN.Cache")) {
      options.extra_constraints.PinAbsolute(id, kServerMachine);
    }
    ProfileAnalysisEngine engine(options);
    AnalysisResult result = Check(engine.Analyze(profile, network), "analyze pinned");
    Report("Absolute: caches pinned to the middle tier", profile, result);
  }

  // 3. Pair-wise constraints: the rules engine must ride with the session
  // manager (they share a transaction context).
  {
    AnalysisOptions options;
    const auto rules = ClassificationsWithPrefix(profile, "BN.BizRules");
    const auto sessions = ClassificationsWithPrefix(profile, "BN.SessionMgr");
    for (ClassificationId rule : rules) {
      for (ClassificationId session : sessions) {
        options.extra_constraints.Colocate(rule, session);
      }
    }
    ProfileAnalysisEngine engine(options);
    AnalysisResult result = Check(engine.Analyze(profile, network), "analyze colocated");
    Report("Pair-wise: rules colocated with the session manager", profile, result);
  }

  std::printf("Constraints trade communication time for policy: the pinned variant is\n"
              "slower than Coign's choice but never violates the data-integrity rule.\n");
  return 0;
}
