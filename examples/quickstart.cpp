// Quickstart: the whole Coign pipeline on one application, end to end.
//
//   1. Take the application binary and instrument it (binary rewriter).
//   2. Run the instrumented binary through a profiling scenario; the Coign
//      runtime summarizes all inter-component communication.
//   3. Profile the network.
//   4. Analyze: ICC graph + constraints + network profile → min cut →
//      distribution, written back into the binary.
//   5. Run the distributed binary and compare communication time against
//      the developer's default distribution.
//
// Build and run:  ./build/examples/quickstart

#include <cstdio>

#include "src/analysis/engine.h"
#include "src/analysis/report.h"
#include "src/apps/octarine.h"
#include "src/net/network_profiler.h"
#include "src/profile/log_file.h"
#include "src/runtime/rte.h"
#include "src/sim/measurement.h"

using namespace coign;  // NOLINT: example code.

namespace {

// Dies loudly on error — fine for an example.
template <typename T>
T Check(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*result);
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::unique_ptr<Application> app = MakeOctarine();
  Rng rng(2026);

  // --- 1. Instrument the binary ------------------------------------------------
  BinaryRewriter rewriter;
  ConfigurationRecord profiling_config;  // Defaults: profiling mode, IFCB.
  ApplicationImage instrumented =
      Check(rewriter.Instrument(app->Image(), profiling_config), "instrument");
  std::printf("Instrumented %s: import[0]=%s\n", instrumented.name.c_str(),
              instrumented.import_table.front().c_str());

  // --- 2. Scenario-based profiling ----------------------------------------------
  ObjectSystem profiling_system;
  Check(app->Install(&profiling_system), "install");
  std::unique_ptr<CoignRuntime> runtime =
      Check(CoignRuntime::LoadFromImage(&profiling_system, instrumented), "load runtime");
  runtime->BeginScenario();
  Scenario scenario = Check(app->FindScenario("o_fig5"), "find scenario");
  Check(scenario.run(profiling_system, rng), "profiling run");
  profiling_system.DestroyAll();
  const IccProfile& profile = runtime->profiling_logger()->profile();
  std::printf("Profiled '%s': %zu classifications, %llu calls, %llu bytes\n",
              scenario.id.c_str(), profile.classifications().size(),
              static_cast<unsigned long long>(profile.total_calls()),
              static_cast<unsigned long long>(profile.total_bytes()));

  // --- 3. Profile the network ------------------------------------------------------
  const NetworkModel network = NetworkModel::TenBaseT();
  Transport transport(network);
  NetworkProfiler profiler;
  const NetworkProfile network_profile = profiler.Profile(transport, rng);
  std::printf("Network '%s': %.1f us/message + %.1f ns/byte (r^2 %.4f)\n",
              network_profile.network_name.c_str(),
              network_profile.per_message_seconds * 1e6,
              network_profile.seconds_per_byte * 1e9, network_profile.fit_r_squared);

  // --- 4. Choose a distribution ------------------------------------------------------
  ProfileAnalysisEngine engine;
  AnalysisResult result = Check(engine.Analyze(profile, network_profile), "analyze");
  std::printf("%s\n", DistributionReport(profile, result).c_str());
  // The configuration record carries the distribution, the profile summary,
  // and the classification table (so run-time instances map to the same
  // classification ids the analysis used).
  ApplicationImage distributed = Check(
      rewriter.WriteDistribution(instrumented, result.distribution, SerializeProfile(profile),
                                 runtime->classifier().ExportDescriptors()),
      "write distribution");

  // --- 5. Measure default vs Coign ------------------------------------------------------
  MeasurementOptions options;
  options.network = network;

  // Default: the developer's shipped placement.
  ObjectSystem default_system;
  Check(app->Install(&default_system), "install default");
  const ClassPlacement default_placement = app->DefaultPlacement(default_system);
  default_system.SetPlacementPolicy(default_placement.AsPolicy());
  RunMeasurement default_run =
      Check(MeasureRun(
                default_system, [&](ObjectSystem& sys) { return scenario.run(sys, rng); },
                options),
            "default run");

  // Coign: the lightweight runtime realizes the chosen distribution.
  ObjectSystem coign_system;
  Check(app->Install(&coign_system), "install coign");
  std::unique_ptr<CoignRuntime> light =
      Check(CoignRuntime::LoadFromImage(&coign_system, distributed), "load light runtime");
  light->BeginScenario();
  RunMeasurement coign_run =
      Check(MeasureRun(
                coign_system, [&](ObjectSystem& sys) { return scenario.run(sys, rng); },
                options),
            "coign run");

  std::printf("Communication time: default %.3f s, Coign %.3f s (%.0f%% saved)\n",
              default_run.communication_seconds, coign_run.communication_seconds,
              100.0 * (1.0 - coign_run.communication_seconds /
                                 default_run.communication_seconds));
  std::printf("Remote calls: default %llu, Coign %llu\n",
              static_cast<unsigned long long>(default_run.remote_calls),
              static_cast<unsigned long long>(coign_run.remote_calls));
  return 0;
}
