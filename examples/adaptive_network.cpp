// Adaptive repartitioning: the paper's §4.4 argument, executable.
//
// "A programmer's best-effort manual distribution is static; it cannot
// readily adapt to changes in network performance ... In the limit, Coign
// can create a new distributed version of the application for each
// execution."
//
// This example profiles Octarine's mixed-document workload once, then
// re-analyzes and re-measures for five different networks, printing how
// the chosen distribution and its communication time shift with the
// bandwidth/latency balance — including how badly a distribution chosen
// for one network performs when carried to another.
//
// Build and run:  ./build/examples/adaptive_network

#include <cstdio>

#include "src/analysis/engine.h"
#include "src/apps/octarine.h"
#include "src/net/network_profiler.h"
#include "src/runtime/rte.h"
#include "src/sim/measurement.h"

using namespace coign;  // NOLINT: example code.

namespace {

constexpr const char* kScenario = "o_oldbth";

template <typename T>
T Check(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*result);
}

IccProfile ProfileOnce(Application& app) {
  ObjectSystem system;
  if (!app.Install(&system).ok()) {
    std::exit(1);
  }
  ConfigurationRecord config;
  CoignRuntime runtime(&system, config);
  runtime.BeginScenario();
  Rng rng(7);
  Scenario scenario = Check(app.FindScenario(kScenario), "scenario");
  if (!scenario.run(system, rng).ok()) {
    std::exit(1);
  }
  system.DestroyAll();
  return runtime.profiling_logger()->profile();
}

double MeasureUnder(Application& app, const Distribution& distribution,
                    const NetworkModel& network) {
  ObjectSystem system;
  if (!app.Install(&system).ok()) {
    std::exit(1);
  }
  ConfigurationRecord config;
  config.mode = RuntimeMode::kDistributed;
  config.distribution = distribution;
  CoignRuntime runtime(&system, config);
  runtime.BeginScenario();
  Scenario scenario = Check(app.FindScenario(kScenario), "scenario");
  MeasurementOptions options;
  options.network = network;
  Rng rng(7);
  RunMeasurement run = Check(
      MeasureRun(system, [&](ObjectSystem& sys) { return scenario.run(sys, rng); }, options),
      "measure");
  return run.communication_seconds;
}

}  // namespace

int main() {
  std::unique_ptr<Application> app = MakeOctarine();
  const IccProfile profile = ProfileOnce(*app);
  std::printf("Profiled %s once: %zu classifications, %llu calls.\n\n", kScenario,
              profile.classifications().size(),
              static_cast<unsigned long long>(profile.total_calls()));

  const NetworkModel networks[] = {NetworkModel::Isdn(), NetworkModel::TenBaseT(),
                                   NetworkModel::HundredBaseT(), NetworkModel::San()};

  // One distribution per network (re-cut from the same profile)...
  std::vector<Distribution> tailored;
  for (const NetworkModel& network : networks) {
    Rng rng(3);
    NetworkProfiler profiler;
    ProfileAnalysisEngine engine;
    AnalysisResult result =
        Check(engine.Analyze(profile, profiler.Profile(Transport(network), rng)), "analyze");
    tailored.push_back(result.distribution);
    std::printf("%-10s -> %zu classifications on the server, predicted comm %.4f s\n",
                network.name.c_str(), result.distribution.CountOn(kServerMachine),
                result.predicted_comm_seconds);
  }

  // ...then the cross-grid: each tailored distribution measured on every
  // network. The diagonal should win each column — a static distribution
  // carried to the wrong network pays for it.
  std::printf("\nCommunication seconds: distributions (rows) x networks (columns)\n");
  std::printf("%-16s", "tailored-for\\on");
  for (const NetworkModel& network : networks) {
    std::printf(" %11s", network.name.c_str());
  }
  std::printf("\n");
  for (size_t d = 0; d < tailored.size(); ++d) {
    std::printf("%-16s", networks[d].name.c_str());
    for (const NetworkModel& network : networks) {
      std::printf(" %11.4f", MeasureUnder(*app, tailored[d], network));
    }
    std::printf("\n");
  }
  std::printf("\nEach column's minimum sits on the diagonal (or ties it): re-partitioning\n"
              "per environment is never worse and often much better.\n");
  return 0;
}
