coign-profile v1
classification 0 {fe82f6b9af236e94-88e81a95776d8994} 1 1 Octarine.App
compute 0 5.000000000e-06
classification 1 {0f3a702e03c17dd3-d32fb18b855649ef} 0 2 Octarine.Widget01
compute 1 1.700000000e-04
classification 2 {cea20a9481393013-86da5b2f166f9957} 1 1 Octarine.Frame
compute 2 7.000000000e-05
classification 3 {13e2dd66b96e0f14-d5033a141fe424c9} 1 1 Octarine.Widget00
compute 3 1.300000000e-04
classification 4 {1a4815e3c1290793-a0f29212ee43e2d1} 0 1 Octarine.Widget45
compute 4 9.000000000e-05
classification 5 {dc020ed8c547e8bb-16d8dbe37990decb} 0 1 Octarine.Widget83
compute 5 8.000000000e-05
classification 6 {5806991484078a8b-e85c6c5bbdc9ec85} 1 1 Octarine.Widget88
compute 6 8.000000000e-05
classification 7 {8c65cccc34320e9e-3194c5a8fdbdf88e} 0 1 Octarine.Widget50
compute 7 9.000000000e-05
classification 8 {7102d3caf1c159db-35cdfb0a4d5b4db3} 0 1 Octarine.Widget90
compute 8 8.000000000e-05
classification 9 {0ad9af436d7ec3c4-aa1da0f543f75907} 0 1 Octarine.Widget95
compute 9 8.000000000e-05
classification 10 {af4f5c8421d8b8e2-5b717341e54fee37} 0 1 Octarine.Widget55
compute 10 9.000000000e-05
classification 11 {d048f35dc97ffee6-9d906e5a0aa4efd4} 0 1 Octarine.Widget15
compute 11 8.000000000e-05
classification 12 {9443997cd565f29c-000f5b22228a0bdb} 1 1 Octarine.Widget20
compute 12 8.000000000e-05
classification 13 {ce96ce811c54a9fe-8463ff302c633edd} 1 1 Octarine.Widget60
compute 13 9.000000000e-05
classification 14 {c4529aba7d465848-bb36bc826ac87991} 0 1 Octarine.Widget22
compute 14 8.000000000e-05
classification 15 {f4e3e24d15631276-976dc0fa1732c9f6} 0 1 Octarine.Widget27
compute 15 8.000000000e-05
classification 16 {2bccc3212c141576-e1aef7688cff43b5} 0 1 Octarine.Widget65
compute 16 9.000000000e-05
classification 17 {c760f28ee1e1bad6-5c4e09478ffc45c5} 0 1 Octarine.Widget29
compute 17 8.000000000e-05
classification 18 {c02f9eb59ea7b0a3-30fa4430cc5401d5} 0 1 Octarine.Widget34
compute 18 8.000000000e-05
classification 19 {f56b64f185f37fd2-c0f393a9fc1d30ee} 0 1 Octarine.Widget70
compute 19 9.000000000e-05
classification 20 {0cb9b1975c37f30e-9a62ad7d8e35a010} 1 1 Octarine.Widget36
compute 20 8.000000000e-05
classification 21 {97867ae7eba7a4f7-8b00412242c03c5b} 0 1 Octarine.Widget41
compute 21 8.000000000e-05
classification 22 {1f388d5e5c437c6d-dc18e81cad1ad5e5} 0 1 Octarine.Widget75
compute 22 9.000000000e-05
classification 23 {0f94e1e094981fd7-40d25bde2dc2571e} 0 1 Octarine.Widget43
compute 23 8.000000000e-05
classification 24 {6d8c641333155fab-4ab69eb19b96623f} 1 1 Octarine.Widget48
compute 24 8.000000000e-05
classification 25 {7fa34c2b792915ec-d1e8964c03386cd5} 1 1 Octarine.Widget80
compute 25 9.000000000e-05
classification 26 {8c65cccc34320e9e-3194c5a8fdbdf88e} 0 1 Octarine.Widget50
compute 26 8.000000000e-05
classification 27 {af4f5c8421d8b8e2-5b717341e54fee37} 0 1 Octarine.Widget55
compute 27 8.000000000e-05
classification 28 {5d67cb4de61b27ae-8a0d55df52d02c03} 0 1 Octarine.Widget85
compute 28 9.000000000e-05
classification 29 {f4248fdc2409ab6f-c5b30e75764ea06d} 0 1 Octarine.Widget57
compute 29 8.000000000e-05
classification 30 {c0d3d2c4c517f471-b7694c3a48199c58} 0 1 Octarine.Widget62
compute 30 8.000000000e-05
classification 31 {7102d3caf1c159db-35cdfb0a4d5b4db3} 0 1 Octarine.Widget90
compute 31 9.000000000e-05
classification 32 {1888717b9c8b1347-7c811c12aa2fc28a} 1 1 Octarine.Widget64
compute 32 8.000000000e-05
classification 33 {f3c339b5076081e0-7922a445ded44fd4} 0 1 Octarine.Widget69
compute 33 8.000000000e-05
classification 34 {76f425219bd900af-e1914fe5340cccd5} 1 1 Octarine.Widget52
compute 34 9.000000000e-05
classification 35 {ae405bff708d840b-831b6acdfb51a0b2} 0 1 Octarine.Widget71
compute 35 8.000000000e-05
classification 36 {a39d93205331b216-c551ed275e45cf7d} 1 1 Octarine.Widget76
compute 36 8.000000000e-05
classification 37 {f4248fdc2409ab6f-c5b30e75764ea06d} 0 1 Octarine.Widget57
compute 37 9.000000000e-05
classification 38 {cf038d63650e3845-978938d80fdcf3af} 0 1 Octarine.Widget78
compute 38 8.000000000e-05
classification 39 {dc020ed8c547e8bb-16d8dbe37990decb} 0 1 Octarine.Widget83
compute 39 8.000000000e-05
classification 40 {c0d3d2c4c517f471-b7694c3a48199c58} 0 1 Octarine.Widget62
compute 40 9.000000000e-05
classification 41 {5d67cb4de61b27ae-8a0d55df52d02c03} 0 1 Octarine.Widget85
compute 41 8.000000000e-05
classification 42 {7102d3caf1c159db-35cdfb0a4d5b4db3} 0 1 Octarine.Widget90
compute 42 8.000000000e-05
classification 43 {c9e62b31503ccb83-b426023995906864} 0 1 Octarine.Widget67
compute 43 9.000000000e-05
classification 44 {73637748596509fd-d97532df98059b33} 1 1 Octarine.Widget92
compute 44 8.000000000e-05
classification 45 {d048f35dc97ffee6-9d906e5a0aa4efd4} 0 1 Octarine.Widget15
compute 45 8.000000000e-05
classification 46 {e635eab8092fd582-f79865aace1f273d} 1 1 Octarine.Widget72
compute 46 9.000000000e-05
classification 47 {505037238861d37b-515d95582ae91c89} 0 1 Octarine.Widget17
compute 47 8.000000000e-05
classification 48 {c4529aba7d465848-bb36bc826ac87991} 0 1 Octarine.Widget22
compute 48 8.000000000e-05
classification 49 {6f5824cdfa92765e-17d913f141aa2781} 0 1 Octarine.Widget77
compute 49 9.000000000e-05
classification 50 {35a8f95ff7060d6e-3ac19270f19b1060} 1 1 Octarine.Widget24
compute 50 8.000000000e-05
classification 51 {c760f28ee1e1bad6-5c4e09478ffc45c5} 0 1 Octarine.Widget29
compute 51 8.000000000e-05
classification 52 {d124291f74c9224a-14ae955a5cc78ee3} 0 1 Octarine.Widget82
compute 52 9.000000000e-05
classification 53 {b12cd9e39ae3d995-b88aef10322f5a56} 0 1 Octarine.Widget31
compute 53 8.000000000e-05
classification 54 {0cb9b1975c37f30e-9a62ad7d8e35a010} 1 1 Octarine.Widget36
compute 54 8.000000000e-05
classification 55 {9e0c02aa2f32a594-7b96b86cab7c207a} 0 1 Octarine.Widget87
compute 55 9.000000000e-05
classification 56 {8ab58797716f98bb-ff996e4cf1c3f50d} 0 1 Octarine.Widget38
compute 56 8.000000000e-05
classification 57 {0f94e1e094981fd7-40d25bde2dc2571e} 0 1 Octarine.Widget43
compute 57 8.000000000e-05
classification 58 {73637748596509fd-d97532df98059b33} 1 1 Octarine.Widget92
compute 58 9.000000000e-05
classification 59 {1a4815e3c1290793-a0f29212ee43e2d1} 0 1 Octarine.Widget45
compute 59 8.000000000e-05
classification 60 {8c65cccc34320e9e-3194c5a8fdbdf88e} 0 1 Octarine.Widget50
compute 60 8.000000000e-05
classification 61 {d048f35dc97ffee6-9d906e5a0aa4efd4} 0 1 Octarine.Widget15
compute 61 9.000000000e-05
classification 62 {76f425219bd900af-e1914fe5340cccd5} 1 1 Octarine.Widget52
compute 62 8.000000000e-05
classification 63 {f4248fdc2409ab6f-c5b30e75764ea06d} 0 1 Octarine.Widget57
compute 63 8.000000000e-05
classification 64 {5c6bb6d9d014eef1-f1812ba9ffb151f9} 0 1 Octarine.Widget02
compute 64 1.300000000e-04
classification 65 {fe577335db2dce67-28bc66ac9b64df43} 0 1 Octarine.Widget59
compute 65 9.000000000e-05
classification 66 {fe577335db2dce67-28bc66ac9b64df43} 0 1 Octarine.Widget59
compute 66 8.000000000e-05
classification 67 {1888717b9c8b1347-7c811c12aa2fc28a} 1 1 Octarine.Widget64
compute 67 8.000000000e-05
classification 68 {1888717b9c8b1347-7c811c12aa2fc28a} 1 1 Octarine.Widget64
compute 68 9.000000000e-05
classification 69 {104ff6bccdadfefd-1f7628ffdd4eba6a} 0 1 Octarine.Widget66
compute 69 8.000000000e-05
classification 70 {ae405bff708d840b-831b6acdfb51a0b2} 0 1 Octarine.Widget71
compute 70 8.000000000e-05
classification 71 {f3c339b5076081e0-7922a445ded44fd4} 0 1 Octarine.Widget69
compute 71 9.000000000e-05
classification 72 {18b4b3d0cc9cf741-8bca4e76cc6a80aa} 0 1 Octarine.Widget73
compute 72 8.000000000e-05
classification 73 {cf038d63650e3845-978938d80fdcf3af} 0 1 Octarine.Widget78
compute 73 8.000000000e-05
classification 74 {701cd3cacca41669-aa63965b4612ca0b} 0 1 Octarine.Widget74
compute 74 9.000000000e-05
classification 75 {7fa34c2b792915ec-d1e8964c03386cd5} 1 1 Octarine.Widget80
compute 75 8.000000000e-05
classification 76 {5d67cb4de61b27ae-8a0d55df52d02c03} 0 1 Octarine.Widget85
compute 76 8.000000000e-05
classification 77 {2c424325fbd800db-9b887316f91b18e1} 0 1 Octarine.Widget79
compute 77 9.000000000e-05
classification 78 {9e0c02aa2f32a594-7b96b86cab7c207a} 0 1 Octarine.Widget87
compute 78 8.000000000e-05
classification 79 {73637748596509fd-d97532df98059b33} 1 1 Octarine.Widget92
compute 79 8.000000000e-05
classification 80 {3e3ac3a5aaf37ed9-219241c55361ec28} 1 1 Octarine.Widget84
compute 80 9.000000000e-05
classification 81 {586e8705e79d8b76-a61ac33e78384829} 0 1 Octarine.Widget94
compute 81 8.000000000e-05
classification 82 {505037238861d37b-515d95582ae91c89} 0 1 Octarine.Widget17
compute 82 8.000000000e-05
classification 83 {67604103a36e8315-b7d23f9a2477a9cb} 0 1 Octarine.Widget89
compute 83 9.000000000e-05
classification 84 {7a344d824062d50c-1931e02032a5716c} 0 1 Octarine.Widget19
compute 84 8.000000000e-05
classification 85 {35a8f95ff7060d6e-3ac19270f19b1060} 1 1 Octarine.Widget24
compute 85 8.000000000e-05
classification 86 {586e8705e79d8b76-a61ac33e78384829} 0 1 Octarine.Widget94
compute 86 9.000000000e-05
classification 87 {2517c99f4a82f00a-1711c5771c76bf46} 0 1 Octarine.Widget26
compute 87 8.000000000e-05
classification 88 {b12cd9e39ae3d995-b88aef10322f5a56} 0 1 Octarine.Widget31
compute 88 8.000000000e-05
classification 89 {505037238861d37b-515d95582ae91c89} 0 1 Octarine.Widget17
compute 89 9.000000000e-05
classification 90 {c5ab98752c5ef412-cb8c70a039aefe3b} 0 1 Octarine.Widget33
compute 90 8.000000000e-05
classification 91 {8ab58797716f98bb-ff996e4cf1c3f50d} 0 1 Octarine.Widget38
compute 91 8.000000000e-05
classification 92 {c4529aba7d465848-bb36bc826ac87991} 0 1 Octarine.Widget22
compute 92 9.000000000e-05
classification 93 {b13e3c958e74c93f-4cd28ccdc673ca21} 1 1 Octarine.Widget40
compute 93 8.000000000e-05
classification 94 {1a4815e3c1290793-a0f29212ee43e2d1} 0 1 Octarine.Widget45
compute 94 8.000000000e-05
classification 95 {8ff98eedd34d8398-4c7e28635db2a497} 0 1 Octarine.Widget03
compute 95 1.300000000e-04
classification 96 {104ff6bccdadfefd-1f7628ffdd4eba6a} 0 1 Octarine.Widget66
compute 96 9.000000000e-05
classification 97 {e84be4981767265e-212154d174d43632} 0 1 Octarine.Widget47
compute 97 8.000000000e-05
classification 98 {76f425219bd900af-e1914fe5340cccd5} 1 1 Octarine.Widget52
compute 98 8.000000000e-05
classification 99 {ae405bff708d840b-831b6acdfb51a0b2} 0 1 Octarine.Widget71
compute 99 9.000000000e-05
classification 100 {e88c08daa65ba0c3-f0bdb5b92b5044a2} 0 1 Octarine.Widget54
compute 100 8.000000000e-05
classification 101 {fe577335db2dce67-28bc66ac9b64df43} 0 1 Octarine.Widget59
compute 101 8.000000000e-05
classification 102 {a39d93205331b216-c551ed275e45cf7d} 1 1 Octarine.Widget76
compute 102 9.000000000e-05
classification 103 {f1efc9932ea0b628-9af63c2ca68bf504} 0 1 Octarine.Widget61
compute 103 8.000000000e-05
classification 104 {104ff6bccdadfefd-1f7628ffdd4eba6a} 0 1 Octarine.Widget66
compute 104 8.000000000e-05
classification 105 {540ac1d315382d5d-7e919ac8d59b0d8c} 0 1 Octarine.Widget81
compute 105 9.000000000e-05
classification 106 {7f263d341d73cbb2-67ac792792ea91de} 1 1 Octarine.Widget68
compute 106 8.000000000e-05
classification 107 {18b4b3d0cc9cf741-8bca4e76cc6a80aa} 0 1 Octarine.Widget73
compute 107 8.000000000e-05
classification 108 {c21d506499912a69-c0c2a75053e25224} 0 1 Octarine.Widget86
compute 108 9.000000000e-05
classification 109 {1f388d5e5c437c6d-dc18e81cad1ad5e5} 0 1 Octarine.Widget75
compute 109 8.000000000e-05
classification 110 {7fa34c2b792915ec-d1e8964c03386cd5} 1 1 Octarine.Widget80
compute 110 8.000000000e-05
classification 111 {37ca9627bca0e81e-37cb8102d6de2dea} 0 1 Octarine.Widget91
compute 111 9.000000000e-05
classification 112 {d124291f74c9224a-14ae955a5cc78ee3} 0 1 Octarine.Widget82
compute 112 8.000000000e-05
classification 113 {9e0c02aa2f32a594-7b96b86cab7c207a} 0 1 Octarine.Widget87
compute 113 8.000000000e-05
classification 114 {8481b7f14cc51499-6bdf7e141211c52b} 0 1 Octarine.Widget14
compute 114 9.000000000e-05
classification 115 {67604103a36e8315-b7d23f9a2477a9cb} 0 1 Octarine.Widget89
compute 115 8.000000000e-05
classification 116 {586e8705e79d8b76-a61ac33e78384829} 0 1 Octarine.Widget94
compute 116 8.000000000e-05
classification 117 {7a344d824062d50c-1931e02032a5716c} 0 1 Octarine.Widget19
compute 117 9.000000000e-05
classification 118 {8481b7f14cc51499-6bdf7e141211c52b} 0 1 Octarine.Widget14
compute 118 8.000000000e-05
classification 119 {7a344d824062d50c-1931e02032a5716c} 0 1 Octarine.Widget19
compute 119 8.000000000e-05
classification 120 {35a8f95ff7060d6e-3ac19270f19b1060} 1 1 Octarine.Widget24
compute 120 9.000000000e-05
classification 121 {c394a67471e65845-864c928dd38311b0} 0 1 Octarine.Widget21
compute 121 8.000000000e-05
classification 122 {2517c99f4a82f00a-1711c5771c76bf46} 0 1 Octarine.Widget26
compute 122 8.000000000e-05
classification 123 {c760f28ee1e1bad6-5c4e09478ffc45c5} 0 1 Octarine.Widget29
compute 123 9.000000000e-05
classification 124 {c2e17527a49a7b86-dc3efb0b3e634c6b} 1 1 Octarine.Widget28
compute 124 8.000000000e-05
classification 125 {c5ab98752c5ef412-cb8c70a039aefe3b} 0 1 Octarine.Widget33
compute 125 8.000000000e-05
classification 126 {2f3e61aa4dab9cfd-6306ae3a75860802} 1 1 Octarine.Widget04
compute 126 1.300000000e-04
classification 127 {18b4b3d0cc9cf741-8bca4e76cc6a80aa} 0 1 Octarine.Widget73
compute 127 9.000000000e-05
classification 128 {1a8e15cecaea66ad-f0b8c4400ba9955b} 0 1 Octarine.Widget35
compute 128 8.000000000e-05
classification 129 {b13e3c958e74c93f-4cd28ccdc673ca21} 1 1 Octarine.Widget40
compute 129 8.000000000e-05
classification 130 {cf038d63650e3845-978938d80fdcf3af} 0 1 Octarine.Widget78
compute 130 9.000000000e-05
classification 131 {52cc2b933c00b249-573d881469cf8887} 0 1 Octarine.Widget42
compute 131 8.000000000e-05
classification 132 {e84be4981767265e-212154d174d43632} 0 1 Octarine.Widget47
compute 132 8.000000000e-05
classification 133 {dc020ed8c547e8bb-16d8dbe37990decb} 0 1 Octarine.Widget83
compute 133 9.000000000e-05
classification 134 {39dbee4ec04c6efc-2b8892d2300a86e9} 0 1 Octarine.Widget49
compute 134 8.000000000e-05
classification 135 {e88c08daa65ba0c3-f0bdb5b92b5044a2} 0 1 Octarine.Widget54
compute 135 8.000000000e-05
classification 136 {5806991484078a8b-e85c6c5bbdc9ec85} 1 1 Octarine.Widget88
compute 136 9.000000000e-05
classification 137 {9553b9bfb0be45ef-cf5651ff27815510} 1 1 Octarine.Widget56
compute 137 8.000000000e-05
classification 138 {f1efc9932ea0b628-9af63c2ca68bf504} 0 1 Octarine.Widget61
compute 138 8.000000000e-05
classification 139 {48059321c4afdcc0-ababf19405b47087} 0 1 Octarine.Widget93
compute 139 9.000000000e-05
classification 140 {5968a2fba15e0c64-0ee87673e723666d} 0 1 Octarine.Widget63
compute 140 8.000000000e-05
classification 141 {7f263d341d73cbb2-67ac792792ea91de} 1 1 Octarine.Widget68
compute 141 8.000000000e-05
classification 142 {36efefe6797c44c6-cc3682dfd42dec48} 1 1 Octarine.Widget16
compute 142 9.000000000e-05
classification 143 {f56b64f185f37fd2-c0f393a9fc1d30ee} 0 1 Octarine.Widget70
compute 143 8.000000000e-05
classification 144 {1f388d5e5c437c6d-dc18e81cad1ad5e5} 0 1 Octarine.Widget75
compute 144 8.000000000e-05
classification 145 {c394a67471e65845-864c928dd38311b0} 0 1 Octarine.Widget21
compute 145 9.000000000e-05
classification 146 {6f5824cdfa92765e-17d913f141aa2781} 0 1 Octarine.Widget77
compute 146 8.000000000e-05
classification 147 {d124291f74c9224a-14ae955a5cc78ee3} 0 1 Octarine.Widget82
compute 147 8.000000000e-05
classification 148 {2517c99f4a82f00a-1711c5771c76bf46} 0 1 Octarine.Widget26
compute 148 9.000000000e-05
classification 149 {3e3ac3a5aaf37ed9-219241c55361ec28} 1 1 Octarine.Widget84
compute 149 8.000000000e-05
classification 150 {67604103a36e8315-b7d23f9a2477a9cb} 0 1 Octarine.Widget89
compute 150 8.000000000e-05
classification 151 {b12cd9e39ae3d995-b88aef10322f5a56} 0 1 Octarine.Widget31
compute 151 9.000000000e-05
classification 152 {37ca9627bca0e81e-37cb8102d6de2dea} 0 1 Octarine.Widget91
compute 152 8.000000000e-05
classification 153 {8481b7f14cc51499-6bdf7e141211c52b} 0 1 Octarine.Widget14
compute 153 8.000000000e-05
classification 154 {0cb9b1975c37f30e-9a62ad7d8e35a010} 1 1 Octarine.Widget36
compute 154 9.000000000e-05
classification 155 {36efefe6797c44c6-cc3682dfd42dec48} 1 1 Octarine.Widget16
compute 155 8.000000000e-05
classification 156 {c394a67471e65845-864c928dd38311b0} 0 1 Octarine.Widget21
compute 156 8.000000000e-05
classification 157 {672b9bea3c2a1bc2-a5feece8e16b6a08} 0 1 Octarine.Widget05
compute 157 1.300000000e-04
classification 158 {7fa34c2b792915ec-d1e8964c03386cd5} 1 1 Octarine.Widget80
compute 158 9.000000000e-05
classification 159 {fcf4f623f3027518-724c4717d5dd56b1} 0 1 Octarine.Widget23
compute 159 8.000000000e-05
classification 160 {c2e17527a49a7b86-dc3efb0b3e634c6b} 1 1 Octarine.Widget28
compute 160 8.000000000e-05
classification 161 {5d67cb4de61b27ae-8a0d55df52d02c03} 0 1 Octarine.Widget85
compute 161 9.000000000e-05
classification 162 {c81a5f033174e355-88b8083c1d7878ae} 0 1 Octarine.Widget30
compute 162 8.000000000e-05
classification 163 {1a8e15cecaea66ad-f0b8c4400ba9955b} 0 1 Octarine.Widget35
compute 163 8.000000000e-05
classification 164 {7102d3caf1c159db-35cdfb0a4d5b4db3} 0 1 Octarine.Widget90
compute 164 9.000000000e-05
classification 165 {66a0e0fe36e6eeec-88f180f22029ea5c} 0 1 Octarine.Widget37
compute 165 8.000000000e-05
classification 166 {52cc2b933c00b249-573d881469cf8887} 0 1 Octarine.Widget42
compute 166 8.000000000e-05
classification 167 {0ad9af436d7ec3c4-aa1da0f543f75907} 0 1 Octarine.Widget95
compute 167 9.000000000e-05
classification 168 {abe748afa81e0635-8a374637f03a2085} 1 1 Octarine.Widget44
compute 168 8.000000000e-05
classification 169 {39dbee4ec04c6efc-2b8892d2300a86e9} 0 1 Octarine.Widget49
compute 169 8.000000000e-05
classification 170 {28410f4265f984d0-1a73aca3fd671ff9} 0 1 Octarine.Widget18
compute 170 9.000000000e-05
classification 171 {68377de5be6b4fa4-70ad09dd61cc0744} 0 1 Octarine.Widget51
compute 171 8.000000000e-05
classification 172 {9553b9bfb0be45ef-cf5651ff27815510} 1 1 Octarine.Widget56
compute 172 8.000000000e-05
classification 173 {fcf4f623f3027518-724c4717d5dd56b1} 0 1 Octarine.Widget23
compute 173 9.000000000e-05
classification 174 {c48b6fd6a6a56201-4d00e2c25ef00346} 0 1 Octarine.Widget58
compute 174 8.000000000e-05
classification 175 {5968a2fba15e0c64-0ee87673e723666d} 0 1 Octarine.Widget63
compute 175 8.000000000e-05
classification 176 {c2e17527a49a7b86-dc3efb0b3e634c6b} 1 1 Octarine.Widget28
compute 176 9.000000000e-05
classification 177 {2bccc3212c141576-e1aef7688cff43b5} 0 1 Octarine.Widget65
compute 177 8.000000000e-05
classification 178 {f56b64f185f37fd2-c0f393a9fc1d30ee} 0 1 Octarine.Widget70
compute 178 8.000000000e-05
classification 179 {c5ab98752c5ef412-cb8c70a039aefe3b} 0 1 Octarine.Widget33
compute 179 9.000000000e-05
classification 180 {e635eab8092fd582-f79865aace1f273d} 1 1 Octarine.Widget72
compute 180 8.000000000e-05
classification 181 {6f5824cdfa92765e-17d913f141aa2781} 0 1 Octarine.Widget77
compute 181 8.000000000e-05
classification 182 {8ab58797716f98bb-ff996e4cf1c3f50d} 0 1 Octarine.Widget38
compute 182 9.000000000e-05
classification 183 {2c424325fbd800db-9b887316f91b18e1} 0 1 Octarine.Widget79
compute 183 8.000000000e-05
classification 184 {3e3ac3a5aaf37ed9-219241c55361ec28} 1 1 Octarine.Widget84
compute 184 8.000000000e-05
classification 185 {0f94e1e094981fd7-40d25bde2dc2571e} 0 1 Octarine.Widget43
compute 185 9.000000000e-05
classification 186 {c21d506499912a69-c0c2a75053e25224} 0 1 Octarine.Widget86
compute 186 8.000000000e-05
classification 187 {37ca9627bca0e81e-37cb8102d6de2dea} 0 1 Octarine.Widget91
compute 187 8.000000000e-05
classification 188 {8b8c7314dc16a03f-c443e426f9de9c6d} 0 1 Octarine.Widget06
compute 188 1.300000000e-04
classification 189 {9e0c02aa2f32a594-7b96b86cab7c207a} 0 1 Octarine.Widget87
compute 189 9.000000000e-05
classification 190 {48059321c4afdcc0-ababf19405b47087} 0 1 Octarine.Widget93
compute 190 8.000000000e-05
classification 191 {36efefe6797c44c6-cc3682dfd42dec48} 1 1 Octarine.Widget16
compute 191 8.000000000e-05
classification 192 {73637748596509fd-d97532df98059b33} 1 1 Octarine.Widget92
compute 192 9.000000000e-05
classification 193 {28410f4265f984d0-1a73aca3fd671ff9} 0 1 Octarine.Widget18
compute 193 8.000000000e-05
classification 194 {fcf4f623f3027518-724c4717d5dd56b1} 0 1 Octarine.Widget23
compute 194 8.000000000e-05
classification 195 {d048f35dc97ffee6-9d906e5a0aa4efd4} 0 1 Octarine.Widget15
compute 195 9.000000000e-05
classification 196 {2f324ea0a556f8d2-327f69acf76b2e77} 0 1 Octarine.Widget25
compute 196 8.000000000e-05
classification 197 {c81a5f033174e355-88b8083c1d7878ae} 0 1 Octarine.Widget30
compute 197 8.000000000e-05
classification 198 {9443997cd565f29c-000f5b22228a0bdb} 1 1 Octarine.Widget20
compute 198 9.000000000e-05
classification 199 {192fcf6742786bc4-980c78be14068109} 1 1 Octarine.Widget32
compute 199 8.000000000e-05
classification 200 {66a0e0fe36e6eeec-88f180f22029ea5c} 0 1 Octarine.Widget37
compute 200 8.000000000e-05
classification 201 {2f324ea0a556f8d2-327f69acf76b2e77} 0 1 Octarine.Widget25
compute 201 9.000000000e-05
classification 202 {be40309253372f96-cc04403cc3e04c54} 0 1 Octarine.Widget39
compute 202 8.000000000e-05
classification 203 {abe748afa81e0635-8a374637f03a2085} 1 1 Octarine.Widget44
compute 203 8.000000000e-05
classification 204 {c81a5f033174e355-88b8083c1d7878ae} 0 1 Octarine.Widget30
compute 204 9.000000000e-05
classification 205 {56cca2d30bf2315d-072e189356cefbec} 0 1 Octarine.Widget46
compute 205 8.000000000e-05
classification 206 {68377de5be6b4fa4-70ad09dd61cc0744} 0 1 Octarine.Widget51
compute 206 8.000000000e-05
classification 207 {1a8e15cecaea66ad-f0b8c4400ba9955b} 0 1 Octarine.Widget35
compute 207 9.000000000e-05
classification 208 {d1587a80c316e212-15faace79cc49627} 0 1 Octarine.Widget53
compute 208 8.000000000e-05
classification 209 {c48b6fd6a6a56201-4d00e2c25ef00346} 0 1 Octarine.Widget58
compute 209 8.000000000e-05
classification 210 {b13e3c958e74c93f-4cd28ccdc673ca21} 1 1 Octarine.Widget40
compute 210 9.000000000e-05
classification 211 {ce96ce811c54a9fe-8463ff302c633edd} 1 1 Octarine.Widget60
compute 211 8.000000000e-05
classification 212 {2bccc3212c141576-e1aef7688cff43b5} 0 1 Octarine.Widget65
compute 212 8.000000000e-05
classification 213 {1a4815e3c1290793-a0f29212ee43e2d1} 0 1 Octarine.Widget45
compute 213 9.000000000e-05
classification 214 {c9e62b31503ccb83-b426023995906864} 0 1 Octarine.Widget67
compute 214 8.000000000e-05
classification 215 {e635eab8092fd582-f79865aace1f273d} 1 1 Octarine.Widget72
compute 215 8.000000000e-05
classification 216 {8c65cccc34320e9e-3194c5a8fdbdf88e} 0 1 Octarine.Widget50
compute 216 9.000000000e-05
classification 217 {701cd3cacca41669-aa63965b4612ca0b} 0 1 Octarine.Widget74
compute 217 8.000000000e-05
classification 218 {2c424325fbd800db-9b887316f91b18e1} 0 1 Octarine.Widget79
compute 218 8.000000000e-05
classification 219 {380c2c33a832ae47-81baf1b27c442b6d} 0 1 Octarine.Widget07
compute 219 1.300000000e-04
classification 220 {586e8705e79d8b76-a61ac33e78384829} 0 1 Octarine.Widget94
compute 220 9.000000000e-05
classification 221 {540ac1d315382d5d-7e919ac8d59b0d8c} 0 1 Octarine.Widget81
compute 221 8.000000000e-05
classification 222 {c21d506499912a69-c0c2a75053e25224} 0 1 Octarine.Widget86
compute 222 8.000000000e-05
classification 223 {505037238861d37b-515d95582ae91c89} 0 1 Octarine.Widget17
compute 223 9.000000000e-05
classification 224 {5806991484078a8b-e85c6c5bbdc9ec85} 1 1 Octarine.Widget88
compute 224 8.000000000e-05
classification 225 {48059321c4afdcc0-ababf19405b47087} 0 1 Octarine.Widget93
compute 225 8.000000000e-05
classification 226 {c4529aba7d465848-bb36bc826ac87991} 0 1 Octarine.Widget22
compute 226 9.000000000e-05
classification 227 {0ad9af436d7ec3c4-aa1da0f543f75907} 0 1 Octarine.Widget95
compute 227 8.000000000e-05
classification 228 {28410f4265f984d0-1a73aca3fd671ff9} 0 1 Octarine.Widget18
compute 228 8.000000000e-05
classification 229 {f4e3e24d15631276-976dc0fa1732c9f6} 0 1 Octarine.Widget27
compute 229 9.000000000e-05
classification 230 {9443997cd565f29c-000f5b22228a0bdb} 1 1 Octarine.Widget20
compute 230 8.000000000e-05
classification 231 {2f324ea0a556f8d2-327f69acf76b2e77} 0 1 Octarine.Widget25
compute 231 8.000000000e-05
classification 232 {192fcf6742786bc4-980c78be14068109} 1 1 Octarine.Widget32
compute 232 9.000000000e-05
classification 233 {f4e3e24d15631276-976dc0fa1732c9f6} 0 1 Octarine.Widget27
compute 233 8.000000000e-05
classification 234 {192fcf6742786bc4-980c78be14068109} 1 1 Octarine.Widget32
compute 234 8.000000000e-05
classification 235 {66a0e0fe36e6eeec-88f180f22029ea5c} 0 1 Octarine.Widget37
compute 235 9.000000000e-05
classification 236 {c02f9eb59ea7b0a3-30fa4430cc5401d5} 0 1 Octarine.Widget34
compute 236 8.000000000e-05
classification 237 {be40309253372f96-cc04403cc3e04c54} 0 1 Octarine.Widget39
compute 237 8.000000000e-05
classification 238 {52cc2b933c00b249-573d881469cf8887} 0 1 Octarine.Widget42
compute 238 9.000000000e-05
classification 239 {97867ae7eba7a4f7-8b00412242c03c5b} 0 1 Octarine.Widget41
compute 239 8.000000000e-05
classification 240 {56cca2d30bf2315d-072e189356cefbec} 0 1 Octarine.Widget46
compute 240 8.000000000e-05
classification 241 {e84be4981767265e-212154d174d43632} 0 1 Octarine.Widget47
compute 241 9.000000000e-05
classification 242 {6d8c641333155fab-4ab69eb19b96623f} 1 1 Octarine.Widget48
compute 242 8.000000000e-05
classification 243 {d1587a80c316e212-15faace79cc49627} 0 1 Octarine.Widget53
compute 243 8.000000000e-05
classification 244 {76f425219bd900af-e1914fe5340cccd5} 1 1 Octarine.Widget52
compute 244 9.000000000e-05
classification 245 {af4f5c8421d8b8e2-5b717341e54fee37} 0 1 Octarine.Widget55
compute 245 8.000000000e-05
classification 246 {ce96ce811c54a9fe-8463ff302c633edd} 1 1 Octarine.Widget60
compute 246 8.000000000e-05
classification 247 {f4248fdc2409ab6f-c5b30e75764ea06d} 0 1 Octarine.Widget57
compute 247 9.000000000e-05
classification 248 {c0d3d2c4c517f471-b7694c3a48199c58} 0 1 Octarine.Widget62
compute 248 8.000000000e-05
classification 249 {c9e62b31503ccb83-b426023995906864} 0 1 Octarine.Widget67
compute 249 8.000000000e-05
classification 250 {4904f5b0cc51c5ba-9bff48e7168550ff} 1 1 Octarine.Widget08
compute 250 1.300000000e-04
classification 251 {7a344d824062d50c-1931e02032a5716c} 0 1 Octarine.Widget19
compute 251 9.000000000e-05
classification 252 {f3c339b5076081e0-7922a445ded44fd4} 0 1 Octarine.Widget69
compute 252 8.000000000e-05
classification 253 {701cd3cacca41669-aa63965b4612ca0b} 0 1 Octarine.Widget74
compute 253 8.000000000e-05
classification 254 {35a8f95ff7060d6e-3ac19270f19b1060} 1 1 Octarine.Widget24
compute 254 9.000000000e-05
classification 255 {a39d93205331b216-c551ed275e45cf7d} 1 1 Octarine.Widget76
compute 255 8.000000000e-05
classification 256 {540ac1d315382d5d-7e919ac8d59b0d8c} 0 1 Octarine.Widget81
compute 256 8.000000000e-05
classification 257 {c760f28ee1e1bad6-5c4e09478ffc45c5} 0 1 Octarine.Widget29
compute 257 9.000000000e-05
classification 258 {dc020ed8c547e8bb-16d8dbe37990decb} 0 1 Octarine.Widget83
compute 258 8.000000000e-05
classification 259 {5806991484078a8b-e85c6c5bbdc9ec85} 1 1 Octarine.Widget88
compute 259 8.000000000e-05
classification 260 {c02f9eb59ea7b0a3-30fa4430cc5401d5} 0 1 Octarine.Widget34
compute 260 9.000000000e-05
classification 261 {7102d3caf1c159db-35cdfb0a4d5b4db3} 0 1 Octarine.Widget90
compute 261 8.000000000e-05
classification 262 {0ad9af436d7ec3c4-aa1da0f543f75907} 0 1 Octarine.Widget95
compute 262 8.000000000e-05
classification 263 {be40309253372f96-cc04403cc3e04c54} 0 1 Octarine.Widget39
compute 263 9.000000000e-05
classification 264 {d048f35dc97ffee6-9d906e5a0aa4efd4} 0 1 Octarine.Widget15
compute 264 8.000000000e-05
classification 265 {9443997cd565f29c-000f5b22228a0bdb} 1 1 Octarine.Widget20
compute 265 8.000000000e-05
classification 266 {abe748afa81e0635-8a374637f03a2085} 1 1 Octarine.Widget44
compute 266 9.000000000e-05
classification 267 {c4529aba7d465848-bb36bc826ac87991} 0 1 Octarine.Widget22
compute 267 8.000000000e-05
classification 268 {f4e3e24d15631276-976dc0fa1732c9f6} 0 1 Octarine.Widget27
compute 268 8.000000000e-05
classification 269 {39dbee4ec04c6efc-2b8892d2300a86e9} 0 1 Octarine.Widget49
compute 269 9.000000000e-05
classification 270 {c760f28ee1e1bad6-5c4e09478ffc45c5} 0 1 Octarine.Widget29
compute 270 8.000000000e-05
classification 271 {c02f9eb59ea7b0a3-30fa4430cc5401d5} 0 1 Octarine.Widget34
compute 271 8.000000000e-05
classification 272 {e88c08daa65ba0c3-f0bdb5b92b5044a2} 0 1 Octarine.Widget54
compute 272 9.000000000e-05
classification 273 {0cb9b1975c37f30e-9a62ad7d8e35a010} 1 1 Octarine.Widget36
compute 273 8.000000000e-05
classification 274 {97867ae7eba7a4f7-8b00412242c03c5b} 0 1 Octarine.Widget41
compute 274 8.000000000e-05
classification 275 {fe577335db2dce67-28bc66ac9b64df43} 0 1 Octarine.Widget59
compute 275 9.000000000e-05
classification 276 {0f94e1e094981fd7-40d25bde2dc2571e} 0 1 Octarine.Widget43
compute 276 8.000000000e-05
classification 277 {6d8c641333155fab-4ab69eb19b96623f} 1 1 Octarine.Widget48
compute 277 8.000000000e-05
classification 278 {1888717b9c8b1347-7c811c12aa2fc28a} 1 1 Octarine.Widget64
compute 278 9.000000000e-05
classification 279 {8c65cccc34320e9e-3194c5a8fdbdf88e} 0 1 Octarine.Widget50
compute 279 8.000000000e-05
classification 280 {af4f5c8421d8b8e2-5b717341e54fee37} 0 1 Octarine.Widget55
compute 280 8.000000000e-05
classification 281 {5a361c50dd4408db-8c26985273819a8e} 0 1 Octarine.Widget09
compute 281 1.300000000e-04
classification 282 {2517c99f4a82f00a-1711c5771c76bf46} 0 1 Octarine.Widget26
compute 282 9.000000000e-05
classification 283 {f4248fdc2409ab6f-c5b30e75764ea06d} 0 1 Octarine.Widget57
compute 283 8.000000000e-05
classification 284 {c0d3d2c4c517f471-b7694c3a48199c58} 0 1 Octarine.Widget62
compute 284 8.000000000e-05
classification 285 {b12cd9e39ae3d995-b88aef10322f5a56} 0 1 Octarine.Widget31
compute 285 9.000000000e-05
classification 286 {1888717b9c8b1347-7c811c12aa2fc28a} 1 1 Octarine.Widget64
compute 286 8.000000000e-05
classification 287 {f3c339b5076081e0-7922a445ded44fd4} 0 1 Octarine.Widget69
compute 287 8.000000000e-05
classification 288 {0cb9b1975c37f30e-9a62ad7d8e35a010} 1 1 Octarine.Widget36
compute 288 9.000000000e-05
classification 289 {ae405bff708d840b-831b6acdfb51a0b2} 0 1 Octarine.Widget71
compute 289 8.000000000e-05
classification 290 {a39d93205331b216-c551ed275e45cf7d} 1 1 Octarine.Widget76
compute 290 8.000000000e-05
classification 291 {97867ae7eba7a4f7-8b00412242c03c5b} 0 1 Octarine.Widget41
compute 291 9.000000000e-05
classification 292 {cf038d63650e3845-978938d80fdcf3af} 0 1 Octarine.Widget78
compute 292 8.000000000e-05
classification 293 {dc020ed8c547e8bb-16d8dbe37990decb} 0 1 Octarine.Widget83
compute 293 8.000000000e-05
classification 294 {56cca2d30bf2315d-072e189356cefbec} 0 1 Octarine.Widget46
compute 294 9.000000000e-05
classification 295 {5d67cb4de61b27ae-8a0d55df52d02c03} 0 1 Octarine.Widget85
compute 295 8.000000000e-05
classification 296 {7102d3caf1c159db-35cdfb0a4d5b4db3} 0 1 Octarine.Widget90
compute 296 8.000000000e-05
classification 297 {68377de5be6b4fa4-70ad09dd61cc0744} 0 1 Octarine.Widget51
compute 297 9.000000000e-05
classification 298 {73637748596509fd-d97532df98059b33} 1 1 Octarine.Widget92
compute 298 8.000000000e-05
classification 299 {d048f35dc97ffee6-9d906e5a0aa4efd4} 0 1 Octarine.Widget15
compute 299 8.000000000e-05
classification 300 {9553b9bfb0be45ef-cf5651ff27815510} 1 1 Octarine.Widget56
compute 300 9.000000000e-05
classification 301 {505037238861d37b-515d95582ae91c89} 0 1 Octarine.Widget17
compute 301 8.000000000e-05
classification 302 {c4529aba7d465848-bb36bc826ac87991} 0 1 Octarine.Widget22
compute 302 8.000000000e-05
classification 303 {f1efc9932ea0b628-9af63c2ca68bf504} 0 1 Octarine.Widget61
compute 303 9.000000000e-05
classification 304 {35a8f95ff7060d6e-3ac19270f19b1060} 1 1 Octarine.Widget24
compute 304 8.000000000e-05
classification 305 {c760f28ee1e1bad6-5c4e09478ffc45c5} 0 1 Octarine.Widget29
compute 305 8.000000000e-05
classification 306 {104ff6bccdadfefd-1f7628ffdd4eba6a} 0 1 Octarine.Widget66
compute 306 9.000000000e-05
classification 307 {b12cd9e39ae3d995-b88aef10322f5a56} 0 1 Octarine.Widget31
compute 307 8.000000000e-05
classification 308 {0cb9b1975c37f30e-9a62ad7d8e35a010} 1 1 Octarine.Widget36
compute 308 8.000000000e-05
classification 309 {ae405bff708d840b-831b6acdfb51a0b2} 0 1 Octarine.Widget71
compute 309 9.000000000e-05
classification 310 {8ab58797716f98bb-ff996e4cf1c3f50d} 0 1 Octarine.Widget38
compute 310 8.000000000e-05
classification 311 {0f94e1e094981fd7-40d25bde2dc2571e} 0 1 Octarine.Widget43
compute 311 8.000000000e-05
classification 312 {e535c0c718af6369-7de6ebe226d9ac9c} 0 1 Octarine.Widget10
compute 312 1.300000000e-04
classification 313 {c5ab98752c5ef412-cb8c70a039aefe3b} 0 1 Octarine.Widget33
compute 313 9.000000000e-05
classification 314 {1a4815e3c1290793-a0f29212ee43e2d1} 0 1 Octarine.Widget45
compute 314 8.000000000e-05
classification 315 {8c65cccc34320e9e-3194c5a8fdbdf88e} 0 1 Octarine.Widget50
compute 315 8.000000000e-05
classification 316 {8ab58797716f98bb-ff996e4cf1c3f50d} 0 1 Octarine.Widget38
compute 316 9.000000000e-05
classification 317 {76f425219bd900af-e1914fe5340cccd5} 1 1 Octarine.Widget52
compute 317 8.000000000e-05
classification 318 {f4248fdc2409ab6f-c5b30e75764ea06d} 0 1 Octarine.Widget57
compute 318 8.000000000e-05
classification 319 {0f94e1e094981fd7-40d25bde2dc2571e} 0 1 Octarine.Widget43
compute 319 9.000000000e-05
classification 320 {fe577335db2dce67-28bc66ac9b64df43} 0 1 Octarine.Widget59
compute 320 8.000000000e-05
classification 321 {1888717b9c8b1347-7c811c12aa2fc28a} 1 1 Octarine.Widget64
compute 321 8.000000000e-05
classification 322 {6d8c641333155fab-4ab69eb19b96623f} 1 1 Octarine.Widget48
compute 322 9.000000000e-05
classification 323 {104ff6bccdadfefd-1f7628ffdd4eba6a} 0 1 Octarine.Widget66
compute 323 8.000000000e-05
classification 324 {ae405bff708d840b-831b6acdfb51a0b2} 0 1 Octarine.Widget71
compute 324 8.000000000e-05
classification 325 {d1587a80c316e212-15faace79cc49627} 0 1 Octarine.Widget53
compute 325 9.000000000e-05
classification 326 {18b4b3d0cc9cf741-8bca4e76cc6a80aa} 0 1 Octarine.Widget73
compute 326 8.000000000e-05
classification 327 {cf038d63650e3845-978938d80fdcf3af} 0 1 Octarine.Widget78
compute 327 8.000000000e-05
classification 328 {c48b6fd6a6a56201-4d00e2c25ef00346} 0 1 Octarine.Widget58
compute 328 9.000000000e-05
classification 329 {7fa34c2b792915ec-d1e8964c03386cd5} 1 1 Octarine.Widget80
compute 329 8.000000000e-05
classification 330 {5d67cb4de61b27ae-8a0d55df52d02c03} 0 1 Octarine.Widget85
compute 330 8.000000000e-05
classification 331 {5968a2fba15e0c64-0ee87673e723666d} 0 1 Octarine.Widget63
compute 331 9.000000000e-05
classification 332 {9e0c02aa2f32a594-7b96b86cab7c207a} 0 1 Octarine.Widget87
compute 332 8.000000000e-05
classification 333 {73637748596509fd-d97532df98059b33} 1 1 Octarine.Widget92
compute 333 8.000000000e-05
classification 334 {7f263d341d73cbb2-67ac792792ea91de} 1 1 Octarine.Widget68
compute 334 9.000000000e-05
classification 335 {586e8705e79d8b76-a61ac33e78384829} 0 1 Octarine.Widget94
compute 335 8.000000000e-05
classification 336 {505037238861d37b-515d95582ae91c89} 0 1 Octarine.Widget17
compute 336 8.000000000e-05
classification 337 {18b4b3d0cc9cf741-8bca4e76cc6a80aa} 0 1 Octarine.Widget73
compute 337 9.000000000e-05
classification 338 {7a344d824062d50c-1931e02032a5716c} 0 1 Octarine.Widget19
compute 338 8.000000000e-05
classification 339 {35a8f95ff7060d6e-3ac19270f19b1060} 1 1 Octarine.Widget24
compute 339 8.000000000e-05
classification 340 {cf038d63650e3845-978938d80fdcf3af} 0 1 Octarine.Widget78
compute 340 9.000000000e-05
classification 341 {2517c99f4a82f00a-1711c5771c76bf46} 0 1 Octarine.Widget26
compute 341 8.000000000e-05
classification 342 {b12cd9e39ae3d995-b88aef10322f5a56} 0 1 Octarine.Widget31
compute 342 8.000000000e-05
classification 343 {a08444b8df2ef9d4-5c599c5a917a2a8d} 0 1 Octarine.Widget11
compute 343 1.300000000e-04
classification 344 {b13e3c958e74c93f-4cd28ccdc673ca21} 1 1 Octarine.Widget40
compute 344 9.000000000e-05
classification 345 {c5ab98752c5ef412-cb8c70a039aefe3b} 0 1 Octarine.Widget33
compute 345 8.000000000e-05
classification 346 {8ab58797716f98bb-ff996e4cf1c3f50d} 0 1 Octarine.Widget38
compute 346 8.000000000e-05
classification 347 {1a4815e3c1290793-a0f29212ee43e2d1} 0 1 Octarine.Widget45
compute 347 9.000000000e-05
classification 348 {b13e3c958e74c93f-4cd28ccdc673ca21} 1 1 Octarine.Widget40
compute 348 8.000000000e-05
classification 349 {1a4815e3c1290793-a0f29212ee43e2d1} 0 1 Octarine.Widget45
compute 349 8.000000000e-05
classification 350 {8c65cccc34320e9e-3194c5a8fdbdf88e} 0 1 Octarine.Widget50
compute 350 9.000000000e-05
classification 351 {e84be4981767265e-212154d174d43632} 0 1 Octarine.Widget47
compute 351 8.000000000e-05
classification 352 {76f425219bd900af-e1914fe5340cccd5} 1 1 Octarine.Widget52
compute 352 8.000000000e-05
classification 353 {af4f5c8421d8b8e2-5b717341e54fee37} 0 1 Octarine.Widget55
compute 353 9.000000000e-05
classification 354 {e88c08daa65ba0c3-f0bdb5b92b5044a2} 0 1 Octarine.Widget54
compute 354 8.000000000e-05
classification 355 {fe577335db2dce67-28bc66ac9b64df43} 0 1 Octarine.Widget59
compute 355 8.000000000e-05
classification 356 {ce96ce811c54a9fe-8463ff302c633edd} 1 1 Octarine.Widget60
compute 356 9.000000000e-05
classification 357 {f1efc9932ea0b628-9af63c2ca68bf504} 0 1 Octarine.Widget61
compute 357 8.000000000e-05
classification 358 {104ff6bccdadfefd-1f7628ffdd4eba6a} 0 1 Octarine.Widget66
compute 358 8.000000000e-05
classification 359 {2bccc3212c141576-e1aef7688cff43b5} 0 1 Octarine.Widget65
compute 359 9.000000000e-05
classification 360 {7f263d341d73cbb2-67ac792792ea91de} 1 1 Octarine.Widget68
compute 360 8.000000000e-05
classification 361 {18b4b3d0cc9cf741-8bca4e76cc6a80aa} 0 1 Octarine.Widget73
compute 361 8.000000000e-05
classification 362 {f56b64f185f37fd2-c0f393a9fc1d30ee} 0 1 Octarine.Widget70
compute 362 9.000000000e-05
classification 363 {1f388d5e5c437c6d-dc18e81cad1ad5e5} 0 1 Octarine.Widget75
compute 363 8.000000000e-05
classification 364 {7fa34c2b792915ec-d1e8964c03386cd5} 1 1 Octarine.Widget80
compute 364 8.000000000e-05
classification 365 {1f388d5e5c437c6d-dc18e81cad1ad5e5} 0 1 Octarine.Widget75
compute 365 9.000000000e-05
classification 366 {d124291f74c9224a-14ae955a5cc78ee3} 0 1 Octarine.Widget82
compute 366 8.000000000e-05
classification 367 {9e0c02aa2f32a594-7b96b86cab7c207a} 0 1 Octarine.Widget87
compute 367 8.000000000e-05
classification 368 {7fa34c2b792915ec-d1e8964c03386cd5} 1 1 Octarine.Widget80
compute 368 9.000000000e-05
classification 369 {67604103a36e8315-b7d23f9a2477a9cb} 0 1 Octarine.Widget89
compute 369 8.000000000e-05
classification 370 {586e8705e79d8b76-a61ac33e78384829} 0 1 Octarine.Widget94
compute 370 8.000000000e-05
classification 371 {5d67cb4de61b27ae-8a0d55df52d02c03} 0 1 Octarine.Widget85
compute 371 9.000000000e-05
classification 372 {8481b7f14cc51499-6bdf7e141211c52b} 0 1 Octarine.Widget14
compute 372 8.000000000e-05
classification 373 {7a344d824062d50c-1931e02032a5716c} 0 1 Octarine.Widget19
compute 373 8.000000000e-05
classification 374 {0d03a3bf3ca38347-b4ed6aa7e051f55f} 1 1 Octarine.Widget12
compute 374 1.300000000e-04
classification 375 {e84be4981767265e-212154d174d43632} 0 1 Octarine.Widget47
compute 375 9.000000000e-05
classification 376 {c394a67471e65845-864c928dd38311b0} 0 1 Octarine.Widget21
compute 376 8.000000000e-05
classification 377 {2517c99f4a82f00a-1711c5771c76bf46} 0 1 Octarine.Widget26
compute 377 8.000000000e-05
classification 378 {76f425219bd900af-e1914fe5340cccd5} 1 1 Octarine.Widget52
compute 378 9.000000000e-05
classification 379 {c2e17527a49a7b86-dc3efb0b3e634c6b} 1 1 Octarine.Widget28
compute 379 8.000000000e-05
classification 380 {c5ab98752c5ef412-cb8c70a039aefe3b} 0 1 Octarine.Widget33
compute 380 8.000000000e-05
classification 381 {f4248fdc2409ab6f-c5b30e75764ea06d} 0 1 Octarine.Widget57
compute 381 9.000000000e-05
classification 382 {1a8e15cecaea66ad-f0b8c4400ba9955b} 0 1 Octarine.Widget35
compute 382 8.000000000e-05
classification 383 {b13e3c958e74c93f-4cd28ccdc673ca21} 1 1 Octarine.Widget40
compute 383 8.000000000e-05
classification 384 {c0d3d2c4c517f471-b7694c3a48199c58} 0 1 Octarine.Widget62
compute 384 9.000000000e-05
classification 385 {52cc2b933c00b249-573d881469cf8887} 0 1 Octarine.Widget42
compute 385 8.000000000e-05
classification 386 {e84be4981767265e-212154d174d43632} 0 1 Octarine.Widget47
compute 386 8.000000000e-05
classification 387 {c9e62b31503ccb83-b426023995906864} 0 1 Octarine.Widget67
compute 387 9.000000000e-05
classification 388 {39dbee4ec04c6efc-2b8892d2300a86e9} 0 1 Octarine.Widget49
compute 388 8.000000000e-05
classification 389 {e88c08daa65ba0c3-f0bdb5b92b5044a2} 0 1 Octarine.Widget54
compute 389 8.000000000e-05
classification 390 {e635eab8092fd582-f79865aace1f273d} 1 1 Octarine.Widget72
compute 390 9.000000000e-05
classification 391 {9553b9bfb0be45ef-cf5651ff27815510} 1 1 Octarine.Widget56
compute 391 8.000000000e-05
classification 392 {f1efc9932ea0b628-9af63c2ca68bf504} 0 1 Octarine.Widget61
compute 392 8.000000000e-05
classification 393 {6f5824cdfa92765e-17d913f141aa2781} 0 1 Octarine.Widget77
compute 393 9.000000000e-05
classification 394 {5968a2fba15e0c64-0ee87673e723666d} 0 1 Octarine.Widget63
compute 394 8.000000000e-05
classification 395 {7f263d341d73cbb2-67ac792792ea91de} 1 1 Octarine.Widget68
compute 395 8.000000000e-05
classification 396 {d124291f74c9224a-14ae955a5cc78ee3} 0 1 Octarine.Widget82
compute 396 9.000000000e-05
classification 397 {f56b64f185f37fd2-c0f393a9fc1d30ee} 0 1 Octarine.Widget70
compute 397 8.000000000e-05
classification 398 {1f388d5e5c437c6d-dc18e81cad1ad5e5} 0 1 Octarine.Widget75
compute 398 8.000000000e-05
classification 399 {9e0c02aa2f32a594-7b96b86cab7c207a} 0 1 Octarine.Widget87
compute 399 9.000000000e-05
classification 400 {6f5824cdfa92765e-17d913f141aa2781} 0 1 Octarine.Widget77
compute 400 8.000000000e-05
classification 401 {d124291f74c9224a-14ae955a5cc78ee3} 0 1 Octarine.Widget82
compute 401 8.000000000e-05
classification 402 {73637748596509fd-d97532df98059b33} 1 1 Octarine.Widget92
compute 402 9.000000000e-05
classification 403 {3e3ac3a5aaf37ed9-219241c55361ec28} 1 1 Octarine.Widget84
compute 403 8.000000000e-05
classification 404 {67604103a36e8315-b7d23f9a2477a9cb} 0 1 Octarine.Widget89
compute 404 8.000000000e-05
classification 405 {4c175a61c7f8fa5a-78e7a477a9616a28} 0 1 Octarine.Widget13
compute 405 1.300000000e-04
classification 406 {e88c08daa65ba0c3-f0bdb5b92b5044a2} 0 1 Octarine.Widget54
compute 406 9.000000000e-05
classification 407 {37ca9627bca0e81e-37cb8102d6de2dea} 0 1 Octarine.Widget91
compute 407 8.000000000e-05
classification 408 {8481b7f14cc51499-6bdf7e141211c52b} 0 1 Octarine.Widget14
compute 408 8.000000000e-05
classification 409 {fe577335db2dce67-28bc66ac9b64df43} 0 1 Octarine.Widget59
compute 409 9.000000000e-05
classification 410 {36efefe6797c44c6-cc3682dfd42dec48} 1 1 Octarine.Widget16
compute 410 8.000000000e-05
classification 411 {c394a67471e65845-864c928dd38311b0} 0 1 Octarine.Widget21
compute 411 8.000000000e-05
classification 412 {1888717b9c8b1347-7c811c12aa2fc28a} 1 1 Octarine.Widget64
compute 412 9.000000000e-05
classification 413 {fcf4f623f3027518-724c4717d5dd56b1} 0 1 Octarine.Widget23
compute 413 8.000000000e-05
classification 414 {c2e17527a49a7b86-dc3efb0b3e634c6b} 1 1 Octarine.Widget28
compute 414 8.000000000e-05
classification 415 {f3c339b5076081e0-7922a445ded44fd4} 0 1 Octarine.Widget69
compute 415 9.000000000e-05
classification 416 {c81a5f033174e355-88b8083c1d7878ae} 0 1 Octarine.Widget30
compute 416 8.000000000e-05
classification 417 {1a8e15cecaea66ad-f0b8c4400ba9955b} 0 1 Octarine.Widget35
compute 417 8.000000000e-05
classification 418 {701cd3cacca41669-aa63965b4612ca0b} 0 1 Octarine.Widget74
compute 418 9.000000000e-05
classification 419 {66a0e0fe36e6eeec-88f180f22029ea5c} 0 1 Octarine.Widget37
compute 419 8.000000000e-05
classification 420 {52cc2b933c00b249-573d881469cf8887} 0 1 Octarine.Widget42
compute 420 8.000000000e-05
classification 421 {2c424325fbd800db-9b887316f91b18e1} 0 1 Octarine.Widget79
compute 421 9.000000000e-05
classification 422 {abe748afa81e0635-8a374637f03a2085} 1 1 Octarine.Widget44
compute 422 8.000000000e-05
classification 423 {39dbee4ec04c6efc-2b8892d2300a86e9} 0 1 Octarine.Widget49
compute 423 8.000000000e-05
classification 424 {3e3ac3a5aaf37ed9-219241c55361ec28} 1 1 Octarine.Widget84
compute 424 9.000000000e-05
classification 425 {68377de5be6b4fa4-70ad09dd61cc0744} 0 1 Octarine.Widget51
compute 425 8.000000000e-05
classification 426 {9553b9bfb0be45ef-cf5651ff27815510} 1 1 Octarine.Widget56
compute 426 8.000000000e-05
classification 427 {67604103a36e8315-b7d23f9a2477a9cb} 0 1 Octarine.Widget89
compute 427 9.000000000e-05
classification 428 {c48b6fd6a6a56201-4d00e2c25ef00346} 0 1 Octarine.Widget58
compute 428 8.000000000e-05
classification 429 {5968a2fba15e0c64-0ee87673e723666d} 0 1 Octarine.Widget63
compute 429 8.000000000e-05
classification 430 {586e8705e79d8b76-a61ac33e78384829} 0 1 Octarine.Widget94
compute 430 9.000000000e-05
classification 431 {2bccc3212c141576-e1aef7688cff43b5} 0 1 Octarine.Widget65
compute 431 8.000000000e-05
classification 432 {f56b64f185f37fd2-c0f393a9fc1d30ee} 0 1 Octarine.Widget70
compute 432 8.000000000e-05
classification 433 {505037238861d37b-515d95582ae91c89} 0 1 Octarine.Widget17
compute 433 9.000000000e-05
classification 434 {e635eab8092fd582-f79865aace1f273d} 1 1 Octarine.Widget72
compute 434 8.000000000e-05
classification 435 {6f5824cdfa92765e-17d913f141aa2781} 0 1 Octarine.Widget77
compute 435 8.000000000e-05
classification 436 {4e1c3126bcdfa2ad-f8c7a55a32ae1715} 1 1 Octarine.View
compute 436 2.000000000e-03
classification 437 {39b1905c26247d28-10698e470ca6e077} 1 1 Octarine.PageView
compute 437 2.000000000e-03
classification 438 {d03dc0e42d541913-60b5136578b7ba30} 0 1 Octarine.UndoLog
compute 438 1.350000000e-04
classification 439 {99ef5310928db364-030ee6cfbe944407} 2 1 Octarine.FileStore
compute 439 1.380000000e-02
classification 440 {badeb50feb81f95c-d3585bcd80aad05e} 0 1 Octarine.DocReader
compute 440 5.072000000e-02
classification 441 {afaebdacc7134d2b-52b2d5776505d014} 0 1 Octarine.TextProps
compute 441 2.580000000e-03
classification 442 {8b52709af06f9969-7a1996e32f780034} 0 1 Octarine.TextEngine
compute 442 2.000000000e-03
classification 443 {f0db75a7a04d5627-ba34b57f56f6a334} 0 1 Octarine.Formatter
compute 443 2.400000000e-04
classification 444 {19a780f915869d88-5bb4e5425f521fa0} 0 1 Octarine.Dict02
compute 444 1.000000000e-05
classification 445 {416920d0b732f557-4037e9512477523f} 0 1 Octarine.Dict09
compute 445 1.000000000e-05
classification 446 {e3224c5ecb94ba38-fab9eb8b43c1ffd1} 0 1 Octarine.Dict16
compute 446 1.000000000e-05
classification 447 {ed54f5b82ecb8adb-59f9d6df12ebcc86} 0 8 Octarine.Paragraph
compute 447 3.360000000e-03
classification 448 {9b8d71baaf47393b-c5e87744661d28da} 0 2 Octarine.GlyphRun
compute 448 6.000000000e-05
classification 449 {5730c3c466dbf632-bd6131d7d69a12ed} 0 8 Octarine.UndoEntry
compute 449 1.280000000e-04
classification 450 {9b8d71baaf47393b-c5e87744661d28da} 0 2 Octarine.GlyphRun
compute 450 6.000000000e-05
classification 451 {9b8d71baaf47393b-c5e87744661d28da} 0 2 Octarine.GlyphRun
compute 451 6.000000000e-05
classification 452 {9b8d71baaf47393b-c5e87744661d28da} 0 2 Octarine.GlyphRun
compute 452 6.000000000e-05
classification 453 {5730c3c466dbf632-bd6131d7d69a12ed} 0 1 Octarine.UndoEntry
compute 453 1.600000000e-05
call 0 453 {c8e9e765b87c2836-e419c56ee1c02fe2} 0 0 req 10:1:1604 ; rep 6:1:76 ;
call 0 438 {40b29d677c3c9bfb-07b3c0377b9105db} 0 0 req 9:1:604 ; rep 7:1:144 ;
call 442 437 {4f208dc8893e8ae2-0808d22e1a7777c8} 0 0 req 12:1:8104 ; rep 6:1:76 ;
call 443 452 {9ed1b13284c45e19-a8b305e494edae1a} 0 0 req 8:2:648 ; rep 6:2:200 ;
call 443 450 {9ed1b13284c45e19-a8b305e494edae1a} 0 0 req 8:2:648 ; rep 6:2:200 ;
call 442 449 {c8e9e765b87c2836-e419c56ee1c02fe2} 0 0 req 8:8:4032 ; rep 6:8:608 ;
call 438 449 {c8e9e765b87c2836-e419c56ee1c02fe2} 0 0 req 8:8:2272 ; rep 6:8:608 ;
call 442 447 {c554c1bd66eeb1cf-960df612f3c59275} 1 0 req 6:8:672 ; rep 6:8:800 ;
call 442 440 {22c0f8b1b38bbb3e-1374aa7e8e07f4b3} 1 0 req 6:40:4640 ; rep 8:40:20160 ;
call 442 441 {3b92af302daa038b-82fb1eff8929f31d} 1 0 req 6:12:1200 ; rep 8:12:3216 ;
call 442 446 {ec588a09417cfba8-a152bc25dabe661e} 0 0 req 7:1:156 ; rep 6:1:76 ;
call 0 442 {12983bf84524f5cf-b9dca0afd582f057} 0 0 req 8:1:488 ; rep 6:1:76 ;
call 438 453 {c8e9e765b87c2836-e419c56ee1c02fe2} 0 0 req 9:1:604 ; rep 6:1:76 ;
call 0 441 {3b92af302daa038b-82fb1eff8929f31d} 0 0 req 7:1:180 ; rep 6:1:80 ;
call 441 439 {bbc1318e25754ba4-7973196065607c9a} 1 0 req 7:40:5440 ; rep 11:40:85280 ;
call 441 439 {bbc1318e25754ba4-7973196065607c9a} 0 0 req 6:1:112 ; rep 6:1:80 ;
call 0 440 {22c0f8b1b38bbb3e-1374aa7e8e07f4b3} 0 0 req 7:1:216 ; rep 6:1:108 ;
call 440 439 {bbc1318e25754ba4-7973196065607c9a} 2 0 req 6:1:100 ; rep 6:1:64 ;
call 440 439 {bbc1318e25754ba4-7973196065607c9a} 0 0 req 6:1:108 ; rep 6:1:80 ;
call 0 405 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 433 435 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 433 434 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 430 432 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 430 431 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 405 427 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 427 429 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 405 424 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 424 426 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 424 425 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 421 423 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 421 422 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 418 420 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 418 419 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 405 415 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 415 417 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 415 416 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 405 412 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 412 413 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 405 406 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 406 407 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 442 447 {c554c1bd66eeb1cf-960df612f3c59275} 0 0 req 9:40:22080 ; rep 6:40:4960 ;
call 0 374 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 402 404 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 402 403 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 399 401 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 399 400 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 374 396 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 396 398 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 374 393 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 442 438 {40b29d677c3c9bfb-07b3c0377b9105db} 0 0 req 8:8:2272 ; rep 7:8:1152 ;
call 393 395 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 393 394 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 390 392 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 390 391 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 387 389 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 387 388 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 374 384 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 384 386 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 384 385 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 374 381 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 381 383 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 442 445 {ec588a09417cfba8-a152bc25dabe661e} 0 0 req 7:1:156 ; rep 6:1:76 ;
call 409 411 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 374 375 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 0 343 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 371 373 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 406 408 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 371 372 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 368 370 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 368 369 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 343 365 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 365 367 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 343 362 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 362 363 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 359 361 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 359 360 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 356 358 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 343 353 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 353 355 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 343 350 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 350 352 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 340 342 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 337 339 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 312 334 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 334 336 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 312 331 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 331 333 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 328 330 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 325 327 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 312 322 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 322 324 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 312 319 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 319 321 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 316 317 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 0 281 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 309 311 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 281 306 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 306 308 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 306 307 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 281 303 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 281 300 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 300 302 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 281 297 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 297 299 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 294 296 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 281 291 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 291 293 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 281 288 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 285 286 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 0 250 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 278 280 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 250 275 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 275 277 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 275 276 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 250 272 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 272 274 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 250 269 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 269 271 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 250 266 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 266 268 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 266 267 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 263 265 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 250 260 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 260 262 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 250 257 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 251 253 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 0 219 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 247 249 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 219 244 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 244 246 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 219 241 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 269 270 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 269 250 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 95 117 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 266 267 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 250 263 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 263 264 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 281 285 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 263 250 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 250 260 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 250 257 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 143 142 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 189 191 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 257 250 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 253 251 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 251 252 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 262 260 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 322 312 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 409 410 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 244 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 246 244 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 219 241 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 393 374 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 10 12 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 243 241 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 241 219 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 219 238 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 433 405 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 240 238 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 219 247 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 238 239 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 3 19 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 238 219 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 64 86 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 235 236 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 234 232 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 219 232 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 232 233 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 229 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 231 229 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 229 230 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 226 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 158 160 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 228 226 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 226 227 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 238 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 226 219 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 223 219 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 350 351 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 95 114 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 100 99 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 374 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 222 220 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 241 243 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 405 418 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 220 221 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 220 219 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 188 213 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 161 162 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 213 214 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 210 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 362 343 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 210 188 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 188 207 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 409 410 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 154 126 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 402 374 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 270 269 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 188 216 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 207 208 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 207 188 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 267 266 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 374 381 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 204 205 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 412 414 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 312 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 1 58 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 210 211 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 158 159 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 264 263 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 203 201 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 443 443 {5060085d401b6ca9-ae88695f667765d7} 0 0 req 8:12:4176 ; rep 6:12:912 ;
call 188 201 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 201 202 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 261 260 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 200 198 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 188 195 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 81 80 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 195 188 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 319 320 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 64 83 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 216 217 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 69 68 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 252 251 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 99 100 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 151 152 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 191 189 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 210 212 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 189 188 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 0 157 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 157 182 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 281 309 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 245 244 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 184 182 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 130 131 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 182 183 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 64 68 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 283 282 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 1 40 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 157 179 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 331 312 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 244 245 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 331 333 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 235 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 95 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 181 179 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 179 157 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 157 176 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 378 379 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 123 95 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 405 433 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 371 343 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 239 238 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 374 387 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 189 190 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 426 424 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 3 28 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 157 185 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 176 177 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 29 28 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 236 235 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 343 350 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 175 173 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 1 40 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 173 174 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 421 422 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 235 219 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 157 170 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 405 418 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 179 180 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 127 128 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 233 232 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 172 170 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 170 171 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 171 170 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 157 167 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 230 229 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 169 167 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 347 343 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 417 415 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 124 123 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 167 168 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 20 19 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 157 164 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 362 364 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 343 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 227 226 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 166 164 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 374 399 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 164 157 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 412 405 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 229 219 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 316 317 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 161 157 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 288 289 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 0 343 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 185 186 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 38 37 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 221 220 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 160 158 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 408 406 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 179 181 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 37 1 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 11 10 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 0 126 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 380 378 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 151 153 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 217 216 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 156 154 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 412 413 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 157 176 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 126 151 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 250 278 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 214 213 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 153 151 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 151 126 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 272 273 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 359 361 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 126 148 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 300 281 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 244 245 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 192 193 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 126 130 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 345 344 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 108 95 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 3 7 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 204 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 211 210 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 150 148 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 148 126 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 208 207 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 343 356 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 158 159 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 395 393 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 0 374 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 126 154 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 145 146 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 440 439 {bbc1318e25754ba4-7973196065607c9a} 1 0 req 7:416:56576 ; rep 10:416:673920 ;
call 145 126 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 393 395 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 142 143 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 390 391 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 225 223 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 204 188 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 126 139 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 374 387 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 229 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 148 149 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 96 97 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 141 139 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 139 140 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 130 126 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 33 31 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 140 139 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 126 136 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 136 137 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 126 133 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 196 195 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 135 133 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 343 368 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 133 126 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 381 374 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 353 354 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 405 406 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 250 254 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 232 219 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 0 442 {12983bf84524f5cf-b9dca0afd582f057} 1 0 req 7:1:136 ; rep 6:1:76 ;
call 405 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 131 130 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 64 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 215 213 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 13 15 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 409 405 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 46 47 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 133 135 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 70 68 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 49 1 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 183 182 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 229 231 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 122 120 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 1 46 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 248 247 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 187 185 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 198 199 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 435 433 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 1 37 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 371 373 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 266 250 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 83 64 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 117 119 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 157 173 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 46 48 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 126 136 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 288 281 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 442 443 {5060085d401b6ca9-ae88695f667765d7} 0 0 req 8:8:2784 ; rep 6:8:608 ;
call 1 43 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 168 167 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 4294967295 0 {7a7ded4c9e65737b-ee41adbaa8b79f87} 1 0 req 7:1:136 ; rep 6:1:76 ;
call 107 105 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 285 281 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 355 353 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 48 46 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 348 347 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 111 113 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 108 110 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 198 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 186 185 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 125 123 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 396 397 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 95 114 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 343 371 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 309 281 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 202 201 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 0 3 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 254 256 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 220 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 167 168 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 213 188 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 334 335 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 421 423 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 254 250 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 381 382 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 126 145 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 1 49 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 71 64 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 279 278 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 322 323 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 409 411 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 374 375 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 47 46 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 58 60 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 295 294 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 331 332 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 105 95 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 58 1 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 258 257 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 192 194 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 105 106 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 157 158 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 197 195 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 405 430 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 7 8 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 383 381 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 154 156 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 442 444 {ec588a09417cfba8-a152bc25dabe661e} 0 0 req 7:1:156 ; rep 6:1:76 ;
call 3 19 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 216 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 427 428 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 126 145 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 347 348 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 92 64 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 374 402 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 340 312 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 212 210 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 10 12 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 198 188 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 285 286 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 0 219 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 1 0 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 297 298 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 384 386 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 73 71 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 281 306 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 1 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 21 19 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 4 3 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 137 136 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 76 74 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 10 3 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 223 224 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 99 95 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 22 24 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 22 3 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 271 269 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 95 102 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 65 64 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 313 312 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 176 157 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 337 338 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 424 426 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 120 121 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 68 69 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 174 173 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 281 288 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 220 222 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 113 111 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 206 204 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 4 6 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 46 47 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 17 16 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 12 10 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 1 55 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 58 59 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 159 158 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 40 42 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 127 129 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 416 415 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 34 1 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 117 118 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 65 66 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 110 108 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 3 4 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 55 56 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 281 309 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 247 219 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 26 25 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 126 151 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 223 225 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 136 137 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 188 189 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 52 54 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 289 288 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 98 96 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 346 344 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 406 405 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 117 119 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 117 95 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 209 207 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 7 9 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 157 170 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 55 57 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 95 111 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 312 325 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 127 128 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 198 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 13 3 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 102 95 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 310 309 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 350 343 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 8 7 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 343 353 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 31 33 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 254 255 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 306 307 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 1 55 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 280 278 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 281 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 405 430 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 255 254 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 154 155 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 194 192 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 173 157 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 95 108 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 343 356 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 223 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 96 98 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 123 124 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 374 399 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 224 223 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 96 95 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 37 39 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 3 25 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 61 62 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 312 337 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 162 161 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 34 36 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 247 248 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 282 284 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 32 31 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 328 329 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 415 417 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 165 164 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 99 101 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 64 65 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 104 102 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 312 337 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 199 198 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 138 136 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 316 312 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 386 384 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 108 109 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 195 197 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 343 368 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 193 192 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 92 93 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 132 130 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 111 95 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 406 407 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 249 247 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 188 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 77 79 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 157 167 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 16 17 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 392 390 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 43 44 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 207 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 3 10 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 14 13 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 218 216 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 16 3 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 16 18 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 49 50 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 297 298 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 237 235 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 0 1 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:2:392 ; rep 6:2:152 ;
call 95 123 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 235 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 149 148 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 108 110 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 397 396 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 64 89 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 95 105 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 46 1 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 256 254 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 19 20 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 126 127 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 161 163 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 74 75 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 119 117 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 19 21 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 294 295 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 286 285 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 49 51 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 136 138 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 425 424 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 250 254 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 312 328 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 259 257 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 22 23 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 136 138 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 49 50 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 25 3 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 25 26 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 77 78 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 114 95 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 351 350 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 114 116 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 362 364 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 52 53 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 23 22 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 145 146 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 232 234 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 250 269 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 177 176 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 64 77 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 116 114 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 265 263 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 28 29 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 404 402 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 3 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 251 250 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 30 28 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 28 30 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 251 252 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 303 304 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 260 250 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 347 348 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 102 104 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 39 37 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 421 405 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 31 3 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 198 200 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 111 112 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 57 55 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 188 204 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 118 117 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 120 95 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 241 242 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 328 330 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 250 263 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 65 66 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 86 64 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 178 176 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 126 139 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 35 34 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 68 64 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 68 70 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 443 448 {9ed1b13284c45e19-a8b305e494edae1a} 0 0 req 8:2:648 ; rep 6:2:200 ;
call 64 68 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 244 219 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 356 357 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 3 22 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 443 451 {9ed1b13284c45e19-a8b305e494edae1a} 0 0 req 8:2:648 ; rep 6:2:200 ;
call 64 71 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 254 255 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 167 157 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 74 64 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 75 74 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 134 133 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 1 46 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 74 75 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 260 261 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 40 1 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 64 74 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 247 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 185 157 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 78 77 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 79 77 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 139 140 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 226 228 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 163 161 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 142 126 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 64 77 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 312 325 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 77 78 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 164 166 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 101 99 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 80 64 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 375 376 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 28 29 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 80 81 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 328 329 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 82 80 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 43 45 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 64 80 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 242 241 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 312 328 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 66 65 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 84 83 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 64 92 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 83 84 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 146 145 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 85 83 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 3 31 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 52 1 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 365 366 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 64 83 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 312 340 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 278 250 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 25 27 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 95 99 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 157 173 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 87 86 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 272 250 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 89 64 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 241 242 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 189 190 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 34 35 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 86 87 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 257 258 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 319 312 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 3 10 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 95 96 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 130 132 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 43 44 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 88 86 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 192 188 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 25 26 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 164 165 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 401 399 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 86 88 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 126 142 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 37 38 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 19 3 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 89 90 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 190 189 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 64 92 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 337 338 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 152 151 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 198 200 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 91 89 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 93 92 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 182 157 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 303 304 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 390 392 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 0 95 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 276 275 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 4 5 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 278 279 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 313 315 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 155 154 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 43 1 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 94 92 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 268 266 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 31 32 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 250 266 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 180 179 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 95 120 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 205 204 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 312 319 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 144 142 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 41 40 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 6 4 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 281 294 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 96 97 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 44 43 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 9 7 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 317 316 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 80 82 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 28 30 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 442 436 {4f208dc8893e8ae2-0808d22e1a7777c8} 0 0 req 16:1:120104 ; rep 6:1:76 ;
call 45 43 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 0 188 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 106 105 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 50 49 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 15 13 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 105 106 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 56 55 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 126 142 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 304 303 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 374 390 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 0 157 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 42 40 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 250 275 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 103 102 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 105 107 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 353 355 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 250 278 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 216 188 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 109 108 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 53 52 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 18 16 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 89 91 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 326 325 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 37 39 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 108 109 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 111 112 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 359 360 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 13 14 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 72 71 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 322 324 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 95 111 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 344 343 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 55 57 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 97 96 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 54 52 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 115 114 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 1 52 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 59 58 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 24 22 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 114 115 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 51 49 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 3 28 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 62 61 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 27 25 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 405 421 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 335 334 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 46 48 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 60 58 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 121 120 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 167 169 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 126 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 127 126 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 67 65 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 375 374 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 86 88 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 128 127 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 112 111 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 7 3 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 129 127 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 377 375 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 148 150 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 343 359 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 273 272 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 220 221 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 272 273 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 37 38 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 274 272 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 250 272 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 36 34 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 424 405 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 275 250 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 223 224 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 275 276 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 40 41 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 277 275 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 5 4 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 312 340 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 257 259 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 170 171 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 136 126 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 0 250 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 10 11 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 282 281 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 282 283 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 1 34 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 284 282 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 145 147 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 58 59 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 382 381 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 287 285 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 58 60 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 139 126 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 376 375 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 157 161 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 281 285 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 343 359 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 290 288 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 368 369 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 95 123 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 291 281 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 378 379 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 292 291 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 291 292 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 281 291 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 312 316 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 294 281 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 282 284 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 247 248 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 334 336 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 281 294 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 402 404 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 297 281 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 61 63 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 298 297 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 405 412 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 281 297 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 301 300 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 300 301 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 13 14 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 302 300 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 281 300 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 341 340 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 52 54 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 1 52 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 303 281 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 250 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 281 303 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 306 281 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 307 306 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 71 72 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 19 20 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 308 306 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 250 251 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 285 287 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 198 199 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 257 258 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 344 346 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 309 310 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 257 259 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 309 311 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 343 371 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 288 290 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 201 202 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 0 281 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 313 314 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 61 63 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 315 313 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 318 316 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 55 1 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 89 91 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 170 157 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 407 406 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 188 192 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 312 316 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 374 390 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 321 319 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 92 94 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 399 400 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 126 154 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 34 36 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 323 322 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 61 1 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 322 323 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 324 322 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 312 322 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 343 347 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 325 312 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 313 315 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 278 279 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 365 367 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 325 326 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 327 325 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 433 435 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 328 312 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 330 328 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 43 45 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 332 331 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 333 331 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 312 331 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 372 371 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 83 85 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 334 312 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 282 283 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 334 335 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 99 100 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 336 334 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 312 334 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 337 312 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 102 103 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 339 337 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 285 287 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 250 251 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 337 339 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 281 282 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 316 318 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 229 230 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 288 289 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 375 377 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 340 341 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 342 340 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 288 290 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 340 342 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 374 402 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 319 321 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 232 233 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 0 312 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 344 345 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 349 347 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 120 122 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 260 261 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 312 313 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 347 349 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 201 188 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 219 223 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 343 347 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 405 421 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 352 350 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 123 125 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 430 431 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 157 185 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 263 264 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 350 352 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 353 343 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 65 67 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 354 353 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 353 354 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 374 378 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 356 343 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 344 346 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 309 310 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 396 398 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 127 129 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 40 41 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 3 22 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 356 357 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 358 356 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 269 270 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 356 358 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 157 161 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 0 1 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 359 343 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 3 7 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 158 157 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 0 188 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 361 359 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 74 76 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 363 362 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 362 363 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 0 64 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 364 362 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 343 362 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 403 402 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 114 116 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 365 343 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 313 314 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 365 366 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 130 131 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 367 365 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 343 365 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 368 343 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 133 134 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 370 368 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 316 318 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 281 282 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 368 370 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 319 320 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 406 408 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 371 372 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 373 371 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 378 374 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 291 292 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 343 344 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 378 380 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 311 309 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 22 23 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 374 378 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 294 295 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 381 383 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 0 95 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 384 374 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 96 98 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 385 384 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 384 385 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 374 384 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 405 409 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 387 374 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 375 377 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 340 341 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 427 429 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 158 160 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 71 72 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 387 388 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 0 126 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 389 387 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 300 301 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 387 389 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 192 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 31 32 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 390 374 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 105 107 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 394 393 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 0 312 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 393 394 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 374 393 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 434 433 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 145 147 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 396 374 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 344 345 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 396 397 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 161 162 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 398 396 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 374 396 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 64 74 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 399 374 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 64 80 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 347 349 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 312 313 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 399 401 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 350 351 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 402 403 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 411 409 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 182 184 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 405 409 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 414 412 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 185 187 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 325 326 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 412 414 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 415 405 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 415 416 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 405 415 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 418 405 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 189 191 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 102 103 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 418 419 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 420 418 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 331 332 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 418 420 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 423 421 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 424 425 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 405 424 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 176 178 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 427 405 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 375 376 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 427 428 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 192 193 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 429 427 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 405 427 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 95 105 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 430 405 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 7 9 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 195 196 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 432 430 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 378 380 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 343 344 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 430 432 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 381 382 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 433 434 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 63 61 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 405 433 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 0 405 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 293 291 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 4 5 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 126 130 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 4 6 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 296 294 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 7 8 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 1 34 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 157 2 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 299 297 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 10 11 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 65 67 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 13 15 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 3 13 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 305 303 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 68 69 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 16 17 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 16 18 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 90 89 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 3 16 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 71 73 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 19 21 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 74 76 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 22 24 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 95 99 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 314 313 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 77 64 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 25 27 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 3 25 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 320 319 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 83 85 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 31 33 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 3 31 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 0 3 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 1 37 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 92 94 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 329 328 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 40 42 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 1 43 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 338 337 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 49 51 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 1 49 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 139 141 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 52 53 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 379 378 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 142 144 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 55 56 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 1 58 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 201 203 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 148 150 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 61 62 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 303 305 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 1 61 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 120 122 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 357 356 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 68 70 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 123 125 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 360 359 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 71 73 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 64 71 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 366 365 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 77 79 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 167 169 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 80 81 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 369 368 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 80 82 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 170 172 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 83 84 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 173 175 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 410 409 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 86 87 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 64 86 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 238 240 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 176 178 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 413 412 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 89 90 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 64 89 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 179 181 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 92 93 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 0 64 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 10:1:1128 ; rep 6:1:76 ;
call 388 387 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 151 153 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 64 65 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 99 101 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 154 156 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 391 390 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 102 104 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 95 102 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 147 145 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 95 108 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 400 399 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 111 113 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 201 203 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 114 115 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 204 206 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 117 118 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 95 117 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 207 209 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 120 121 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 95 120 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 210 212 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 123 124 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 213 215 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 161 163 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 126 127 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 419 418 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 182 184 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 95 96 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 130 132 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 220 222 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 133 134 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 185 187 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 422 421 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 133 135 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 126 133 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 428 427 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 139 141 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 229 231 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 142 143 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 431 430 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 142 144 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 235 237 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 148 149 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 126 148 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 238 240 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 151 152 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 241 243 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 154 155 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 251 253 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 164 165 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 216 218 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 164 166 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 157 164 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 170 172 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 260 262 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 173 174 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 173 175 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 263 265 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 176 177 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 266 268 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 179 180 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 157 179 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 269 271 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 182 183 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 157 182 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 272 274 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 185 186 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 244 246 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 157 158 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 192 194 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 195 196 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 247 249 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 195 197 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 188 195 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 3 4 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 201 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 291 293 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 204 205 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 204 206 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 294 296 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 207 208 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 207 209 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 297 299 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 210 211 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 3 13 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 210 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 300 302 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 213 214 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 28 3 {3bf95887d16a6fff-d182a1a2d54e9a4c} 0 1 req 0:1:0 ; rep 0:1:0 ;
call 213 215 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 3 16 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 213 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 303 305 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 1 61 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 216 217 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 216 218 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 254 256 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 306 308 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 220 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 275 277 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 188 189 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 223 225 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 226 227 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 278 280 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 226 228 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 219 226 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 232 234 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 34 35 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 219 232 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 9:1:512 ; rep 6:1:76 ;
call 235 236 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 235 237 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
call 325 327 {a1214670e13e89bc-8627aa70890683fd} 0 0 req 7:1:196 ; rep 6:1:76 ;
call 238 239 {a1214670e13e89bc-8627aa70890683fd} 1 0 req 8:1:304 ; rep 6:1:76 ;
