file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_prediction.dir/bench_table5_prediction.cc.o"
  "CMakeFiles/bench_table5_prediction.dir/bench_table5_prediction.cc.o.d"
  "bench_table5_prediction"
  "bench_table5_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
