# Empty compiler generated dependencies file for bench_table5_prediction.
# This may be replaced when dependencies are built.
