# Empty compiler generated dependencies file for bench_micro_marshal.
# This may be replaced when dependencies are built.
