file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_marshal.dir/bench_micro_marshal.cc.o"
  "CMakeFiles/bench_micro_marshal.dir/bench_micro_marshal.cc.o.d"
  "bench_micro_marshal"
  "bench_micro_marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
