file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_mincut.dir/bench_micro_mincut.cc.o"
  "CMakeFiles/bench_micro_mincut.dir/bench_micro_mincut.cc.o.d"
  "bench_micro_mincut"
  "bench_micro_mincut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
