# Empty dependencies file for bench_micro_mincut.
# This may be replaced when dependencies are built.
