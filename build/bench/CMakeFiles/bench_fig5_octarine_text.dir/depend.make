# Empty dependencies file for bench_fig5_octarine_text.
# This may be replaced when dependencies are built.
