file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_octarine_text.dir/bench_fig5_octarine_text.cc.o"
  "CMakeFiles/bench_fig5_octarine_text.dir/bench_fig5_octarine_text.cc.o.d"
  "bench_fig5_octarine_text"
  "bench_fig5_octarine_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_octarine_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
