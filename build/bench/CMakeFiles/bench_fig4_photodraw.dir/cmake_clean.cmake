file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_photodraw.dir/bench_fig4_photodraw.cc.o"
  "CMakeFiles/bench_fig4_photodraw.dir/bench_fig4_photodraw.cc.o.d"
  "bench_fig4_photodraw"
  "bench_fig4_photodraw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_photodraw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
