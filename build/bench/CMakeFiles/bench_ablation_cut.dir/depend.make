# Empty dependencies file for bench_ablation_cut.
# This may be replaced when dependencies are built.
