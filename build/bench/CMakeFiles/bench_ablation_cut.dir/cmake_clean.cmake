file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cut.dir/bench_ablation_cut.cc.o"
  "CMakeFiles/bench_ablation_cut.dir/bench_ablation_cut.cc.o.d"
  "bench_ablation_cut"
  "bench_ablation_cut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
