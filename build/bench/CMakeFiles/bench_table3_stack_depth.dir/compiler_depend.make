# Empty compiler generated dependencies file for bench_table3_stack_depth.
# This may be replaced when dependencies are built.
