file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_stack_depth.dir/bench_table3_stack_depth.cc.o"
  "CMakeFiles/bench_table3_stack_depth.dir/bench_table3_stack_depth.cc.o.d"
  "bench_table3_stack_depth"
  "bench_table3_stack_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_stack_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
