file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_networks.dir/bench_ablation_networks.cc.o"
  "CMakeFiles/bench_ablation_networks.dir/bench_ablation_networks.cc.o.d"
  "bench_ablation_networks"
  "bench_ablation_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
