# Empty compiler generated dependencies file for bench_ablation_networks.
# This may be replaced when dependencies are built.
