# Empty dependencies file for bench_ext_multiway.
# This may be replaced when dependencies are built.
