file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiway.dir/bench_ext_multiway.cc.o"
  "CMakeFiles/bench_ext_multiway.dir/bench_ext_multiway.cc.o.d"
  "bench_ext_multiway"
  "bench_ext_multiway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
