file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_summarization.dir/bench_ablation_summarization.cc.o"
  "CMakeFiles/bench_ablation_summarization.dir/bench_ablation_summarization.cc.o.d"
  "bench_ablation_summarization"
  "bench_ablation_summarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_summarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
