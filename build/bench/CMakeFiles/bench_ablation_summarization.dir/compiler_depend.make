# Empty compiler generated dependencies file for bench_ablation_summarization.
# This may be replaced when dependencies are built.
