
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_summarization.cc" "bench/CMakeFiles/bench_ablation_summarization.dir/bench_ablation_summarization.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_summarization.dir/bench_ablation_summarization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/coign_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/coign_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/coign_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coign_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/coign_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/coign_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mincut/CMakeFiles/coign_mincut.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/coign_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/coign_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coign_net.dir/DependInfo.cmake"
  "/root/repo/build/src/marshal/CMakeFiles/coign_marshal.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/coign_com.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
