file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_comm_time.dir/bench_table4_comm_time.cc.o"
  "CMakeFiles/bench_table4_comm_time.dir/bench_table4_comm_time.cc.o.d"
  "bench_table4_comm_time"
  "bench_table4_comm_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_comm_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
