# Empty dependencies file for bench_table4_comm_time.
# This may be replaced when dependencies are built.
