file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_drift.dir/bench_ext_drift.cc.o"
  "CMakeFiles/bench_ext_drift.dir/bench_ext_drift.cc.o.d"
  "bench_ext_drift"
  "bench_ext_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
