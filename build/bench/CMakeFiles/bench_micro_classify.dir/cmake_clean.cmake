file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_classify.dir/bench_micro_classify.cc.o"
  "CMakeFiles/bench_micro_classify.dir/bench_micro_classify.cc.o.d"
  "bench_micro_classify"
  "bench_micro_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
