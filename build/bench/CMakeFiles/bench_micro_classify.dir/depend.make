# Empty dependencies file for bench_micro_classify.
# This may be replaced when dependencies are built.
