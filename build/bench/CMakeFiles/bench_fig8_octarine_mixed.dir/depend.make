# Empty dependencies file for bench_fig8_octarine_mixed.
# This may be replaced when dependencies are built.
