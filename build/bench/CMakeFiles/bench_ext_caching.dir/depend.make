# Empty dependencies file for bench_ext_caching.
# This may be replaced when dependencies are built.
