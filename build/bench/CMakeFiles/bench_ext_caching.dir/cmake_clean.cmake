file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_caching.dir/bench_ext_caching.cc.o"
  "CMakeFiles/bench_ext_caching.dir/bench_ext_caching.cc.o.d"
  "bench_ext_caching"
  "bench_ext_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
