# Empty compiler generated dependencies file for bench_fig7_octarine_table.
# This may be replaced when dependencies are built.
