file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_octarine_table.dir/bench_fig7_octarine_table.cc.o"
  "CMakeFiles/bench_fig7_octarine_table.dir/bench_fig7_octarine_table.cc.o.d"
  "bench_fig7_octarine_table"
  "bench_fig7_octarine_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_octarine_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
