file(REMOVE_RECURSE
  "libcoign_bench_harness.a"
)
