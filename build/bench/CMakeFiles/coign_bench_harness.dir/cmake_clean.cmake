file(REMOVE_RECURSE
  "CMakeFiles/coign_bench_harness.dir/figure_common.cc.o"
  "CMakeFiles/coign_bench_harness.dir/figure_common.cc.o.d"
  "CMakeFiles/coign_bench_harness.dir/harness.cc.o"
  "CMakeFiles/coign_bench_harness.dir/harness.cc.o.d"
  "libcoign_bench_harness.a"
  "libcoign_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
