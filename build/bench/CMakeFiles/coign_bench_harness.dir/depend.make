# Empty dependencies file for coign_bench_harness.
# This may be replaced when dependencies are built.
