# Empty dependencies file for bench_fig6_benefits.
# This may be replaced when dependencies are built.
