file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_benefits.dir/bench_fig6_benefits.cc.o"
  "CMakeFiles/bench_fig6_benefits.dir/bench_fig6_benefits.cc.o.d"
  "bench_fig6_benefits"
  "bench_fig6_benefits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_benefits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
