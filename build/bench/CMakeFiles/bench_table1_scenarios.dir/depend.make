# Empty dependencies file for bench_table1_scenarios.
# This may be replaced when dependencies are built.
