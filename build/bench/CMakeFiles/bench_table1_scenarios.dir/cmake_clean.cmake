file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_scenarios.dir/bench_table1_scenarios.cc.o"
  "CMakeFiles/bench_table1_scenarios.dir/bench_table1_scenarios.cc.o.d"
  "bench_table1_scenarios"
  "bench_table1_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
