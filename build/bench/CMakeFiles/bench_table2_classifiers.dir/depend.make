# Empty dependencies file for bench_table2_classifiers.
# This may be replaced when dependencies are built.
