# Empty compiler generated dependencies file for adaptive_network.
# This may be replaced when dependencies are built.
