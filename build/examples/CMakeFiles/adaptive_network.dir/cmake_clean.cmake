file(REMOVE_RECURSE
  "CMakeFiles/adaptive_network.dir/adaptive_network.cpp.o"
  "CMakeFiles/adaptive_network.dir/adaptive_network.cpp.o.d"
  "adaptive_network"
  "adaptive_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
