file(REMOVE_RECURSE
  "CMakeFiles/profile_workflow.dir/profile_workflow.cpp.o"
  "CMakeFiles/profile_workflow.dir/profile_workflow.cpp.o.d"
  "profile_workflow"
  "profile_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
