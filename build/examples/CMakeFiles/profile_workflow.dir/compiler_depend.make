# Empty compiler generated dependencies file for profile_workflow.
# This may be replaced when dependencies are built.
