file(REMOVE_RECURSE
  "CMakeFiles/coign.dir/coign_cli.cc.o"
  "CMakeFiles/coign.dir/coign_cli.cc.o.d"
  "coign"
  "coign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
