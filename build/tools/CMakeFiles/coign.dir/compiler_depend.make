# Empty compiler generated dependencies file for coign.
# This may be replaced when dependencies are built.
