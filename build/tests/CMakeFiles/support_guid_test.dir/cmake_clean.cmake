file(REMOVE_RECURSE
  "CMakeFiles/support_guid_test.dir/support_guid_test.cc.o"
  "CMakeFiles/support_guid_test.dir/support_guid_test.cc.o.d"
  "support_guid_test"
  "support_guid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_guid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
