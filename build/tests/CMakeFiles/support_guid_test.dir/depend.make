# Empty dependencies file for support_guid_test.
# This may be replaced when dependencies are built.
