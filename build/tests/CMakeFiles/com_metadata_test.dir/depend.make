# Empty dependencies file for com_metadata_test.
# This may be replaced when dependencies are built.
