file(REMOVE_RECURSE
  "CMakeFiles/com_metadata_test.dir/com_metadata_test.cc.o"
  "CMakeFiles/com_metadata_test.dir/com_metadata_test.cc.o.d"
  "com_metadata_test"
  "com_metadata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/com_metadata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
