# Empty dependencies file for cache_hotspots_test.
# This may be replaced when dependencies are built.
