file(REMOVE_RECURSE
  "CMakeFiles/cache_hotspots_test.dir/cache_hotspots_test.cc.o"
  "CMakeFiles/cache_hotspots_test.dir/cache_hotspots_test.cc.o.d"
  "cache_hotspots_test"
  "cache_hotspots_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_hotspots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
