file(REMOVE_RECURSE
  "CMakeFiles/support_str_util_test.dir/support_str_util_test.cc.o"
  "CMakeFiles/support_str_util_test.dir/support_str_util_test.cc.o.d"
  "support_str_util_test"
  "support_str_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_str_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
