# Empty dependencies file for support_str_util_test.
# This may be replaced when dependencies are built.
