# Empty dependencies file for runtime_rewriter_test.
# This may be replaced when dependencies are built.
