file(REMOVE_RECURSE
  "CMakeFiles/runtime_rewriter_test.dir/runtime_rewriter_test.cc.o"
  "CMakeFiles/runtime_rewriter_test.dir/runtime_rewriter_test.cc.o.d"
  "runtime_rewriter_test"
  "runtime_rewriter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
