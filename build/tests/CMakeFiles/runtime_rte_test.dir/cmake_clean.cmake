file(REMOVE_RECURSE
  "CMakeFiles/runtime_rte_test.dir/runtime_rte_test.cc.o"
  "CMakeFiles/runtime_rte_test.dir/runtime_rte_test.cc.o.d"
  "runtime_rte_test"
  "runtime_rte_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_rte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
