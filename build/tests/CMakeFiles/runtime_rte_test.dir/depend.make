# Empty dependencies file for runtime_rte_test.
# This may be replaced when dependencies are built.
