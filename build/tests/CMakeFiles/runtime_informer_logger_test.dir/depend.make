# Empty dependencies file for runtime_informer_logger_test.
# This may be replaced when dependencies are built.
