file(REMOVE_RECURSE
  "CMakeFiles/runtime_informer_logger_test.dir/runtime_informer_logger_test.cc.o"
  "CMakeFiles/runtime_informer_logger_test.dir/runtime_informer_logger_test.cc.o.d"
  "runtime_informer_logger_test"
  "runtime_informer_logger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_informer_logger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
