# Empty dependencies file for com_message_test.
# This may be replaced when dependencies are built.
