file(REMOVE_RECURSE
  "CMakeFiles/com_message_test.dir/com_message_test.cc.o"
  "CMakeFiles/com_message_test.dir/com_message_test.cc.o.d"
  "com_message_test"
  "com_message_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/com_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
