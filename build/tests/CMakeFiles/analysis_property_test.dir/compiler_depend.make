# Empty compiler generated dependencies file for analysis_property_test.
# This may be replaced when dependencies are built.
