file(REMOVE_RECURSE
  "CMakeFiles/analysis_property_test.dir/analysis_property_test.cc.o"
  "CMakeFiles/analysis_property_test.dir/analysis_property_test.cc.o.d"
  "analysis_property_test"
  "analysis_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
