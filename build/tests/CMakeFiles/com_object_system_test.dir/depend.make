# Empty dependencies file for com_object_system_test.
# This may be replaced when dependencies are built.
