file(REMOVE_RECURSE
  "CMakeFiles/com_object_system_test.dir/com_object_system_test.cc.o"
  "CMakeFiles/com_object_system_test.dir/com_object_system_test.cc.o.d"
  "com_object_system_test"
  "com_object_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/com_object_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
