file(REMOVE_RECURSE
  "CMakeFiles/apps_behavior_test.dir/apps_behavior_test.cc.o"
  "CMakeFiles/apps_behavior_test.dir/apps_behavior_test.cc.o.d"
  "apps_behavior_test"
  "apps_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
