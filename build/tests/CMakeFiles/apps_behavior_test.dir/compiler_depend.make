# Empty compiler generated dependencies file for apps_behavior_test.
# This may be replaced when dependencies are built.
