file(REMOVE_RECURSE
  "CMakeFiles/support_histogram_test.dir/support_histogram_test.cc.o"
  "CMakeFiles/support_histogram_test.dir/support_histogram_test.cc.o.d"
  "support_histogram_test"
  "support_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
