# Empty dependencies file for support_histogram_test.
# This may be replaced when dependencies are built.
