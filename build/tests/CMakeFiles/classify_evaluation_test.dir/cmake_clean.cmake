file(REMOVE_RECURSE
  "CMakeFiles/classify_evaluation_test.dir/classify_evaluation_test.cc.o"
  "CMakeFiles/classify_evaluation_test.dir/classify_evaluation_test.cc.o.d"
  "classify_evaluation_test"
  "classify_evaluation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_evaluation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
