# Empty dependencies file for classify_evaluation_test.
# This may be replaced when dependencies are built.
