# Empty compiler generated dependencies file for mincut_multiway_test.
# This may be replaced when dependencies are built.
