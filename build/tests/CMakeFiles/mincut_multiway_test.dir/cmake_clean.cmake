file(REMOVE_RECURSE
  "CMakeFiles/mincut_multiway_test.dir/mincut_multiway_test.cc.o"
  "CMakeFiles/mincut_multiway_test.dir/mincut_multiway_test.cc.o.d"
  "mincut_multiway_test"
  "mincut_multiway_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mincut_multiway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
