file(REMOVE_RECURSE
  "CMakeFiles/classify_classifiers_test.dir/classify_classifiers_test.cc.o"
  "CMakeFiles/classify_classifiers_test.dir/classify_classifiers_test.cc.o.d"
  "classify_classifiers_test"
  "classify_classifiers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_classifiers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
