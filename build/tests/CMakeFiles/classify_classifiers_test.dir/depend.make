# Empty dependencies file for classify_classifiers_test.
# This may be replaced when dependencies are built.
