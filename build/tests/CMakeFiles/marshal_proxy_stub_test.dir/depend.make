# Empty dependencies file for marshal_proxy_stub_test.
# This may be replaced when dependencies are built.
