# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for marshal_proxy_stub_test.
