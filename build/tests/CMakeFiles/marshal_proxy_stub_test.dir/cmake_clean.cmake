file(REMOVE_RECURSE
  "CMakeFiles/marshal_proxy_stub_test.dir/marshal_proxy_stub_test.cc.o"
  "CMakeFiles/marshal_proxy_stub_test.dir/marshal_proxy_stub_test.cc.o.d"
  "marshal_proxy_stub_test"
  "marshal_proxy_stub_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marshal_proxy_stub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
