# Empty compiler generated dependencies file for apps_component_library_test.
# This may be replaced when dependencies are built.
