file(REMOVE_RECURSE
  "CMakeFiles/apps_component_library_test.dir/apps_component_library_test.cc.o"
  "CMakeFiles/apps_component_library_test.dir/apps_component_library_test.cc.o.d"
  "apps_component_library_test"
  "apps_component_library_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_component_library_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
