file(REMOVE_RECURSE
  "CMakeFiles/table_shapes_test.dir/table_shapes_test.cc.o"
  "CMakeFiles/table_shapes_test.dir/table_shapes_test.cc.o.d"
  "table_shapes_test"
  "table_shapes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
