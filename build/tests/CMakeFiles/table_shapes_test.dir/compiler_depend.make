# Empty compiler generated dependencies file for table_shapes_test.
# This may be replaced when dependencies are built.
