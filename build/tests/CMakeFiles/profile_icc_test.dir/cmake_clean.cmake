file(REMOVE_RECURSE
  "CMakeFiles/profile_icc_test.dir/profile_icc_test.cc.o"
  "CMakeFiles/profile_icc_test.dir/profile_icc_test.cc.o.d"
  "profile_icc_test"
  "profile_icc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_icc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
