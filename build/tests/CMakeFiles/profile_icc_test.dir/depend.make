# Empty dependencies file for profile_icc_test.
# This may be replaced when dependencies are built.
