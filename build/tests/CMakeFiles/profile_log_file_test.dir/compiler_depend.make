# Empty compiler generated dependencies file for profile_log_file_test.
# This may be replaced when dependencies are built.
