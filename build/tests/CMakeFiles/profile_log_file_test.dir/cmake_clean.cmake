file(REMOVE_RECURSE
  "CMakeFiles/profile_log_file_test.dir/profile_log_file_test.cc.o"
  "CMakeFiles/profile_log_file_test.dir/profile_log_file_test.cc.o.d"
  "profile_log_file_test"
  "profile_log_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_log_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
