file(REMOVE_RECURSE
  "CMakeFiles/marshal_ndr_test.dir/marshal_ndr_test.cc.o"
  "CMakeFiles/marshal_ndr_test.dir/marshal_ndr_test.cc.o.d"
  "marshal_ndr_test"
  "marshal_ndr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marshal_ndr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
