# Empty dependencies file for marshal_ndr_test.
# This may be replaced when dependencies are built.
