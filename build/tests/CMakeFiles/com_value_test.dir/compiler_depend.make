# Empty compiler generated dependencies file for com_value_test.
# This may be replaced when dependencies are built.
