file(REMOVE_RECURSE
  "CMakeFiles/com_value_test.dir/com_value_test.cc.o"
  "CMakeFiles/com_value_test.dir/com_value_test.cc.o.d"
  "com_value_test"
  "com_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/com_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
