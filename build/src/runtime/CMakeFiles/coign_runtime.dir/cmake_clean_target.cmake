file(REMOVE_RECURSE
  "libcoign_runtime.a"
)
