# Empty compiler generated dependencies file for coign_runtime.
# This may be replaced when dependencies are built.
