file(REMOVE_RECURSE
  "CMakeFiles/coign_runtime.dir/binary_rewriter.cc.o"
  "CMakeFiles/coign_runtime.dir/binary_rewriter.cc.o.d"
  "CMakeFiles/coign_runtime.dir/cache.cc.o"
  "CMakeFiles/coign_runtime.dir/cache.cc.o.d"
  "CMakeFiles/coign_runtime.dir/config_record.cc.o"
  "CMakeFiles/coign_runtime.dir/config_record.cc.o.d"
  "CMakeFiles/coign_runtime.dir/drift.cc.o"
  "CMakeFiles/coign_runtime.dir/drift.cc.o.d"
  "CMakeFiles/coign_runtime.dir/factory.cc.o"
  "CMakeFiles/coign_runtime.dir/factory.cc.o.d"
  "CMakeFiles/coign_runtime.dir/informer.cc.o"
  "CMakeFiles/coign_runtime.dir/informer.cc.o.d"
  "CMakeFiles/coign_runtime.dir/logger.cc.o"
  "CMakeFiles/coign_runtime.dir/logger.cc.o.d"
  "CMakeFiles/coign_runtime.dir/rte.cc.o"
  "CMakeFiles/coign_runtime.dir/rte.cc.o.d"
  "CMakeFiles/coign_runtime.dir/static_analysis.cc.o"
  "CMakeFiles/coign_runtime.dir/static_analysis.cc.o.d"
  "libcoign_runtime.a"
  "libcoign_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
