
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/binary_rewriter.cc" "src/runtime/CMakeFiles/coign_runtime.dir/binary_rewriter.cc.o" "gcc" "src/runtime/CMakeFiles/coign_runtime.dir/binary_rewriter.cc.o.d"
  "/root/repo/src/runtime/cache.cc" "src/runtime/CMakeFiles/coign_runtime.dir/cache.cc.o" "gcc" "src/runtime/CMakeFiles/coign_runtime.dir/cache.cc.o.d"
  "/root/repo/src/runtime/config_record.cc" "src/runtime/CMakeFiles/coign_runtime.dir/config_record.cc.o" "gcc" "src/runtime/CMakeFiles/coign_runtime.dir/config_record.cc.o.d"
  "/root/repo/src/runtime/drift.cc" "src/runtime/CMakeFiles/coign_runtime.dir/drift.cc.o" "gcc" "src/runtime/CMakeFiles/coign_runtime.dir/drift.cc.o.d"
  "/root/repo/src/runtime/factory.cc" "src/runtime/CMakeFiles/coign_runtime.dir/factory.cc.o" "gcc" "src/runtime/CMakeFiles/coign_runtime.dir/factory.cc.o.d"
  "/root/repo/src/runtime/informer.cc" "src/runtime/CMakeFiles/coign_runtime.dir/informer.cc.o" "gcc" "src/runtime/CMakeFiles/coign_runtime.dir/informer.cc.o.d"
  "/root/repo/src/runtime/logger.cc" "src/runtime/CMakeFiles/coign_runtime.dir/logger.cc.o" "gcc" "src/runtime/CMakeFiles/coign_runtime.dir/logger.cc.o.d"
  "/root/repo/src/runtime/rte.cc" "src/runtime/CMakeFiles/coign_runtime.dir/rte.cc.o" "gcc" "src/runtime/CMakeFiles/coign_runtime.dir/rte.cc.o.d"
  "/root/repo/src/runtime/static_analysis.cc" "src/runtime/CMakeFiles/coign_runtime.dir/static_analysis.cc.o" "gcc" "src/runtime/CMakeFiles/coign_runtime.dir/static_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/coign_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/coign_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/coign_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/marshal/CMakeFiles/coign_marshal.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/coign_com.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coign_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mincut/CMakeFiles/coign_mincut.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
