# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("com")
subdirs("marshal")
subdirs("net")
subdirs("classify")
subdirs("profile")
subdirs("runtime")
subdirs("graph")
subdirs("mincut")
subdirs("analysis")
subdirs("sim")
subdirs("apps")
