file(REMOVE_RECURSE
  "libcoign_classify.a"
)
