file(REMOVE_RECURSE
  "CMakeFiles/coign_classify.dir/classifier.cc.o"
  "CMakeFiles/coign_classify.dir/classifier.cc.o.d"
  "CMakeFiles/coign_classify.dir/classifiers.cc.o"
  "CMakeFiles/coign_classify.dir/classifiers.cc.o.d"
  "CMakeFiles/coign_classify.dir/comm_vector.cc.o"
  "CMakeFiles/coign_classify.dir/comm_vector.cc.o.d"
  "CMakeFiles/coign_classify.dir/descriptor.cc.o"
  "CMakeFiles/coign_classify.dir/descriptor.cc.o.d"
  "CMakeFiles/coign_classify.dir/evaluation.cc.o"
  "CMakeFiles/coign_classify.dir/evaluation.cc.o.d"
  "libcoign_classify.a"
  "libcoign_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
