
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/classifier.cc" "src/classify/CMakeFiles/coign_classify.dir/classifier.cc.o" "gcc" "src/classify/CMakeFiles/coign_classify.dir/classifier.cc.o.d"
  "/root/repo/src/classify/classifiers.cc" "src/classify/CMakeFiles/coign_classify.dir/classifiers.cc.o" "gcc" "src/classify/CMakeFiles/coign_classify.dir/classifiers.cc.o.d"
  "/root/repo/src/classify/comm_vector.cc" "src/classify/CMakeFiles/coign_classify.dir/comm_vector.cc.o" "gcc" "src/classify/CMakeFiles/coign_classify.dir/comm_vector.cc.o.d"
  "/root/repo/src/classify/descriptor.cc" "src/classify/CMakeFiles/coign_classify.dir/descriptor.cc.o" "gcc" "src/classify/CMakeFiles/coign_classify.dir/descriptor.cc.o.d"
  "/root/repo/src/classify/evaluation.cc" "src/classify/CMakeFiles/coign_classify.dir/evaluation.cc.o" "gcc" "src/classify/CMakeFiles/coign_classify.dir/evaluation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/com/CMakeFiles/coign_com.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
