# Empty dependencies file for coign_classify.
# This may be replaced when dependencies are built.
