
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/com/callstack.cc" "src/com/CMakeFiles/coign_com.dir/callstack.cc.o" "gcc" "src/com/CMakeFiles/coign_com.dir/callstack.cc.o.d"
  "/root/repo/src/com/class_registry.cc" "src/com/CMakeFiles/coign_com.dir/class_registry.cc.o" "gcc" "src/com/CMakeFiles/coign_com.dir/class_registry.cc.o.d"
  "/root/repo/src/com/message.cc" "src/com/CMakeFiles/coign_com.dir/message.cc.o" "gcc" "src/com/CMakeFiles/coign_com.dir/message.cc.o.d"
  "/root/repo/src/com/metadata.cc" "src/com/CMakeFiles/coign_com.dir/metadata.cc.o" "gcc" "src/com/CMakeFiles/coign_com.dir/metadata.cc.o.d"
  "/root/repo/src/com/object.cc" "src/com/CMakeFiles/coign_com.dir/object.cc.o" "gcc" "src/com/CMakeFiles/coign_com.dir/object.cc.o.d"
  "/root/repo/src/com/object_system.cc" "src/com/CMakeFiles/coign_com.dir/object_system.cc.o" "gcc" "src/com/CMakeFiles/coign_com.dir/object_system.cc.o.d"
  "/root/repo/src/com/value.cc" "src/com/CMakeFiles/coign_com.dir/value.cc.o" "gcc" "src/com/CMakeFiles/coign_com.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
