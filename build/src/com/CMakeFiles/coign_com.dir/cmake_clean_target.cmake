file(REMOVE_RECURSE
  "libcoign_com.a"
)
