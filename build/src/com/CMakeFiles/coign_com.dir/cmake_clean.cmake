file(REMOVE_RECURSE
  "CMakeFiles/coign_com.dir/callstack.cc.o"
  "CMakeFiles/coign_com.dir/callstack.cc.o.d"
  "CMakeFiles/coign_com.dir/class_registry.cc.o"
  "CMakeFiles/coign_com.dir/class_registry.cc.o.d"
  "CMakeFiles/coign_com.dir/message.cc.o"
  "CMakeFiles/coign_com.dir/message.cc.o.d"
  "CMakeFiles/coign_com.dir/metadata.cc.o"
  "CMakeFiles/coign_com.dir/metadata.cc.o.d"
  "CMakeFiles/coign_com.dir/object.cc.o"
  "CMakeFiles/coign_com.dir/object.cc.o.d"
  "CMakeFiles/coign_com.dir/object_system.cc.o"
  "CMakeFiles/coign_com.dir/object_system.cc.o.d"
  "CMakeFiles/coign_com.dir/value.cc.o"
  "CMakeFiles/coign_com.dir/value.cc.o.d"
  "libcoign_com.a"
  "libcoign_com.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_com.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
