# Empty compiler generated dependencies file for coign_com.
# This may be replaced when dependencies are built.
