# Empty dependencies file for coign_marshal.
# This may be replaced when dependencies are built.
