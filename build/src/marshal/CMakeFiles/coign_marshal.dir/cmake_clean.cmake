file(REMOVE_RECURSE
  "CMakeFiles/coign_marshal.dir/ndr.cc.o"
  "CMakeFiles/coign_marshal.dir/ndr.cc.o.d"
  "CMakeFiles/coign_marshal.dir/proxy_stub.cc.o"
  "CMakeFiles/coign_marshal.dir/proxy_stub.cc.o.d"
  "libcoign_marshal.a"
  "libcoign_marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
