file(REMOVE_RECURSE
  "libcoign_marshal.a"
)
