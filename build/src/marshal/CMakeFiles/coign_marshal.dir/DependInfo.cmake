
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/marshal/ndr.cc" "src/marshal/CMakeFiles/coign_marshal.dir/ndr.cc.o" "gcc" "src/marshal/CMakeFiles/coign_marshal.dir/ndr.cc.o.d"
  "/root/repo/src/marshal/proxy_stub.cc" "src/marshal/CMakeFiles/coign_marshal.dir/proxy_stub.cc.o" "gcc" "src/marshal/CMakeFiles/coign_marshal.dir/proxy_stub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/com/CMakeFiles/coign_com.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
