file(REMOVE_RECURSE
  "CMakeFiles/coign_net.dir/network_model.cc.o"
  "CMakeFiles/coign_net.dir/network_model.cc.o.d"
  "CMakeFiles/coign_net.dir/network_profiler.cc.o"
  "CMakeFiles/coign_net.dir/network_profiler.cc.o.d"
  "CMakeFiles/coign_net.dir/transport.cc.o"
  "CMakeFiles/coign_net.dir/transport.cc.o.d"
  "libcoign_net.a"
  "libcoign_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
