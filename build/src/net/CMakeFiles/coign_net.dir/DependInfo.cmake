
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/network_model.cc" "src/net/CMakeFiles/coign_net.dir/network_model.cc.o" "gcc" "src/net/CMakeFiles/coign_net.dir/network_model.cc.o.d"
  "/root/repo/src/net/network_profiler.cc" "src/net/CMakeFiles/coign_net.dir/network_profiler.cc.o" "gcc" "src/net/CMakeFiles/coign_net.dir/network_profiler.cc.o.d"
  "/root/repo/src/net/transport.cc" "src/net/CMakeFiles/coign_net.dir/transport.cc.o" "gcc" "src/net/CMakeFiles/coign_net.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
