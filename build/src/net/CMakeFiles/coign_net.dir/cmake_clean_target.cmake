file(REMOVE_RECURSE
  "libcoign_net.a"
)
