# Empty dependencies file for coign_net.
# This may be replaced when dependencies are built.
