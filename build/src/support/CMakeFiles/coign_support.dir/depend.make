# Empty dependencies file for coign_support.
# This may be replaced when dependencies are built.
