file(REMOVE_RECURSE
  "libcoign_support.a"
)
