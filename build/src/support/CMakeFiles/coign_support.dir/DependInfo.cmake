
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/guid.cc" "src/support/CMakeFiles/coign_support.dir/guid.cc.o" "gcc" "src/support/CMakeFiles/coign_support.dir/guid.cc.o.d"
  "/root/repo/src/support/histogram.cc" "src/support/CMakeFiles/coign_support.dir/histogram.cc.o" "gcc" "src/support/CMakeFiles/coign_support.dir/histogram.cc.o.d"
  "/root/repo/src/support/log.cc" "src/support/CMakeFiles/coign_support.dir/log.cc.o" "gcc" "src/support/CMakeFiles/coign_support.dir/log.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/support/CMakeFiles/coign_support.dir/rng.cc.o" "gcc" "src/support/CMakeFiles/coign_support.dir/rng.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/support/CMakeFiles/coign_support.dir/stats.cc.o" "gcc" "src/support/CMakeFiles/coign_support.dir/stats.cc.o.d"
  "/root/repo/src/support/status.cc" "src/support/CMakeFiles/coign_support.dir/status.cc.o" "gcc" "src/support/CMakeFiles/coign_support.dir/status.cc.o.d"
  "/root/repo/src/support/str_util.cc" "src/support/CMakeFiles/coign_support.dir/str_util.cc.o" "gcc" "src/support/CMakeFiles/coign_support.dir/str_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
