file(REMOVE_RECURSE
  "CMakeFiles/coign_support.dir/guid.cc.o"
  "CMakeFiles/coign_support.dir/guid.cc.o.d"
  "CMakeFiles/coign_support.dir/histogram.cc.o"
  "CMakeFiles/coign_support.dir/histogram.cc.o.d"
  "CMakeFiles/coign_support.dir/log.cc.o"
  "CMakeFiles/coign_support.dir/log.cc.o.d"
  "CMakeFiles/coign_support.dir/rng.cc.o"
  "CMakeFiles/coign_support.dir/rng.cc.o.d"
  "CMakeFiles/coign_support.dir/stats.cc.o"
  "CMakeFiles/coign_support.dir/stats.cc.o.d"
  "CMakeFiles/coign_support.dir/status.cc.o"
  "CMakeFiles/coign_support.dir/status.cc.o.d"
  "CMakeFiles/coign_support.dir/str_util.cc.o"
  "CMakeFiles/coign_support.dir/str_util.cc.o.d"
  "libcoign_support.a"
  "libcoign_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
