
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mincut/edmonds_karp.cc" "src/mincut/CMakeFiles/coign_mincut.dir/edmonds_karp.cc.o" "gcc" "src/mincut/CMakeFiles/coign_mincut.dir/edmonds_karp.cc.o.d"
  "/root/repo/src/mincut/flow_network.cc" "src/mincut/CMakeFiles/coign_mincut.dir/flow_network.cc.o" "gcc" "src/mincut/CMakeFiles/coign_mincut.dir/flow_network.cc.o.d"
  "/root/repo/src/mincut/multiway.cc" "src/mincut/CMakeFiles/coign_mincut.dir/multiway.cc.o" "gcc" "src/mincut/CMakeFiles/coign_mincut.dir/multiway.cc.o.d"
  "/root/repo/src/mincut/relabel_to_front.cc" "src/mincut/CMakeFiles/coign_mincut.dir/relabel_to_front.cc.o" "gcc" "src/mincut/CMakeFiles/coign_mincut.dir/relabel_to_front.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
