# Empty compiler generated dependencies file for coign_mincut.
# This may be replaced when dependencies are built.
