file(REMOVE_RECURSE
  "libcoign_mincut.a"
)
