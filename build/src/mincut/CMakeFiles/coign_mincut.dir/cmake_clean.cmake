file(REMOVE_RECURSE
  "CMakeFiles/coign_mincut.dir/edmonds_karp.cc.o"
  "CMakeFiles/coign_mincut.dir/edmonds_karp.cc.o.d"
  "CMakeFiles/coign_mincut.dir/flow_network.cc.o"
  "CMakeFiles/coign_mincut.dir/flow_network.cc.o.d"
  "CMakeFiles/coign_mincut.dir/multiway.cc.o"
  "CMakeFiles/coign_mincut.dir/multiway.cc.o.d"
  "CMakeFiles/coign_mincut.dir/relabel_to_front.cc.o"
  "CMakeFiles/coign_mincut.dir/relabel_to_front.cc.o.d"
  "libcoign_mincut.a"
  "libcoign_mincut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
