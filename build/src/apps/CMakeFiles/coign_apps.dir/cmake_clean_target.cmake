file(REMOVE_RECURSE
  "libcoign_apps.a"
)
