file(REMOVE_RECURSE
  "CMakeFiles/coign_apps.dir/app.cc.o"
  "CMakeFiles/coign_apps.dir/app.cc.o.d"
  "CMakeFiles/coign_apps.dir/benefits.cc.o"
  "CMakeFiles/coign_apps.dir/benefits.cc.o.d"
  "CMakeFiles/coign_apps.dir/component_library.cc.o"
  "CMakeFiles/coign_apps.dir/component_library.cc.o.d"
  "CMakeFiles/coign_apps.dir/octarine.cc.o"
  "CMakeFiles/coign_apps.dir/octarine.cc.o.d"
  "CMakeFiles/coign_apps.dir/photodraw.cc.o"
  "CMakeFiles/coign_apps.dir/photodraw.cc.o.d"
  "CMakeFiles/coign_apps.dir/suite.cc.o"
  "CMakeFiles/coign_apps.dir/suite.cc.o.d"
  "libcoign_apps.a"
  "libcoign_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
