# Empty dependencies file for coign_apps.
# This may be replaced when dependencies are built.
