file(REMOVE_RECURSE
  "CMakeFiles/coign_profile.dir/event.cc.o"
  "CMakeFiles/coign_profile.dir/event.cc.o.d"
  "CMakeFiles/coign_profile.dir/icc_profile.cc.o"
  "CMakeFiles/coign_profile.dir/icc_profile.cc.o.d"
  "CMakeFiles/coign_profile.dir/log_file.cc.o"
  "CMakeFiles/coign_profile.dir/log_file.cc.o.d"
  "libcoign_profile.a"
  "libcoign_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
