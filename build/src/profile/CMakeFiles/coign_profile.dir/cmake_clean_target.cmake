file(REMOVE_RECURSE
  "libcoign_profile.a"
)
