
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/event.cc" "src/profile/CMakeFiles/coign_profile.dir/event.cc.o" "gcc" "src/profile/CMakeFiles/coign_profile.dir/event.cc.o.d"
  "/root/repo/src/profile/icc_profile.cc" "src/profile/CMakeFiles/coign_profile.dir/icc_profile.cc.o" "gcc" "src/profile/CMakeFiles/coign_profile.dir/icc_profile.cc.o.d"
  "/root/repo/src/profile/log_file.cc" "src/profile/CMakeFiles/coign_profile.dir/log_file.cc.o" "gcc" "src/profile/CMakeFiles/coign_profile.dir/log_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classify/CMakeFiles/coign_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/coign_com.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
