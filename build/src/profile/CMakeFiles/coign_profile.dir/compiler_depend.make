# Empty compiler generated dependencies file for coign_profile.
# This may be replaced when dependencies are built.
