file(REMOVE_RECURSE
  "CMakeFiles/coign_sim.dir/accountant.cc.o"
  "CMakeFiles/coign_sim.dir/accountant.cc.o.d"
  "CMakeFiles/coign_sim.dir/class_placement.cc.o"
  "CMakeFiles/coign_sim.dir/class_placement.cc.o.d"
  "CMakeFiles/coign_sim.dir/measurement.cc.o"
  "CMakeFiles/coign_sim.dir/measurement.cc.o.d"
  "libcoign_sim.a"
  "libcoign_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
