# Empty compiler generated dependencies file for coign_sim.
# This may be replaced when dependencies are built.
