
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/accountant.cc" "src/sim/CMakeFiles/coign_sim.dir/accountant.cc.o" "gcc" "src/sim/CMakeFiles/coign_sim.dir/accountant.cc.o.d"
  "/root/repo/src/sim/class_placement.cc" "src/sim/CMakeFiles/coign_sim.dir/class_placement.cc.o" "gcc" "src/sim/CMakeFiles/coign_sim.dir/class_placement.cc.o.d"
  "/root/repo/src/sim/measurement.cc" "src/sim/CMakeFiles/coign_sim.dir/measurement.cc.o" "gcc" "src/sim/CMakeFiles/coign_sim.dir/measurement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/marshal/CMakeFiles/coign_marshal.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coign_net.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/coign_com.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
