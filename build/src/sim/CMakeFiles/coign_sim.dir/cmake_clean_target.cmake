file(REMOVE_RECURSE
  "libcoign_sim.a"
)
