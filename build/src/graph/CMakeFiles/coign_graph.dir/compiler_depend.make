# Empty compiler generated dependencies file for coign_graph.
# This may be replaced when dependencies are built.
