file(REMOVE_RECURSE
  "libcoign_graph.a"
)
