
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/concrete_graph.cc" "src/graph/CMakeFiles/coign_graph.dir/concrete_graph.cc.o" "gcc" "src/graph/CMakeFiles/coign_graph.dir/concrete_graph.cc.o.d"
  "/root/repo/src/graph/constraints.cc" "src/graph/CMakeFiles/coign_graph.dir/constraints.cc.o" "gcc" "src/graph/CMakeFiles/coign_graph.dir/constraints.cc.o.d"
  "/root/repo/src/graph/distribution.cc" "src/graph/CMakeFiles/coign_graph.dir/distribution.cc.o" "gcc" "src/graph/CMakeFiles/coign_graph.dir/distribution.cc.o.d"
  "/root/repo/src/graph/icc_graph.cc" "src/graph/CMakeFiles/coign_graph.dir/icc_graph.cc.o" "gcc" "src/graph/CMakeFiles/coign_graph.dir/icc_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/coign_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coign_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mincut/CMakeFiles/coign_mincut.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/coign_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/coign_com.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
