file(REMOVE_RECURSE
  "CMakeFiles/coign_graph.dir/concrete_graph.cc.o"
  "CMakeFiles/coign_graph.dir/concrete_graph.cc.o.d"
  "CMakeFiles/coign_graph.dir/constraints.cc.o"
  "CMakeFiles/coign_graph.dir/constraints.cc.o.d"
  "CMakeFiles/coign_graph.dir/distribution.cc.o"
  "CMakeFiles/coign_graph.dir/distribution.cc.o.d"
  "CMakeFiles/coign_graph.dir/icc_graph.cc.o"
  "CMakeFiles/coign_graph.dir/icc_graph.cc.o.d"
  "libcoign_graph.a"
  "libcoign_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
