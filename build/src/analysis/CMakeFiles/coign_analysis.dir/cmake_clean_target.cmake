file(REMOVE_RECURSE
  "libcoign_analysis.a"
)
