
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dot_export.cc" "src/analysis/CMakeFiles/coign_analysis.dir/dot_export.cc.o" "gcc" "src/analysis/CMakeFiles/coign_analysis.dir/dot_export.cc.o.d"
  "/root/repo/src/analysis/engine.cc" "src/analysis/CMakeFiles/coign_analysis.dir/engine.cc.o" "gcc" "src/analysis/CMakeFiles/coign_analysis.dir/engine.cc.o.d"
  "/root/repo/src/analysis/hotspots.cc" "src/analysis/CMakeFiles/coign_analysis.dir/hotspots.cc.o" "gcc" "src/analysis/CMakeFiles/coign_analysis.dir/hotspots.cc.o.d"
  "/root/repo/src/analysis/multiway.cc" "src/analysis/CMakeFiles/coign_analysis.dir/multiway.cc.o" "gcc" "src/analysis/CMakeFiles/coign_analysis.dir/multiway.cc.o.d"
  "/root/repo/src/analysis/prediction.cc" "src/analysis/CMakeFiles/coign_analysis.dir/prediction.cc.o" "gcc" "src/analysis/CMakeFiles/coign_analysis.dir/prediction.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/coign_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/coign_analysis.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/coign_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mincut/CMakeFiles/coign_mincut.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coign_net.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/coign_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/coign_support.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/coign_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/coign_com.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
