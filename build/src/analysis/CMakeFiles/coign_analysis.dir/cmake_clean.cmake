file(REMOVE_RECURSE
  "CMakeFiles/coign_analysis.dir/dot_export.cc.o"
  "CMakeFiles/coign_analysis.dir/dot_export.cc.o.d"
  "CMakeFiles/coign_analysis.dir/engine.cc.o"
  "CMakeFiles/coign_analysis.dir/engine.cc.o.d"
  "CMakeFiles/coign_analysis.dir/hotspots.cc.o"
  "CMakeFiles/coign_analysis.dir/hotspots.cc.o.d"
  "CMakeFiles/coign_analysis.dir/multiway.cc.o"
  "CMakeFiles/coign_analysis.dir/multiway.cc.o.d"
  "CMakeFiles/coign_analysis.dir/prediction.cc.o"
  "CMakeFiles/coign_analysis.dir/prediction.cc.o.d"
  "CMakeFiles/coign_analysis.dir/report.cc.o"
  "CMakeFiles/coign_analysis.dir/report.cc.o.d"
  "libcoign_analysis.a"
  "libcoign_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coign_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
