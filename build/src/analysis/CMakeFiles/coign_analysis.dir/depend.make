# Empty dependencies file for coign_analysis.
# This may be replaced when dependencies are built.
