// The IDL data model: every parameter of every interface method is a Value.
//
// This plays the role of the MIDL-described wire types in COM. The marshal
// library walks Values to compute (and perform) DCOM-style deep-copy
// marshaling; interface references marshal as references (never deep
// copies); opaque pointers cannot be marshaled at all and make an interface
// non-remotable — the PhotoDraw shared-memory-section case from the paper.

#ifndef COIGN_SRC_COM_VALUE_H_
#define COIGN_SRC_COM_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/com/types.h"

namespace coign {

enum class ValueKind : uint8_t {
  kNull = 0,
  kBool,
  kInt32,
  kInt64,
  kDouble,
  kString,
  kBlob,       // Byte buffer; may be synthetic (size-only) for large payloads.
  kInterface,  // Reference to a component interface (marshals by reference).
  kArray,      // Homogeneous-ish sequence of Values.
  kRecord,     // Named fields (a struct).
  kOpaque,     // Raw pointer passed opaquely; NOT marshalable.
};

const char* ValueKindName(ValueKind kind);

class Value;

// A blob is either materialized (real bytes) or synthetic: a declared size
// plus a pattern seed. Synthetic blobs let scenario scripts "send" megabyte
// images without allocating them; the marshaler sizes both identically and
// can serialize both deterministically.
struct Blob {
  uint64_t size = 0;
  uint64_t pattern_seed = 0;
  std::vector<uint8_t> data;  // Empty when synthetic.

  bool materialized() const { return !data.empty() || size == 0; }
  // Byte at offset i (pattern-generated for synthetic blobs).
  uint8_t ByteAt(uint64_t i) const;

  friend bool operator==(const Blob& a, const Blob& b);
};

class Value {
 public:
  Value() : kind_(ValueKind::kNull) {}

  static Value Null() { return Value(); }
  static Value FromBool(bool v);
  static Value FromInt32(int32_t v);
  static Value FromInt64(int64_t v);
  static Value FromDouble(double v);
  static Value FromString(std::string v);
  static Value FromBytes(std::vector<uint8_t> bytes);
  // Synthetic blob: `size` bytes of a deterministic pattern.
  static Value BlobOfSize(uint64_t size, uint64_t pattern_seed = 0);
  static Value FromInterface(ObjectRef ref);
  static Value FromArray(std::vector<Value> elements);
  static Value FromRecord(std::vector<std::pair<std::string, Value>> fields);
  // An opaque pointer (e.g. into a shared memory section).
  static Value FromOpaque(uint64_t address);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }

  // Typed accessors; calling the wrong one is a programming error (asserts).
  bool AsBool() const;
  int32_t AsInt32() const;
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const Blob& AsBlob() const;
  const ObjectRef& AsInterface() const;
  const std::vector<Value>& AsArray() const;
  const std::vector<std::pair<std::string, Value>>& AsRecord() const;
  uint64_t AsOpaque() const;

  // True if this value (recursively) contains an opaque pointer, i.e. cannot
  // cross a machine boundary.
  bool ContainsOpaque() const;
  // True if this value (recursively) contains an interface reference.
  bool ContainsInterface() const;

  // Collects all interface references in the value tree (in order).
  void CollectInterfaces(std::vector<ObjectRef>* out) const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  ValueKind kind_;
  bool bool_ = false;
  int64_t int_ = 0;          // Backs both kInt32 and kInt64.
  double double_ = 0.0;
  uint64_t opaque_ = 0;
  std::string string_;
  Blob blob_;
  ObjectRef interface_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> record_;
};

}  // namespace coign

#endif  // COIGN_SRC_COM_VALUE_H_
