#include "src/com/object.h"

// ComponentInstance is header-only today; this file anchors the library's
// vtable emission.

namespace coign {}  // namespace coign
