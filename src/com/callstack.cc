#include "src/com/callstack.h"

#include <cassert>

namespace coign {

void CallStack::Push(const CallFrame& frame) {
  CallFrame f = frame;
  f.entered_instance =
      frames_.empty() || frames_.back().instance != frame.instance;
  frames_.push_back(f);
}

void CallStack::Pop() {
  assert(!frames_.empty());
  frames_.pop_back();
}

std::vector<CallFrame> CallStack::BackTrace() const {
  return {frames_.rbegin(), frames_.rend()};
}

}  // namespace coign
