// Component classes and their registry — the stand-in for the COM class
// table, plus the per-class facts Coign's static analysis extracts from
// binaries (which Windows API families each component touches, paper §2:
// "components that access a set of known GUI or storage APIs are placed on
// the client or server respectively").

#ifndef COIGN_SRC_COM_CLASS_REGISTRY_H_
#define COIGN_SRC_COM_CLASS_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/com/object.h"
#include "src/com/types.h"
#include "src/support/status.h"

namespace coign {

// Bitmask of API families a component's binary code references.
enum ApiUsage : uint32_t {
  kApiNone = 0,
  kApiGui = 1u << 0,      // USER32/GDI32-style calls: must run on the client.
  kApiStorage = 1u << 1,  // File/storage calls: must run where the data is.
  kApiOdbc = 1u << 2,     // Proprietary database connection (not analyzable).
};

struct ClassDesc {
  ClassId clsid;
  std::string name;
  // Interfaces instances of this class implement.
  std::vector<InterfaceId> interfaces;
  // ApiUsage bitmask discovered by static binary analysis.
  uint32_t api_usage = kApiNone;
  // Instantiates a fresh component. Never null for a registered class.
  std::function<RefPtr<ComponentInstance>()> factory;

  bool Implements(const InterfaceId& iid) const;
};

class ClassRegistry {
 public:
  Status Register(ClassDesc desc);
  const ClassDesc* Lookup(const ClassId& clsid) const;
  const ClassDesc* LookupByName(const std::string& name) const;

  size_t size() const { return classes_.size(); }
  std::vector<const ClassDesc*> All() const;

 private:
  std::unordered_map<ClassId, ClassDesc> classes_;
  std::unordered_map<std::string, ClassId> by_name_;
};

}  // namespace coign

#endif  // COIGN_SRC_COM_CLASS_REGISTRY_H_
