#include "src/com/metadata.h"

#include <cassert>
#include <utility>

namespace coign {

InterfaceBuilder::InterfaceBuilder(std::string name) {
  desc_.iid = Guid::FromName("iid:" + name);
  desc_.name = std::move(name);
}

InterfaceBuilder& InterfaceBuilder::NonRemotable() {
  desc_.remotable = false;
  return *this;
}

InterfaceBuilder& InterfaceBuilder::Method(std::string name) {
  desc_.methods.push_back(MethodDesc{std::move(name), {}, false});
  return *this;
}

InterfaceBuilder& InterfaceBuilder::Cacheable() {
  assert(!desc_.methods.empty() && "Cacheable() before Method()");
  desc_.methods.back().cacheable = true;
  return *this;
}

InterfaceBuilder& InterfaceBuilder::In(std::string name, ValueKind kind) {
  assert(!desc_.methods.empty() && "In() before Method()");
  desc_.methods.back().params.push_back(
      ParamDesc{std::move(name), ParamDirection::kIn, kind});
  return *this;
}

InterfaceBuilder& InterfaceBuilder::Out(std::string name, ValueKind kind) {
  assert(!desc_.methods.empty() && "Out() before Method()");
  desc_.methods.back().params.push_back(
      ParamDesc{std::move(name), ParamDirection::kOut, kind});
  return *this;
}

InterfaceBuilder& InterfaceBuilder::InOut(std::string name, ValueKind kind) {
  assert(!desc_.methods.empty() && "InOut() before Method()");
  desc_.methods.back().params.push_back(
      ParamDesc{std::move(name), ParamDirection::kInOut, kind});
  return *this;
}

InterfaceDesc InterfaceBuilder::Build() { return std::move(desc_); }

Status InterfaceRegistry::Register(InterfaceDesc desc) {
  if (interfaces_.contains(desc.iid)) {
    return AlreadyExistsError("interface already registered: " + desc.name);
  }
  if (by_name_.contains(desc.name)) {
    return AlreadyExistsError("interface name already registered: " + desc.name);
  }
  const InterfaceId iid = desc.iid;
  by_name_.emplace(desc.name, iid);
  interfaces_.emplace(iid, std::move(desc));
  return Status::Ok();
}

const InterfaceDesc* InterfaceRegistry::Lookup(const InterfaceId& iid) const {
  auto it = interfaces_.find(iid);
  return it == interfaces_.end() ? nullptr : &it->second;
}

const InterfaceDesc* InterfaceRegistry::LookupByName(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : Lookup(it->second);
}

std::vector<const InterfaceDesc*> InterfaceRegistry::All() const {
  std::vector<const InterfaceDesc*> out;
  out.reserve(interfaces_.size());
  for (const auto& [iid, desc] : interfaces_) {
    out.push_back(&desc);
  }
  return out;
}

}  // namespace coign
