// Core identifier types of the component model.
//
// Interfaces and classes are identified by GUIDs, exactly as in COM. Live
// component instances get small dense ids assigned by the ObjectSystem.

#ifndef COIGN_SRC_COM_TYPES_H_
#define COIGN_SRC_COM_TYPES_H_

#include <cstdint>

#include "src/support/guid.h"

namespace coign {

using InterfaceId = Guid;
using ClassId = Guid;

// Dense runtime id of a live component instance; 0 is reserved for
// "no instance" (e.g. the application's top-level driver code).
using InstanceId = uint64_t;
constexpr InstanceId kNoInstance = 0;

using MethodIndex = uint32_t;

// Machines in the (simulated) network. The paper's evaluation is two-machine
// client/server; the multiway extension uses additional ids.
using MachineId = int32_t;
constexpr MachineId kClientMachine = 0;
constexpr MachineId kServerMachine = 1;

// A lightweight reference to an interface on a component instance — the
// moral equivalent of a COM interface pointer after Coign wraps it: calls
// through it are routable and the runtime can always recover the owning
// instance.
struct ObjectRef {
  InstanceId instance = kNoInstance;
  InterfaceId iid;

  bool IsNull() const { return instance == kNoInstance; }

  friend bool operator==(const ObjectRef& a, const ObjectRef& b) = default;
};

}  // namespace coign

#endif  // COIGN_SRC_COM_TYPES_H_
