// Static interface metadata — the stand-in for MIDL compiler output.
//
// The profiling interface informer uses this metadata to walk every call
// parameter and measure communication precisely (paper §3.2). An interface
// declared non-remotable (or whose methods carry opaque pointers) cannot
// cross a machine boundary; the analysis engine turns such edges into
// infinite-weight colocation constraints.

#ifndef COIGN_SRC_COM_METADATA_H_
#define COIGN_SRC_COM_METADATA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/com/types.h"
#include "src/com/value.h"
#include "src/support/status.h"

namespace coign {

enum class ParamDirection : uint8_t { kIn, kOut, kInOut };

struct ParamDesc {
  std::string name;
  ParamDirection direction = ParamDirection::kIn;
  ValueKind kind = ValueKind::kNull;
};

struct MethodDesc {
  std::string name;
  std::vector<ParamDesc> params;
  // True if the method is a pure query: identical requests yield identical
  // replies, so a caching proxy may answer repeats locally (the paper's
  // "per-interface caching through COM's semi-custom marshaling").
  bool cacheable = false;
};

struct InterfaceDesc {
  InterfaceId iid;
  std::string name;
  // False for interfaces with no IDL marshaling info (the paper's
  // "non-distributable interfaces", drawn as solid black lines in Figs 4-5).
  bool remotable = true;
  std::vector<MethodDesc> methods;

  const MethodDesc* FindMethod(MethodIndex index) const {
    if (index >= methods.size()) {
      return nullptr;
    }
    return &methods[index];
  }
};

// Builder sugar for declaring interfaces in application code.
class InterfaceBuilder {
 public:
  explicit InterfaceBuilder(std::string name);

  InterfaceBuilder& NonRemotable();
  // Starts a new method; subsequent In/Out calls attach parameters to it.
  InterfaceBuilder& Method(std::string name);
  // Marks the current method as a cacheable pure query.
  InterfaceBuilder& Cacheable();
  InterfaceBuilder& In(std::string name, ValueKind kind);
  InterfaceBuilder& Out(std::string name, ValueKind kind);
  InterfaceBuilder& InOut(std::string name, ValueKind kind);

  // Consumes the builder's state; call once, at the end of the chain.
  InterfaceDesc Build();

 private:
  InterfaceDesc desc_;
};

class InterfaceRegistry {
 public:
  Status Register(InterfaceDesc desc);
  const InterfaceDesc* Lookup(const InterfaceId& iid) const;
  const InterfaceDesc* LookupByName(const std::string& name) const;

  size_t size() const { return interfaces_.size(); }

  // All registered interfaces, unordered.
  std::vector<const InterfaceDesc*> All() const;

 private:
  std::unordered_map<InterfaceId, InterfaceDesc> interfaces_;
  std::unordered_map<std::string, InterfaceId> by_name_;
};

}  // namespace coign

#endif  // COIGN_SRC_COM_METADATA_H_
