// The execution call stack across component boundaries.
//
// In the real system this is the x86 stack, which Coign's instance
// classifiers walk at instantiation time (paper §3.4, Figure 3). Here the
// ObjectSystem maintains the cross-component stack explicitly as calls are
// dispatched, which gives classifiers the same back-trace the paper's
// stack walker recovers.

#ifndef COIGN_SRC_COM_CALLSTACK_H_
#define COIGN_SRC_COM_CALLSTACK_H_

#include <string>
#include <vector>

#include "src/com/types.h"

namespace coign {

struct CallFrame {
  InstanceId instance = kNoInstance;  // Instance executing this frame.
  ClassId clsid;                      // Its component class.
  InterfaceId iid;                    // Interface the call arrived on.
  MethodIndex method = 0;
  // True if this frame entered a different instance than the frame below it
  // (i.e. control crossed a component-instance boundary here). The
  // entry-point called-by classifier keeps only these frames.
  bool entered_instance = false;
};

class CallStack {
 public:
  void Push(const CallFrame& frame);
  void Pop();

  bool empty() const { return frames_.empty(); }
  size_t depth() const { return frames_.size(); }

  // Innermost (most recent) frame; requires !empty().
  const CallFrame& Top() const { return frames_.back(); }

  // Frames ordered innermost-first — the order classifier descriptors list
  // them in Figure 3.
  std::vector<CallFrame> BackTrace() const;

  // Instance executing right now (kNoInstance when the application's
  // top-level driver is running).
  InstanceId CurrentInstance() const {
    return frames_.empty() ? kNoInstance : frames_.back().instance;
  }

 private:
  std::vector<CallFrame> frames_;
};

}  // namespace coign

#endif  // COIGN_SRC_COM_CALLSTACK_H_
