// Messages: the argument frames that cross interface boundaries.
//
// An interface call carries an input Message (the [in] parameters) and gets
// back an output Message (the [out] parameters). The marshal library turns
// Messages into wire bytes with DCOM deep-copy semantics.

#ifndef COIGN_SRC_COM_MESSAGE_H_
#define COIGN_SRC_COM_MESSAGE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/com/value.h"

namespace coign {

class Message {
 public:
  struct Argument {
    std::string name;
    Value value;

    friend bool operator==(const Argument& a, const Argument& b) = default;
  };

  Message() = default;

  Message& Add(std::string name, Value value);

  size_t size() const { return args_.size(); }
  bool empty() const { return args_.empty(); }

  const Argument& at(size_t index) const { return args_[index]; }
  // nullptr if absent.
  const Value* Find(std::string_view name) const;

  const std::vector<Argument>& args() const { return args_; }

  bool ContainsOpaque() const;
  void CollectInterfaces(std::vector<ObjectRef>* out) const;

  std::string ToString() const;

  friend bool operator==(const Message& a, const Message& b) = default;

 private:
  std::vector<Argument> args_;
};

}  // namespace coign

#endif  // COIGN_SRC_COM_MESSAGE_H_
