// The ObjectSystem: this repo's COM library.
//
// It owns the class and interface registries, fulfills instantiation
// requests, routes every inter-component call, and maintains the
// cross-component call stack. Crucially it exposes the two interception
// points Coign needs (paper §2-3):
//
//   * Interceptors observe instantiation, destruction, and every interface
//     call — the effect the binary rewriter + RTE achieve on Windows by
//     patching the COM library and wrapping interface pointers.
//   * A PlacementPolicy decides which machine fulfills each instantiation
//     request — the component factory's lever for realizing a distribution.
//
// Machine placement is tracked per instance; calls whose caller and target
// live on different machines are "remote" and are refused (with an error)
// when the interface is non-remotable or a parameter is opaque, modeling
// what would crash in a real mis-partitioned DCOM application.

#ifndef COIGN_SRC_COM_OBJECT_SYSTEM_H_
#define COIGN_SRC_COM_OBJECT_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/com/callstack.h"
#include "src/com/class_registry.h"
#include "src/com/message.h"
#include "src/com/metadata.h"
#include "src/com/object.h"
#include "src/com/types.h"
#include "src/support/status.h"

namespace coign {

class ObjectSystem {
 public:
  // Facts about one interface call, handed to interceptors.
  struct CallEvent {
    InstanceId caller = kNoInstance;
    ClassId caller_clsid;              // Null GUID when caller is the driver.
    MachineId caller_machine = kClientMachine;
    ObjectRef target;
    ClassId target_clsid;
    MachineId target_machine = kClientMachine;
    MethodIndex method = 0;
    const Message* in = nullptr;
    const Message* out = nullptr;  // Null until the call completes.

    bool is_remote() const { return caller_machine != target_machine; }
  };

  // Observation hooks. The Coign runtime (and the distributed-execution
  // simulator) implement this.
  class Interceptor {
   public:
    virtual ~Interceptor() = default;
    virtual void OnInstantiated(const ClassDesc& cls, InstanceId id, InstanceId creator) {
      (void)cls;
      (void)id;
      (void)creator;
    }
    virtual void OnDestroyed(InstanceId id, const ClassId& clsid) {
      (void)id;
      (void)clsid;
    }
    virtual void OnCallBegin(const CallEvent& event) { (void)event; }
    virtual void OnCallEnd(const CallEvent& event, const Status& status) {
      (void)event;
      (void)status;
    }
    // A component burned CPU (reported via ChargeCompute).
    virtual void OnCompute(InstanceId instance, double seconds) {
      (void)instance;
      (void)seconds;
    }
    // A component grew its resident state (reported via ChargeAllocation).
    virtual void OnAllocate(InstanceId instance, uint64_t bytes) {
      (void)instance;
      (void)bytes;
    }
  };

  // Chooses the machine that fulfills an instantiation request. `new_id` is
  // the id the instance will carry — the instance classifier binds its
  // classification to it before deciding placement, exactly the RTE →
  // classifier → component-factory sequence of paper §3.1.
  using PlacementPolicy =
      std::function<MachineId(const ClassDesc& cls, InstanceId creator, InstanceId new_id)>;

  // A call filter may answer a call without dispatching it (a caching proxy
  // answering a repeated query locally). Consulted before dispatch; return
  // true with `out` filled to short-circuit. Only one filter at a time.
  using CallFilter = std::function<bool(const CallEvent& event, Message* out)>;

  struct InstanceInfo {
    InstanceId id = kNoInstance;
    ClassId clsid;
    std::string class_name;
    MachineId machine = kClientMachine;
    InstanceId creator = kNoInstance;
  };

  ObjectSystem();
  ObjectSystem(const ObjectSystem&) = delete;
  ObjectSystem& operator=(const ObjectSystem&) = delete;

  InterfaceRegistry& interfaces() { return interfaces_; }
  const InterfaceRegistry& interfaces() const { return interfaces_; }
  ClassRegistry& classes() { return classes_; }
  const ClassRegistry& classes() const { return classes_; }

  // The CoCreateInstance analog. The creator is whichever instance is
  // executing right now (the top of the call stack). The returned ref is on
  // `iid`, which the class must implement.
  Result<ObjectRef> CreateInstance(const ClassId& clsid, const InterfaceId& iid);
  Result<ObjectRef> CreateInstanceByName(const std::string& class_name,
                                         const std::string& interface_name);

  // Returns a ref to another interface of the same instance.
  Result<ObjectRef> QueryInterface(const ObjectRef& ref, const InterfaceId& iid);

  // Routes one interface call. `out` receives the reply message.
  Status Call(const ObjectRef& target, MethodIndex method, const Message& in, Message* out);

  // Called by components from inside Dispatch to account local CPU work of
  // `seconds` on a reference machine. Interceptors observe it (the profiler
  // attributes it to the executing classification; the simulator advances
  // the owning machine's clock).
  void ChargeCompute(double seconds);

  // Called by components from inside Dispatch to account `bytes` of
  // durable instance state (documents, tables, caches). Interceptors
  // observe it; the profiler attributes it to the executing classification,
  // which is what grounds per-instance migration state-size estimates.
  void ChargeAllocation(uint64_t bytes);

  Status DestroyInstance(InstanceId id);
  // Destroys all live instances (application shutdown).
  void DestroyAll();

  ComponentInstance* Resolve(InstanceId id) const;
  // Null if the instance is unknown.
  const ClassDesc* ClassOf(InstanceId id) const;
  Result<MachineId> MachineOf(InstanceId id) const;
  Status MoveInstance(InstanceId id, MachineId machine);

  const CallStack& call_stack() const { return stack_; }

  void AddInterceptor(Interceptor* interceptor);
  void RemoveInterceptor(Interceptor* interceptor);
  void SetPlacementPolicy(PlacementPolicy policy) { placement_ = std::move(policy); }
  void SetCallFilter(CallFilter filter) { call_filter_ = std::move(filter); }

  // Calls answered by the filter without dispatch.
  uint64_t filtered_calls() const { return filtered_calls_; }

  size_t live_instance_count() const { return instances_.size(); }
  uint64_t total_instantiations() const { return total_instantiations_; }
  uint64_t total_calls() const { return total_calls_; }

  // Live instances sorted by id.
  std::vector<InstanceInfo> LiveInstances() const;

 private:
  struct Entry {
    RefPtr<ComponentInstance> object;
    const ClassDesc* cls = nullptr;
    MachineId machine = kClientMachine;
    InstanceId creator = kNoInstance;
  };

  // Rejects remote calls that could not happen over DCOM.
  Status ValidateRemotability(const CallEvent& event, const InterfaceDesc& iface,
                              const Message& in) const;

  InterfaceRegistry interfaces_;
  ClassRegistry classes_;
  std::unordered_map<InstanceId, Entry> instances_;
  CallStack stack_;
  std::vector<Interceptor*> interceptors_;
  PlacementPolicy placement_;
  CallFilter call_filter_;
  InstanceId next_id_ = 1;
  uint64_t total_instantiations_ = 0;
  uint64_t total_calls_ = 0;
  uint64_t filtered_calls_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_COM_OBJECT_SYSTEM_H_
