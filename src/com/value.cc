#include "src/com/value.h"

#include <cassert>

#include "src/support/str_util.h"

namespace coign {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt32:
      return "int32";
    case ValueKind::kInt64:
      return "int64";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kBlob:
      return "blob";
    case ValueKind::kInterface:
      return "interface";
    case ValueKind::kArray:
      return "array";
    case ValueKind::kRecord:
      return "record";
    case ValueKind::kOpaque:
      return "opaque";
  }
  return "?";
}

uint8_t Blob::ByteAt(uint64_t i) const {
  if (!data.empty()) {
    assert(i < data.size());
    return data[i];
  }
  // Deterministic pattern: cheap mix of the seed and offset.
  uint64_t x = (i + 1) * 0x9e3779b97f4a7c15ull ^ pattern_seed;
  x ^= x >> 29;
  return static_cast<uint8_t>(x);
}

bool operator==(const Blob& a, const Blob& b) {
  if (a.size != b.size) {
    return false;
  }
  if (a.data.empty() && b.data.empty()) {
    return a.pattern_seed == b.pattern_seed;
  }
  for (uint64_t i = 0; i < a.size; ++i) {
    if (a.ByteAt(i) != b.ByteAt(i)) {
      return false;
    }
  }
  return true;
}

Value Value::FromBool(bool v) {
  Value out;
  out.kind_ = ValueKind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::FromInt32(int32_t v) {
  Value out;
  out.kind_ = ValueKind::kInt32;
  out.int_ = v;
  return out;
}

Value Value::FromInt64(int64_t v) {
  Value out;
  out.kind_ = ValueKind::kInt64;
  out.int_ = v;
  return out;
}

Value Value::FromDouble(double v) {
  Value out;
  out.kind_ = ValueKind::kDouble;
  out.double_ = v;
  return out;
}

Value Value::FromString(std::string v) {
  Value out;
  out.kind_ = ValueKind::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::FromBytes(std::vector<uint8_t> bytes) {
  Value out;
  out.kind_ = ValueKind::kBlob;
  out.blob_.size = bytes.size();
  out.blob_.data = std::move(bytes);
  return out;
}

Value Value::BlobOfSize(uint64_t size, uint64_t pattern_seed) {
  Value out;
  out.kind_ = ValueKind::kBlob;
  out.blob_.size = size;
  out.blob_.pattern_seed = pattern_seed;
  return out;
}

Value Value::FromInterface(ObjectRef ref) {
  Value out;
  out.kind_ = ValueKind::kInterface;
  out.interface_ = ref;
  return out;
}

Value Value::FromArray(std::vector<Value> elements) {
  Value out;
  out.kind_ = ValueKind::kArray;
  out.array_ = std::move(elements);
  return out;
}

Value Value::FromRecord(std::vector<std::pair<std::string, Value>> fields) {
  Value out;
  out.kind_ = ValueKind::kRecord;
  out.record_ = std::move(fields);
  return out;
}

Value Value::FromOpaque(uint64_t address) {
  Value out;
  out.kind_ = ValueKind::kOpaque;
  out.opaque_ = address;
  return out;
}

bool Value::AsBool() const {
  assert(kind_ == ValueKind::kBool);
  return bool_;
}

int32_t Value::AsInt32() const {
  assert(kind_ == ValueKind::kInt32);
  return static_cast<int32_t>(int_);
}

int64_t Value::AsInt64() const {
  assert(kind_ == ValueKind::kInt64);
  return int_;
}

double Value::AsDouble() const {
  assert(kind_ == ValueKind::kDouble);
  return double_;
}

const std::string& Value::AsString() const {
  assert(kind_ == ValueKind::kString);
  return string_;
}

const Blob& Value::AsBlob() const {
  assert(kind_ == ValueKind::kBlob);
  return blob_;
}

const ObjectRef& Value::AsInterface() const {
  assert(kind_ == ValueKind::kInterface);
  return interface_;
}

const std::vector<Value>& Value::AsArray() const {
  assert(kind_ == ValueKind::kArray);
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::AsRecord() const {
  assert(kind_ == ValueKind::kRecord);
  return record_;
}

uint64_t Value::AsOpaque() const {
  assert(kind_ == ValueKind::kOpaque);
  return opaque_;
}

bool Value::ContainsOpaque() const {
  switch (kind_) {
    case ValueKind::kOpaque:
      return true;
    case ValueKind::kArray:
      for (const Value& v : array_) {
        if (v.ContainsOpaque()) {
          return true;
        }
      }
      return false;
    case ValueKind::kRecord:
      for (const auto& [name, v] : record_) {
        if (v.ContainsOpaque()) {
          return true;
        }
      }
      return false;
    default:
      return false;
  }
}

bool Value::ContainsInterface() const {
  switch (kind_) {
    case ValueKind::kInterface:
      return true;
    case ValueKind::kArray:
      for (const Value& v : array_) {
        if (v.ContainsInterface()) {
          return true;
        }
      }
      return false;
    case ValueKind::kRecord:
      for (const auto& [name, v] : record_) {
        if (v.ContainsInterface()) {
          return true;
        }
      }
      return false;
    default:
      return false;
  }
}

void Value::CollectInterfaces(std::vector<ObjectRef>* out) const {
  switch (kind_) {
    case ValueKind::kInterface:
      out->push_back(interface_);
      return;
    case ValueKind::kArray:
      for (const Value& v : array_) {
        v.CollectInterfaces(out);
      }
      return;
    case ValueKind::kRecord:
      for (const auto& [name, v] : record_) {
        v.CollectInterfaces(out);
      }
      return;
    default:
      return;
  }
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return bool_ ? "true" : "false";
    case ValueKind::kInt32:
    case ValueKind::kInt64:
      return StrFormat("%lld", static_cast<long long>(int_));
    case ValueKind::kDouble:
      return StrFormat("%g", double_);
    case ValueKind::kString:
      return StrFormat("\"%s\"", string_.c_str());
    case ValueKind::kBlob:
      return StrFormat("blob[%llu]", static_cast<unsigned long long>(blob_.size));
    case ValueKind::kInterface:
      return StrFormat("iface(#%llu)",
                       static_cast<unsigned long long>(interface_.instance));
    case ValueKind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += array_[i].ToString();
      }
      return out + "]";
    }
    case ValueKind::kRecord: {
      std::string out = "{";
      for (size_t i = 0; i < record_.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += record_[i].first + ": " + record_[i].second.ToString();
      }
      return out + "}";
    }
    case ValueKind::kOpaque:
      return StrFormat("opaque(0x%llx)", static_cast<unsigned long long>(opaque_));
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) {
    return false;
  }
  switch (a.kind_) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kBool:
      return a.bool_ == b.bool_;
    case ValueKind::kInt32:
    case ValueKind::kInt64:
      return a.int_ == b.int_;
    case ValueKind::kDouble:
      return a.double_ == b.double_;
    case ValueKind::kString:
      return a.string_ == b.string_;
    case ValueKind::kBlob:
      return a.blob_ == b.blob_;
    case ValueKind::kInterface:
      return a.interface_ == b.interface_;
    case ValueKind::kArray:
      return a.array_ == b.array_;
    case ValueKind::kRecord:
      return a.record_ == b.record_;
    case ValueKind::kOpaque:
      return a.opaque_ == b.opaque_;
  }
  return false;
}

}  // namespace coign
