#include "src/com/message.h"

namespace coign {

Message& Message::Add(std::string name, Value value) {
  args_.push_back(Argument{std::move(name), std::move(value)});
  return *this;
}

const Value* Message::Find(std::string_view name) const {
  for (const Argument& arg : args_) {
    if (arg.name == name) {
      return &arg.value;
    }
  }
  return nullptr;
}

bool Message::ContainsOpaque() const {
  for (const Argument& arg : args_) {
    if (arg.value.ContainsOpaque()) {
      return true;
    }
  }
  return false;
}

void Message::CollectInterfaces(std::vector<ObjectRef>* out) const {
  for (const Argument& arg : args_) {
    arg.value.CollectInterfaces(out);
  }
}

std::string Message::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += args_[i].name + "=" + args_[i].value.ToString();
  }
  return out + ")";
}

}  // namespace coign
