#include "src/com/object_system.h"

#include <algorithm>
#include <cassert>

#include "src/support/str_util.h"

namespace coign {

ObjectSystem::ObjectSystem() = default;

Result<ObjectRef> ObjectSystem::CreateInstance(const ClassId& clsid, const InterfaceId& iid) {
  const ClassDesc* cls = classes_.Lookup(clsid);
  if (cls == nullptr) {
    return NotFoundError("unknown class " + clsid.ToString());
  }
  if (!cls->Implements(iid)) {
    return InvalidArgumentError(
        StrFormat("class %s does not implement requested interface", cls->name.c_str()));
  }
  const InstanceId creator = stack_.CurrentInstance();

  // The component factory's decision point: which machine fulfills this
  // instantiation request.
  MachineId machine = kClientMachine;
  if (creator != kNoInstance) {
    // Default COM behaviour: in-process instantiation, i.e. the new
    // instance lives where its creator runs.
    auto it = instances_.find(creator);
    assert(it != instances_.end());
    machine = it->second.machine;
  }
  const InstanceId id = next_id_++;
  if (placement_) {
    machine = placement_(*cls, creator, id);
  }

  RefPtr<ComponentInstance> object = cls->factory();
  if (!object) {
    return InternalError("factory returned null for class " + cls->name);
  }
  object->Bind(this, id, clsid);

  Entry entry;
  entry.object = std::move(object);
  entry.cls = cls;
  entry.machine = machine;
  entry.creator = creator;
  instances_.emplace(id, std::move(entry));
  ++total_instantiations_;

  for (Interceptor* interceptor : interceptors_) {
    interceptor->OnInstantiated(*cls, id, creator);
  }
  return ObjectRef{id, iid};
}

Result<ObjectRef> ObjectSystem::CreateInstanceByName(const std::string& class_name,
                                                     const std::string& interface_name) {
  const ClassDesc* cls = classes_.LookupByName(class_name);
  if (cls == nullptr) {
    return NotFoundError("unknown class name " + class_name);
  }
  const InterfaceDesc* iface = interfaces_.LookupByName(interface_name);
  if (iface == nullptr) {
    return NotFoundError("unknown interface name " + interface_name);
  }
  return CreateInstance(cls->clsid, iface->iid);
}

Result<ObjectRef> ObjectSystem::QueryInterface(const ObjectRef& ref, const InterfaceId& iid) {
  auto it = instances_.find(ref.instance);
  if (it == instances_.end()) {
    return NotFoundError("QueryInterface on dead instance");
  }
  if (!it->second.cls->Implements(iid)) {
    return NotFoundError(
        StrFormat("E_NOINTERFACE: %s does not implement requested interface",
                  it->second.cls->name.c_str()));
  }
  return ObjectRef{ref.instance, iid};
}

Status ObjectSystem::ValidateRemotability(const CallEvent& event, const InterfaceDesc& iface,
                                          const Message& in) const {
  if (!event.is_remote()) {
    return Status::Ok();
  }
  if (!iface.remotable) {
    return FailedPreconditionError(
        StrFormat("non-remotable interface %s called across machines %d->%d",
                  iface.name.c_str(), event.caller_machine, event.target_machine));
  }
  if (in.ContainsOpaque()) {
    return FailedPreconditionError(
        StrFormat("opaque pointer passed across machines on interface %s",
                  iface.name.c_str()));
  }
  return Status::Ok();
}

Status ObjectSystem::Call(const ObjectRef& target, MethodIndex method, const Message& in,
                          Message* out) {
  assert(out != nullptr);
  auto it = instances_.find(target.instance);
  if (it == instances_.end()) {
    return NotFoundError(
        StrFormat("call on dead instance #%llu",
                  static_cast<unsigned long long>(target.instance)));
  }
  Entry& entry = it->second;
  if (!entry.cls->Implements(target.iid)) {
    return InvalidArgumentError(
        StrFormat("class %s does not implement the called interface",
                  entry.cls->name.c_str()));
  }
  const InterfaceDesc* iface = interfaces_.Lookup(target.iid);
  if (iface == nullptr) {
    return NotFoundError("called interface is not registered");
  }
  if (iface->FindMethod(method) == nullptr) {
    return OutOfRangeError(
        StrFormat("interface %s has no method %u", iface->name.c_str(), method));
  }

  CallEvent event;
  event.caller = stack_.CurrentInstance();
  if (event.caller != kNoInstance) {
    auto caller_it = instances_.find(event.caller);
    assert(caller_it != instances_.end());
    event.caller_clsid = caller_it->second.cls->clsid;
    event.caller_machine = caller_it->second.machine;
  }
  event.target = target;
  event.target_clsid = entry.cls->clsid;
  event.target_machine = entry.machine;
  event.method = method;
  event.in = &in;

  COIGN_RETURN_IF_ERROR(ValidateRemotability(event, *iface, in));

  // A caching proxy may answer without crossing to the component at all.
  if (call_filter_ && call_filter_(event, out)) {
    ++filtered_calls_;
    return Status::Ok();
  }

  for (Interceptor* interceptor : interceptors_) {
    interceptor->OnCallBegin(event);
  }

  CallFrame frame;
  frame.instance = target.instance;
  frame.clsid = entry.cls->clsid;
  frame.iid = target.iid;
  frame.method = method;
  stack_.Push(frame);

  // Keep the callee alive across the dispatch even if it destroys itself.
  RefPtr<ComponentInstance> callee = entry.object;
  const Status status = callee->Dispatch(target.iid, method, in, out);

  stack_.Pop();
  ++total_calls_;

  event.out = out;
  for (Interceptor* interceptor : interceptors_) {
    interceptor->OnCallEnd(event, status);
  }
  return status;
}

void ObjectSystem::ChargeCompute(double seconds) {
  const InstanceId current = stack_.CurrentInstance();
  for (Interceptor* interceptor : interceptors_) {
    interceptor->OnCompute(current, seconds);
  }
}

void ObjectSystem::ChargeAllocation(uint64_t bytes) {
  const InstanceId current = stack_.CurrentInstance();
  for (Interceptor* interceptor : interceptors_) {
    interceptor->OnAllocate(current, bytes);
  }
}

Status ObjectSystem::DestroyInstance(InstanceId id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    return NotFoundError("destroy of unknown instance");
  }
  const ClassId clsid = it->second.cls->clsid;
  instances_.erase(it);
  for (Interceptor* interceptor : interceptors_) {
    interceptor->OnDestroyed(id, clsid);
  }
  return Status::Ok();
}

void ObjectSystem::DestroyAll() {
  // Deterministic order: descending id (children before their creators,
  // typically).
  std::vector<InstanceId> ids;
  ids.reserve(instances_.size());
  for (const auto& [id, entry] : instances_) {
    ids.push_back(id);
  }
  std::sort(ids.rbegin(), ids.rend());
  for (InstanceId id : ids) {
    (void)DestroyInstance(id);
  }
}

ComponentInstance* ObjectSystem::Resolve(InstanceId id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.object.get();
}

const ClassDesc* ObjectSystem::ClassOf(InstanceId id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.cls;
}

Result<MachineId> ObjectSystem::MachineOf(InstanceId id) const {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    return NotFoundError("machine of unknown instance");
  }
  return it->second.machine;
}

Status ObjectSystem::MoveInstance(InstanceId id, MachineId machine) {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    return NotFoundError("move of unknown instance");
  }
  it->second.machine = machine;
  return Status::Ok();
}

void ObjectSystem::AddInterceptor(Interceptor* interceptor) {
  assert(interceptor != nullptr);
  interceptors_.push_back(interceptor);
}

void ObjectSystem::RemoveInterceptor(Interceptor* interceptor) {
  interceptors_.erase(
      std::remove(interceptors_.begin(), interceptors_.end(), interceptor),
      interceptors_.end());
}

std::vector<ObjectSystem::InstanceInfo> ObjectSystem::LiveInstances() const {
  std::vector<InstanceInfo> out;
  out.reserve(instances_.size());
  for (const auto& [id, entry] : instances_) {
    InstanceInfo info;
    info.id = id;
    info.clsid = entry.cls->clsid;
    info.class_name = entry.cls->name;
    info.machine = entry.machine;
    info.creator = entry.creator;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const InstanceInfo& a, const InstanceInfo& b) { return a.id < b.id; });
  return out;
}

}  // namespace coign
