#include "src/com/class_registry.h"

#include <algorithm>

namespace coign {

bool ClassDesc::Implements(const InterfaceId& iid) const {
  return std::find(interfaces.begin(), interfaces.end(), iid) != interfaces.end();
}

Status ClassRegistry::Register(ClassDesc desc) {
  if (!desc.factory) {
    return InvalidArgumentError("class has no factory: " + desc.name);
  }
  if (classes_.contains(desc.clsid)) {
    return AlreadyExistsError("class already registered: " + desc.name);
  }
  if (by_name_.contains(desc.name)) {
    return AlreadyExistsError("class name already registered: " + desc.name);
  }
  const ClassId clsid = desc.clsid;
  by_name_.emplace(desc.name, clsid);
  classes_.emplace(clsid, std::move(desc));
  return Status::Ok();
}

const ClassDesc* ClassRegistry::Lookup(const ClassId& clsid) const {
  auto it = classes_.find(clsid);
  return it == classes_.end() ? nullptr : &it->second;
}

const ClassDesc* ClassRegistry::LookupByName(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : Lookup(it->second);
}

std::vector<const ClassDesc*> ClassRegistry::All() const {
  std::vector<const ClassDesc*> out;
  out.reserve(classes_.size());
  for (const auto& [clsid, desc] : classes_) {
    out.push_back(&desc);
  }
  return out;
}

}  // namespace coign
