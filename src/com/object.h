// Component instances.
//
// A ComponentInstance is the unit the paper distributes: a refcounted object
// reached only through interfaces. Concrete components override Dispatch()
// — the binary-standard entry point through which every inter-component
// call flows (and at which Coign interposes).

#ifndef COIGN_SRC_COM_OBJECT_H_
#define COIGN_SRC_COM_OBJECT_H_

#include <cstdint>
#include <utility>

#include "src/com/message.h"
#include "src/com/types.h"
#include "src/support/status.h"

namespace coign {

class ObjectSystem;

class ComponentInstance {
 public:
  ComponentInstance() = default;
  ComponentInstance(const ComponentInstance&) = delete;
  ComponentInstance& operator=(const ComponentInstance&) = delete;
  virtual ~ComponentInstance() = default;

  uint32_t AddRef() { return ++ref_count_; }
  uint32_t Release() {
    const uint32_t remaining = --ref_count_;
    if (remaining == 0) {
      delete this;
    }
    return remaining;
  }

  InstanceId id() const { return id_; }
  const ClassId& clsid() const { return clsid_; }
  ObjectSystem* system() const { return system_; }

  // Handles a call on one of this component's interfaces. `out` is the
  // reply message ([out] parameters); it is empty on entry.
  virtual Status Dispatch(const InterfaceId& iid, MethodIndex method,
                          const Message& in, Message* out) = 0;

 private:
  friend class ObjectSystem;
  void Bind(ObjectSystem* system, InstanceId id, const ClassId& clsid) {
    system_ = system;
    id_ = id;
    clsid_ = clsid;
  }

  uint32_t ref_count_ = 1;
  InstanceId id_ = kNoInstance;
  ClassId clsid_;
  ObjectSystem* system_ = nullptr;
};

// Intrusive smart pointer for ComponentInstance-derived types.
template <typename T>
class RefPtr {
 public:
  RefPtr() = default;
  // Adopts an existing reference (does not AddRef).
  static RefPtr Adopt(T* ptr) {
    RefPtr out;
    out.ptr_ = ptr;
    return out;
  }

  RefPtr(const RefPtr& other) : ptr_(other.ptr_) {
    if (ptr_ != nullptr) {
      ptr_->AddRef();
    }
  }
  RefPtr(RefPtr&& other) noexcept : ptr_(std::exchange(other.ptr_, nullptr)) {}
  RefPtr& operator=(RefPtr other) noexcept {
    std::swap(ptr_, other.ptr_);
    return *this;
  }
  ~RefPtr() {
    if (ptr_ != nullptr) {
      ptr_->Release();
    }
  }

  T* get() const { return ptr_; }
  T* operator->() const { return ptr_; }
  T& operator*() const { return *ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }

  // Releases ownership without dropping the reference.
  T* Detach() { return std::exchange(ptr_, nullptr); }

 private:
  T* ptr_ = nullptr;
};

// Creates a component with an initial reference.
template <typename T, typename... Args>
RefPtr<T> MakeComponent(Args&&... args) {
  return RefPtr<T>::Adopt(new T(std::forward<Args>(args)...));
}

}  // namespace coign

#endif  // COIGN_SRC_COM_OBJECT_H_
