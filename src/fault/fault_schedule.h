// Declarative fault schedules for the simulated network.
//
// A FaultSchedule is a list of timed fault episodes over the run's
// simulated clock — latency spikes, bandwidth collapses, loss/duplication/
// reorder bursts, correlated Gilbert-Elliott loss regimes, transient
// partitions, and crash-restart of one machine — plus steady background
// loss rates. Episodes can target one machine and, within that, a single
// traffic direction (toward or away from it), so loss can be asymmetric
// the way real congested links are. Schedules are data: built explicitly
// from episodes, or generated from a seeded Rng so that an entire hostile
// scenario replays bit-for-bit from one integer. The FaultInjector
// (src/fault/injector) interprets a schedule against live traffic.

#ifndef COIGN_SRC_FAULT_FAULT_SCHEDULE_H_
#define COIGN_SRC_FAULT_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/com/types.h"
#include "src/support/rng.h"

namespace coign {

// Episode target: a specific machine, or all cross-machine traffic.
inline constexpr MachineId kAnyMachine = -1;

enum class FaultKind {
  kDropBurst,      // magnitude = drop probability during the episode.
  kDuplicateBurst, // magnitude = duplication probability.
  kReorderBurst,   // magnitude = reorder probability.
  kLatencySpike,   // magnitude = multiplier on the per-message time.
  kBandwidthDrop,  // magnitude = multiplier on the per-byte time.
  kPartition,      // traffic touching `machine` (or all) is undeliverable.
  kCrashRestart,   // machine is down; magnitude = restart penalty seconds.
  kGilbertElliott, // correlated two-state loss; params in `gilbert`.
  kCorruptBurst,   // payload bit flips, bursty via a Gilbert-Elliott chain:
                   // `gilbert` gates the good/bad alternation, loss_good /
                   // loss_bad are the per-attempt corrupt probabilities,
                   // magnitude mirrors loss_bad. Direction targeting picks
                   // which leg (request or reply) gets damaged.
};

std::string_view FaultKindName(FaultKind kind);

// Which traffic a machine-targeted episode covers. Only meaningful when
// the episode names a machine; kAnyMachine episodes always hit both ways.
enum class FaultDirection {
  kBoth,    // Any attempt touching the machine.
  kInbound, // Only attempts delivering *to* the machine (dst == machine).
  kOutbound,// Only attempts leaving the machine (src == machine).
};

// Gilbert-Elliott two-state loss chain: the wire alternates between a
// good state (rare loss) and a bad state (heavy loss); state transitions
// are drawn once per delivery attempt the episode covers, so loss is
// bursty and correlated rather than i.i.d. Each covered traffic
// direction advances its own chain, which is what makes a single episode
// asymmetric in practice even before direction targeting.
struct GilbertElliottParams {
  double p_good_to_bad = 0.05;
  double p_bad_to_good = 0.3;
  double loss_good = 0.01;
  double loss_bad = 0.6;
};

struct FaultEpisode {
  FaultKind kind = FaultKind::kDropBurst;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  // Machine the episode targets (partitions/crashes); kAnyMachine hits all
  // cross-machine traffic.
  MachineId machine = kAnyMachine;
  // Probability for bursts, time multiplier for spikes, restart-penalty
  // seconds for crashes. For Gilbert-Elliott episodes this mirrors
  // `gilbert.loss_bad` so "strongest episode" comparisons stay meaningful.
  double magnitude = 1.0;
  // Direction filter for machine-targeted episodes (ignored otherwise).
  FaultDirection direction = FaultDirection::kBoth;
  // Chain parameters, used only by kGilbertElliott episodes.
  GilbertElliottParams gilbert;

  double end_seconds() const { return start_seconds + duration_seconds; }
  bool ActiveAt(double now) const {
    return now >= start_seconds && now < end_seconds();
  }
  // Whether traffic between src and dst is in this episode's blast radius.
  bool Covers(MachineId src, MachineId dst) const {
    if (machine == kAnyMachine) {
      return true;
    }
    if (machine != src && machine != dst) {
      return false;
    }
    switch (direction) {
      case FaultDirection::kBoth:
        return true;
      case FaultDirection::kInbound:
        return dst == machine;
      case FaultDirection::kOutbound:
        return src == machine;
    }
    return true;
  }
  std::string ToString() const;
};

// Steady, schedule-independent per-attempt fault probabilities — the
// background lossiness of the wire, active outside any episode too.
struct FaultRates {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
};

// Knobs for seeded random schedule generation.
struct RandomFaultOptions {
  double horizon_seconds = 10.0;
  // Mean episode count per enabled kind (uniform on [0, 2*mean]).
  double episodes_per_kind = 1.0;
  // Episode lengths are Exponential(mean), clamped to a quarter horizon.
  double mean_duration_seconds = 0.5;
  // Magnitude ranges.
  double drop_burst_max = 0.4;
  double duplicate_burst_max = 0.25;
  double reorder_burst_max = 0.25;
  double latency_spike_max = 8.0;
  double bandwidth_drop_max = 6.0;
  double restart_penalty_seconds = 0.2;
  bool include_partitions = true;
  bool include_crashes = true;
  // Gilbert-Elliott episodes (drawn after every legacy kind so older
  // seeds keep their episode prefix).
  bool include_gilbert_elliott = true;
  double ge_p_good_to_bad_max = 0.25;
  double ge_p_bad_to_good_max = 0.5;
  double ge_loss_bad_max = 0.8;
  // Probability that a drawn drop/GE/latency episode targets one machine
  // in one direction instead of all traffic symmetrically.
  double asymmetric_probability = 0.35;
  // Payload-corruption bursts (drawn after every older kind, same
  // seed-prefix rule as Gilbert-Elliott above).
  bool include_corrupt_bursts = true;
  double corrupt_burst_max = 0.6;
};

// A deterministic crash-storm: alternating crash-restart episodes on both
// machines, a horizon-spanning asymmetric Gilbert-Elliott loss regime,
// and a mid-run partition — the schedule migrations must survive.
struct CrashStormOptions {
  double horizon_seconds = 10.0;
  int crash_count = 6;
  // Each crash lasts this fraction of the horizon.
  double crash_duration_fraction = 0.05;
  double restart_penalty_seconds = 0.2;
  bool include_gilbert_elliott = true;
  bool include_partition = true;
  // > 0 adds per-direction payload-corruption regimes over the middle of
  // the horizon (bad-state corrupt probability; links heal before the
  // run ends, so breaker re-promotion is observable). 0 = no corruption,
  // which keeps legacy storm runs byte-identical.
  double corruption_rate = 0.0;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  static FaultSchedule FromEpisodes(std::vector<FaultEpisode> episodes);
  // Generates a schedule from a seeded stream: same seed, same schedule.
  static FaultSchedule Random(const RandomFaultOptions& options, uint64_t seed);
  // Generates a crash-storm schedule (see CrashStormOptions).
  static FaultSchedule CrashStorm(const CrashStormOptions& options, uint64_t seed);

  const std::vector<FaultEpisode>& episodes() const { return episodes_; }
  bool empty() const { return episodes_.empty(); }

  // The strongest active episode of `kind` covering src->dst traffic at
  // `now`, or null. "Strongest" = largest magnitude, so overlapping spikes
  // degrade to the worst one rather than compounding unboundedly.
  const FaultEpisode* ActiveEpisode(FaultKind kind, double now, MachineId src,
                                    MachineId dst) const;
  // Any episode of any kind active at `now` (regardless of machines).
  bool AnyActiveAt(double now) const;
  // When the last episode ends (0 for an empty schedule).
  double HorizonSeconds() const;

  std::string ToString() const;

 private:
  std::vector<FaultEpisode> episodes_;  // Sorted by start time.
};

}  // namespace coign

#endif  // COIGN_SRC_FAULT_FAULT_SCHEDULE_H_
