// Declarative fault schedules for the simulated network.
//
// A FaultSchedule is a list of timed fault episodes over the run's
// simulated clock — latency spikes, bandwidth collapses, loss/duplication/
// reorder bursts, transient partitions, and crash-restart of one machine —
// plus steady background loss rates. Schedules are data: built explicitly
// from episodes, or generated from a seeded Rng so that an entire hostile
// scenario replays bit-for-bit from one integer. The FaultInjector
// (src/fault/injector) interprets a schedule against live traffic.

#ifndef COIGN_SRC_FAULT_FAULT_SCHEDULE_H_
#define COIGN_SRC_FAULT_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/com/types.h"
#include "src/support/rng.h"

namespace coign {

// Episode target: a specific machine, or all cross-machine traffic.
inline constexpr MachineId kAnyMachine = -1;

enum class FaultKind {
  kDropBurst,      // magnitude = drop probability during the episode.
  kDuplicateBurst, // magnitude = duplication probability.
  kReorderBurst,   // magnitude = reorder probability.
  kLatencySpike,   // magnitude = multiplier on the per-message time.
  kBandwidthDrop,  // magnitude = multiplier on the per-byte time.
  kPartition,      // traffic touching `machine` (or all) is undeliverable.
  kCrashRestart,   // machine is down; magnitude = restart penalty seconds.
};

std::string_view FaultKindName(FaultKind kind);

struct FaultEpisode {
  FaultKind kind = FaultKind::kDropBurst;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  // Machine the episode targets (partitions/crashes); kAnyMachine hits all
  // cross-machine traffic.
  MachineId machine = kAnyMachine;
  // Probability for bursts, time multiplier for spikes, restart-penalty
  // seconds for crashes.
  double magnitude = 1.0;

  double end_seconds() const { return start_seconds + duration_seconds; }
  bool ActiveAt(double now) const {
    return now >= start_seconds && now < end_seconds();
  }
  // Whether traffic between src and dst is in this episode's blast radius.
  bool Covers(MachineId src, MachineId dst) const {
    return machine == kAnyMachine || machine == src || machine == dst;
  }
  std::string ToString() const;
};

// Steady, schedule-independent per-attempt fault probabilities — the
// background lossiness of the wire, active outside any episode too.
struct FaultRates {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
};

// Knobs for seeded random schedule generation.
struct RandomFaultOptions {
  double horizon_seconds = 10.0;
  // Mean episode count per enabled kind (uniform on [0, 2*mean]).
  double episodes_per_kind = 1.0;
  // Episode lengths are Exponential(mean), clamped to a quarter horizon.
  double mean_duration_seconds = 0.5;
  // Magnitude ranges.
  double drop_burst_max = 0.4;
  double duplicate_burst_max = 0.25;
  double reorder_burst_max = 0.25;
  double latency_spike_max = 8.0;
  double bandwidth_drop_max = 6.0;
  double restart_penalty_seconds = 0.2;
  bool include_partitions = true;
  bool include_crashes = true;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  static FaultSchedule FromEpisodes(std::vector<FaultEpisode> episodes);
  // Generates a schedule from a seeded stream: same seed, same schedule.
  static FaultSchedule Random(const RandomFaultOptions& options, uint64_t seed);

  const std::vector<FaultEpisode>& episodes() const { return episodes_; }
  bool empty() const { return episodes_.empty(); }

  // The strongest active episode of `kind` covering src->dst traffic at
  // `now`, or null. "Strongest" = largest magnitude, so overlapping spikes
  // degrade to the worst one rather than compounding unboundedly.
  const FaultEpisode* ActiveEpisode(FaultKind kind, double now, MachineId src,
                                    MachineId dst) const;
  // Any episode of any kind active at `now` (regardless of machines).
  bool AnyActiveAt(double now) const;
  // When the last episode ends (0 for an empty schedule).
  double HorizonSeconds() const;

  std::string ToString() const;

 private:
  std::vector<FaultEpisode> episodes_;  // Sorted by start time.
};

}  // namespace coign

#endif  // COIGN_SRC_FAULT_FAULT_SCHEDULE_H_
