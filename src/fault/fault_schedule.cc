#include "src/fault/fault_schedule.h"

#include <algorithm>

#include "src/support/str_util.h"

namespace coign {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropBurst:
      return "drop-burst";
    case FaultKind::kDuplicateBurst:
      return "duplicate-burst";
    case FaultKind::kReorderBurst:
      return "reorder-burst";
    case FaultKind::kLatencySpike:
      return "latency-spike";
    case FaultKind::kBandwidthDrop:
      return "bandwidth-drop";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kCrashRestart:
      return "crash-restart";
    case FaultKind::kGilbertElliott:
      return "gilbert-elliott";
    case FaultKind::kCorruptBurst:
      return "corrupt-burst";
  }
  return "unknown";
}

std::string FaultEpisode::ToString() const {
  std::string target =
      machine == kAnyMachine ? std::string("*") : StrFormat("m%d", machine);
  if (machine != kAnyMachine && direction != FaultDirection::kBoth) {
    target += direction == FaultDirection::kInbound ? "<-" : "->";
  }
  std::string out =
      StrFormat("%s[%s] %.3fs..%.3fs x%.3f", std::string(FaultKindName(kind)).c_str(),
                target.c_str(), start_seconds, end_seconds(), magnitude);
  if (kind == FaultKind::kGilbertElliott || kind == FaultKind::kCorruptBurst) {
    out += StrFormat(" ge{p01=%.3f, p10=%.3f, loss=%.3f/%.3f}", gilbert.p_good_to_bad,
                     gilbert.p_bad_to_good, gilbert.loss_good, gilbert.loss_bad);
  }
  return out;
}

FaultSchedule FaultSchedule::FromEpisodes(std::vector<FaultEpisode> episodes) {
  FaultSchedule schedule;
  schedule.episodes_ = std::move(episodes);
  std::sort(schedule.episodes_.begin(), schedule.episodes_.end(),
            [](const FaultEpisode& a, const FaultEpisode& b) {
              return a.start_seconds < b.start_seconds;
            });
  return schedule;
}

namespace {

// With probability `p`, point the episode at one machine in one direction.
void MaybeAsymmetric(FaultEpisode& episode, double p, Rng& rng) {
  if (p <= 0.0 || !rng.Bernoulli(p)) {
    return;
  }
  episode.machine = rng.Bernoulli(0.5) ? kServerMachine : kClientMachine;
  episode.direction =
      rng.Bernoulli(0.5) ? FaultDirection::kInbound : FaultDirection::kOutbound;
}

// Draws one episode of `kind` somewhere inside the horizon.
FaultEpisode DrawEpisode(FaultKind kind, const RandomFaultOptions& options, Rng& rng) {
  FaultEpisode episode;
  episode.kind = kind;
  episode.start_seconds = rng.UniformDouble(0.0, options.horizon_seconds);
  episode.duration_seconds = std::min(rng.Exponential(options.mean_duration_seconds),
                                      options.horizon_seconds * 0.25);
  switch (kind) {
    case FaultKind::kDropBurst:
      episode.magnitude = rng.UniformDouble(0.05, options.drop_burst_max);
      break;
    case FaultKind::kDuplicateBurst:
      episode.magnitude = rng.UniformDouble(0.05, options.duplicate_burst_max);
      break;
    case FaultKind::kReorderBurst:
      episode.magnitude = rng.UniformDouble(0.05, options.reorder_burst_max);
      break;
    case FaultKind::kLatencySpike:
      episode.magnitude = rng.UniformDouble(2.0, options.latency_spike_max);
      break;
    case FaultKind::kBandwidthDrop:
      episode.magnitude = rng.UniformDouble(2.0, options.bandwidth_drop_max);
      break;
    case FaultKind::kPartition:
      episode.magnitude = 1.0;
      episode.machine = rng.Bernoulli(0.5)
                            ? kAnyMachine
                            : (rng.Bernoulli(0.5) ? kServerMachine : kClientMachine);
      break;
    case FaultKind::kCrashRestart:
      episode.magnitude = options.restart_penalty_seconds;
      episode.machine = rng.Bernoulli(0.5) ? kServerMachine : kClientMachine;
      break;
    case FaultKind::kGilbertElliott:
      episode.gilbert.p_good_to_bad = rng.UniformDouble(0.01, options.ge_p_good_to_bad_max);
      episode.gilbert.p_bad_to_good = rng.UniformDouble(0.05, options.ge_p_bad_to_good_max);
      episode.gilbert.loss_good = rng.UniformDouble(0.0, 0.05);
      episode.gilbert.loss_bad = rng.UniformDouble(0.2, options.ge_loss_bad_max);
      episode.magnitude = episode.gilbert.loss_bad;
      MaybeAsymmetric(episode, options.asymmetric_probability, rng);
      break;
    case FaultKind::kCorruptBurst:
      // Same bursty chain as Gilbert-Elliott, but the bad state flips
      // payload bits instead of losing messages (the good state is clean).
      episode.gilbert.p_good_to_bad = rng.UniformDouble(0.01, options.ge_p_good_to_bad_max);
      episode.gilbert.p_bad_to_good = rng.UniformDouble(0.05, options.ge_p_bad_to_good_max);
      episode.gilbert.loss_good = 0.0;
      episode.gilbert.loss_bad = rng.UniformDouble(0.1, options.corrupt_burst_max);
      episode.magnitude = episode.gilbert.loss_bad;
      MaybeAsymmetric(episode, options.asymmetric_probability, rng);
      break;
  }
  return episode;
}

}  // namespace

FaultSchedule FaultSchedule::Random(const RandomFaultOptions& options, uint64_t seed) {
  Rng rng(seed);
  std::vector<FaultEpisode> episodes;
  const auto draw_kind = [&](FaultKind kind) {
    const int64_t cap = static_cast<int64_t>(2.0 * options.episodes_per_kind);
    const int64_t count = cap <= 0 ? 0 : rng.UniformInt(0, cap);
    for (int64_t i = 0; i < count; ++i) {
      episodes.push_back(DrawEpisode(kind, options, rng));
    }
  };
  draw_kind(FaultKind::kDropBurst);
  draw_kind(FaultKind::kDuplicateBurst);
  draw_kind(FaultKind::kReorderBurst);
  draw_kind(FaultKind::kLatencySpike);
  draw_kind(FaultKind::kBandwidthDrop);
  if (options.include_partitions) {
    draw_kind(FaultKind::kPartition);
  }
  if (options.include_crashes) {
    draw_kind(FaultKind::kCrashRestart);
  }
  // New kinds draw after every legacy kind: a given seed's schedule keeps
  // its old episodes as a prefix and only gains episodes at the tail.
  if (options.include_gilbert_elliott) {
    draw_kind(FaultKind::kGilbertElliott);
  }
  if (options.asymmetric_probability > 0.0) {
    // Direction-targeted drop bursts on top of the symmetric population.
    const int64_t cap = static_cast<int64_t>(2.0 * options.episodes_per_kind);
    const int64_t count = cap <= 0 ? 0 : rng.UniformInt(0, cap);
    for (int64_t i = 0; i < count; ++i) {
      FaultEpisode episode = DrawEpisode(FaultKind::kDropBurst, options, rng);
      MaybeAsymmetric(episode, 1.0, rng);
      episodes.push_back(episode);
    }
  }
  // Corruption draws last — after the asymmetric drop block — so every
  // older seed's episode prefix survives unchanged.
  if (options.include_corrupt_bursts) {
    draw_kind(FaultKind::kCorruptBurst);
  }
  return FromEpisodes(std::move(episodes));
}

FaultSchedule FaultSchedule::CrashStorm(const CrashStormOptions& options, uint64_t seed) {
  Rng rng(seed);
  std::vector<FaultEpisode> episodes;
  const double horizon = options.horizon_seconds;
  const double crash_len = horizon * options.crash_duration_fraction;
  for (int i = 0; i < options.crash_count; ++i) {
    FaultEpisode crash;
    crash.kind = FaultKind::kCrashRestart;
    // Evenly spread with a jittered offset, alternating victims, so
    // crashes land across the whole run rather than clumping at one end.
    const double slot = horizon / (options.crash_count + 1);
    crash.start_seconds = slot * (i + 1) + rng.UniformDouble(-0.3, 0.3) * slot;
    crash.start_seconds = std::clamp(crash.start_seconds, 0.0, horizon - crash_len);
    crash.duration_seconds = crash_len;
    crash.machine = (i % 2 == 0) ? kServerMachine : kClientMachine;
    crash.magnitude = options.restart_penalty_seconds;
    episodes.push_back(crash);
  }
  if (options.include_gilbert_elliott) {
    // One bursty loss regime per direction, each with its own chain odds:
    // the server-bound path degrades harder than the client-bound path.
    FaultEpisode toward_server;
    toward_server.kind = FaultKind::kGilbertElliott;
    toward_server.start_seconds = 0.0;
    toward_server.duration_seconds = horizon;
    toward_server.machine = kServerMachine;
    toward_server.direction = FaultDirection::kInbound;
    toward_server.gilbert = {0.12, 0.25, 0.01, 0.6};
    toward_server.magnitude = toward_server.gilbert.loss_bad;
    episodes.push_back(toward_server);

    FaultEpisode toward_client;
    toward_client.kind = FaultKind::kGilbertElliott;
    toward_client.start_seconds = 0.0;
    toward_client.duration_seconds = horizon;
    toward_client.machine = kClientMachine;
    toward_client.direction = FaultDirection::kInbound;
    toward_client.gilbert = {0.05, 0.4, 0.005, 0.35};
    toward_client.magnitude = toward_client.gilbert.loss_bad;
    episodes.push_back(toward_client);
  }
  if (options.include_partition) {
    FaultEpisode partition;
    partition.kind = FaultKind::kPartition;
    partition.start_seconds = horizon * rng.UniformDouble(0.4, 0.6);
    partition.duration_seconds = horizon * 0.04;
    partition.machine = kAnyMachine;
    episodes.push_back(partition);
  }
  if (options.corruption_rate > 0.0) {
    // Per-direction corruption regimes over the middle of the horizon —
    // the server-bound leg corrupts at the full rate, the client-bound
    // leg lighter — leaving clean head and tail stretches so the circuit
    // breaker's open and re-promote transitions both happen inside the run.
    FaultEpisode toward_server;
    toward_server.kind = FaultKind::kCorruptBurst;
    toward_server.start_seconds = horizon * 0.25;
    toward_server.duration_seconds = horizon * 0.45;
    toward_server.machine = kServerMachine;
    toward_server.direction = FaultDirection::kInbound;
    toward_server.gilbert = {0.2, 0.15, 0.0, options.corruption_rate};
    toward_server.magnitude = toward_server.gilbert.loss_bad;
    episodes.push_back(toward_server);

    FaultEpisode toward_client;
    toward_client.kind = FaultKind::kCorruptBurst;
    toward_client.start_seconds = horizon * 0.3;
    toward_client.duration_seconds = horizon * 0.35;
    toward_client.machine = kClientMachine;
    toward_client.direction = FaultDirection::kInbound;
    toward_client.gilbert = {0.1, 0.3, 0.0, options.corruption_rate * 0.6};
    toward_client.magnitude = toward_client.gilbert.loss_bad;
    episodes.push_back(toward_client);
  }
  return FromEpisodes(std::move(episodes));
}

const FaultEpisode* FaultSchedule::ActiveEpisode(FaultKind kind, double now, MachineId src,
                                                 MachineId dst) const {
  const FaultEpisode* best = nullptr;
  for (const FaultEpisode& episode : episodes_) {
    if (episode.kind != kind || !episode.ActiveAt(now) || !episode.Covers(src, dst)) {
      continue;
    }
    if (best == nullptr || episode.magnitude > best->magnitude) {
      best = &episode;
    }
  }
  return best;
}

bool FaultSchedule::AnyActiveAt(double now) const {
  for (const FaultEpisode& episode : episodes_) {
    if (episode.ActiveAt(now)) {
      return true;
    }
  }
  return false;
}

double FaultSchedule::HorizonSeconds() const {
  double horizon = 0.0;
  for (const FaultEpisode& episode : episodes_) {
    horizon = std::max(horizon, episode.end_seconds());
  }
  return horizon;
}

std::string FaultSchedule::ToString() const {
  if (episodes_.empty()) {
    return "fault-schedule{}";
  }
  std::string out = "fault-schedule{";
  for (size_t i = 0; i < episodes_.size(); ++i) {
    if (i > 0) {
      out += "; ";
    }
    out += episodes_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace coign
