#include "src/fault/fault_schedule.h"

#include <algorithm>

#include "src/support/str_util.h"

namespace coign {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropBurst:
      return "drop-burst";
    case FaultKind::kDuplicateBurst:
      return "duplicate-burst";
    case FaultKind::kReorderBurst:
      return "reorder-burst";
    case FaultKind::kLatencySpike:
      return "latency-spike";
    case FaultKind::kBandwidthDrop:
      return "bandwidth-drop";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kCrashRestart:
      return "crash-restart";
  }
  return "unknown";
}

std::string FaultEpisode::ToString() const {
  const std::string target =
      machine == kAnyMachine ? std::string("*") : StrFormat("m%d", machine);
  return StrFormat("%s[%s] %.3fs..%.3fs x%.3f", std::string(FaultKindName(kind)).c_str(),
                   target.c_str(), start_seconds, end_seconds(), magnitude);
}

FaultSchedule FaultSchedule::FromEpisodes(std::vector<FaultEpisode> episodes) {
  FaultSchedule schedule;
  schedule.episodes_ = std::move(episodes);
  std::sort(schedule.episodes_.begin(), schedule.episodes_.end(),
            [](const FaultEpisode& a, const FaultEpisode& b) {
              return a.start_seconds < b.start_seconds;
            });
  return schedule;
}

namespace {

// Draws one episode of `kind` somewhere inside the horizon.
FaultEpisode DrawEpisode(FaultKind kind, const RandomFaultOptions& options, Rng& rng) {
  FaultEpisode episode;
  episode.kind = kind;
  episode.start_seconds = rng.UniformDouble(0.0, options.horizon_seconds);
  episode.duration_seconds = std::min(rng.Exponential(options.mean_duration_seconds),
                                      options.horizon_seconds * 0.25);
  switch (kind) {
    case FaultKind::kDropBurst:
      episode.magnitude = rng.UniformDouble(0.05, options.drop_burst_max);
      break;
    case FaultKind::kDuplicateBurst:
      episode.magnitude = rng.UniformDouble(0.05, options.duplicate_burst_max);
      break;
    case FaultKind::kReorderBurst:
      episode.magnitude = rng.UniformDouble(0.05, options.reorder_burst_max);
      break;
    case FaultKind::kLatencySpike:
      episode.magnitude = rng.UniformDouble(2.0, options.latency_spike_max);
      break;
    case FaultKind::kBandwidthDrop:
      episode.magnitude = rng.UniformDouble(2.0, options.bandwidth_drop_max);
      break;
    case FaultKind::kPartition:
      episode.magnitude = 1.0;
      episode.machine = rng.Bernoulli(0.5)
                            ? kAnyMachine
                            : (rng.Bernoulli(0.5) ? kServerMachine : kClientMachine);
      break;
    case FaultKind::kCrashRestart:
      episode.magnitude = options.restart_penalty_seconds;
      episode.machine = rng.Bernoulli(0.5) ? kServerMachine : kClientMachine;
      break;
  }
  return episode;
}

}  // namespace

FaultSchedule FaultSchedule::Random(const RandomFaultOptions& options, uint64_t seed) {
  Rng rng(seed);
  std::vector<FaultEpisode> episodes;
  const auto draw_kind = [&](FaultKind kind) {
    const int64_t cap = static_cast<int64_t>(2.0 * options.episodes_per_kind);
    const int64_t count = cap <= 0 ? 0 : rng.UniformInt(0, cap);
    for (int64_t i = 0; i < count; ++i) {
      episodes.push_back(DrawEpisode(kind, options, rng));
    }
  };
  draw_kind(FaultKind::kDropBurst);
  draw_kind(FaultKind::kDuplicateBurst);
  draw_kind(FaultKind::kReorderBurst);
  draw_kind(FaultKind::kLatencySpike);
  draw_kind(FaultKind::kBandwidthDrop);
  if (options.include_partitions) {
    draw_kind(FaultKind::kPartition);
  }
  if (options.include_crashes) {
    draw_kind(FaultKind::kCrashRestart);
  }
  return FromEpisodes(std::move(episodes));
}

const FaultEpisode* FaultSchedule::ActiveEpisode(FaultKind kind, double now, MachineId src,
                                                 MachineId dst) const {
  const FaultEpisode* best = nullptr;
  for (const FaultEpisode& episode : episodes_) {
    if (episode.kind != kind || !episode.ActiveAt(now) || !episode.Covers(src, dst)) {
      continue;
    }
    if (best == nullptr || episode.magnitude > best->magnitude) {
      best = &episode;
    }
  }
  return best;
}

bool FaultSchedule::AnyActiveAt(double now) const {
  for (const FaultEpisode& episode : episodes_) {
    if (episode.ActiveAt(now)) {
      return true;
    }
  }
  return false;
}

double FaultSchedule::HorizonSeconds() const {
  double horizon = 0.0;
  for (const FaultEpisode& episode : episodes_) {
    horizon = std::max(horizon, episode.end_seconds());
  }
  return horizon;
}

std::string FaultSchedule::ToString() const {
  if (episodes_.empty()) {
    return "fault-schedule{}";
  }
  std::string out = "fault-schedule{";
  for (size_t i = 0; i < episodes_.size(); ++i) {
    if (i > 0) {
      out += "; ";
    }
    out += episodes_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace coign
