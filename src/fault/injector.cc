#include "src/fault/injector.h"

#include <algorithm>

#include "src/support/str_util.h"

namespace coign {

std::string FaultStats::ToString() const {
  return StrFormat(
      "faults{attempts=%llu, drops=%llu, ge_drops=%llu, reply_drops=%llu, dups=%llu, "
      "reorders=%llu, lat_spiked=%llu, bw_limited=%llu, partition_drops=%llu, "
      "crash_drops=%llu, voided_inflight=%llu, restarts=%llu, corruptions=%llu}",
      static_cast<unsigned long long>(attempts), static_cast<unsigned long long>(drops),
      static_cast<unsigned long long>(ge_drops),
      static_cast<unsigned long long>(reply_drops),
      static_cast<unsigned long long>(duplicates),
      static_cast<unsigned long long>(reorders),
      static_cast<unsigned long long>(latency_spiked),
      static_cast<unsigned long long>(bandwidth_limited),
      static_cast<unsigned long long>(partition_drops),
      static_cast<unsigned long long>(crash_drops),
      static_cast<unsigned long long>(voided_inflight),
      static_cast<unsigned long long>(restart_penalties),
      static_cast<unsigned long long>(corruptions));
}

RetryPolicy SuggestedRetryPolicy(const NetworkModel& model) {
  const double round_trip = 2.0 * model.per_message_seconds;
  RetryPolicy policy;
  policy.timeout_seconds = 4.0 * round_trip;
  policy.max_attempts = 4;
  policy.backoff_initial_seconds = round_trip;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_seconds = 8.0 * round_trip;
  policy.backoff_jitter = 0.2;
  return policy;
}

void FaultInjector::AdvanceClock(double seconds) {
  if (seconds > 0.0) {
    now_seconds_ += seconds;
    if (obs_ != nullptr) {
      ObserveEpisodeTransitions();
    }
  }
}

void FaultInjector::SetObservability(Observability* obs) {
  obs_ = obs;
  episode_was_active_.assign(schedule_.episodes().size(), false);
  if (obs_ != nullptr) {
    ObserveEpisodeTransitions();
  }
}

void FaultInjector::ObserveEpisodeTransitions() {
  const std::vector<FaultEpisode>& episodes = schedule_.episodes();
  for (size_t i = 0; i < episodes.size(); ++i) {
    const FaultEpisode& episode = episodes[i];
    const bool active = episode.ActiveAt(now_seconds_);
    if (active == static_cast<bool>(episode_was_active_[i])) {
      continue;
    }
    episode_was_active_[i] = active;
    const std::string kind(FaultKindName(episode.kind));
    if (active) {
      obs_->metrics().GetCounter("fault.episode_onsets." + kind)->Add();
    }
    obs_->tracer().Instant(
        active ? "episode-onset" : "episode-offset", "fault", kTrackFault,
        {{"kind", Tracer::ArgString(kind)},
         {"episode", Tracer::ArgUint(i)},
         {"machine", Tracer::ArgInt(episode.machine)},
         {"magnitude", Tracer::ArgDouble(episode.magnitude)},
         {"start_s", Tracer::ArgDouble(episode.start_seconds)},
         {"end_s", Tracer::ArgDouble(episode.end_seconds())}});
  }
}

AttemptPlan FaultInjector::OnAttempt(MachineId src, MachineId dst, uint64_t request_bytes,
                                     uint64_t reply_bytes, double expected_seconds) {
  (void)request_bytes;
  (void)reply_bytes;
  AttemptPlan plan;
  ++stats_.attempts;

  // Crash-restart: the machine is down for the episode; remember to charge
  // the restart penalty on the first delivery once it is back.
  for (const FaultEpisode& episode : schedule_.episodes()) {
    if (episode.kind != FaultKind::kCrashRestart || !episode.Covers(src, dst)) {
      continue;
    }
    if (episode.ActiveAt(now_seconds_)) {
      pending_restart_[episode.machine] =
          std::max(pending_restart_[episode.machine], episode.magnitude);
      ++stats_.crash_drops;
      plan.delivered = false;
      return plan;
    }
  }

  if (schedule_.ActiveEpisode(FaultKind::kPartition, now_seconds_, src, dst) != nullptr) {
    ++stats_.partition_drops;
    plan.delivered = false;
    return plan;
  }

  double drop_p = background_.drop;
  if (const FaultEpisode* burst =
          schedule_.ActiveEpisode(FaultKind::kDropBurst, now_seconds_, src, dst)) {
    drop_p = std::min(1.0, drop_p + burst->magnitude);
  }
  if (drop_p > 0.0 && rng_.Bernoulli(drop_p)) {
    ++stats_.drops;
    plan.delivered = false;
    // Either leg can be the lost one: a reply-leg loss means the request
    // reached the receiver and executed — the retry will be a duplicate.
    if (rng_.Bernoulli(0.5)) {
      plan.request_reached = true;
      ++stats_.reply_drops;
    }
    return plan;
  }

  // Gilbert-Elliott: the strongest active covering episode walks its
  // per-direction chain one step on every covered attempt, then loses the
  // attempt at the state's loss rate. Burstiness falls out of the chain:
  // consecutive attempts inside a bad stretch drop together.
  {
    const FaultEpisode* ge = nullptr;
    size_t ge_index = 0;
    const std::vector<FaultEpisode>& episodes = schedule_.episodes();
    for (size_t i = 0; i < episodes.size(); ++i) {
      const FaultEpisode& episode = episodes[i];
      if (episode.kind != FaultKind::kGilbertElliott ||
          !episode.ActiveAt(now_seconds_) || !episode.Covers(src, dst)) {
        continue;
      }
      if (ge == nullptr || episode.magnitude > ge->magnitude) {
        ge = &episode;
        ge_index = i;
      }
    }
    if (ge != nullptr) {
      bool& bad = ge_bad_[GeChainKey(ge_index, src, dst)];
      const double flip = bad ? ge->gilbert.p_bad_to_good : ge->gilbert.p_good_to_bad;
      if (rng_.Bernoulli(flip)) {
        bad = !bad;
      }
      const double loss = bad ? ge->gilbert.loss_bad : ge->gilbert.loss_good;
      if (loss > 0.0 && rng_.Bernoulli(loss)) {
        ++stats_.ge_drops;
        plan.delivered = false;
        if (rng_.Bernoulli(0.5)) {
          plan.request_reached = true;
          ++stats_.reply_drops;
        }
        return plan;
      }
    }
  }

  // Crash semantics for in-flight transfers: if a crash episode covering
  // this traffic *starts* while the round trip is on the wire, the
  // receiver dies holding un-acked state — the delivery is void and the
  // sender's copy is lost with it, not executed-but-unacked.
  if (expected_seconds > 0.0) {
    for (const FaultEpisode& episode : schedule_.episodes()) {
      if (episode.kind != FaultKind::kCrashRestart || !episode.Covers(src, dst)) {
        continue;
      }
      if (episode.start_seconds > now_seconds_ &&
          episode.start_seconds <= now_seconds_ + expected_seconds) {
        ++stats_.voided_inflight;
        plan.delivered = false;
        return plan;
      }
    }
  }

  // Delivered: recovering machines charge their restart penalty exactly once.
  for (auto it = pending_restart_.begin(); it != pending_restart_.end();) {
    FaultEpisode probe;
    probe.kind = FaultKind::kCrashRestart;
    probe.machine = it->first;
    if (probe.Covers(src, dst)) {
      plan.extra_seconds += it->second;
      ++stats_.restart_penalties;
      it = pending_restart_.erase(it);
    } else {
      ++it;
    }
  }

  double dup_p = background_.duplicate;
  if (const FaultEpisode* burst =
          schedule_.ActiveEpisode(FaultKind::kDuplicateBurst, now_seconds_, src, dst)) {
    dup_p = std::min(1.0, dup_p + burst->magnitude);
  }
  if (dup_p > 0.0 && rng_.Bernoulli(dup_p)) {
    plan.duplicated = true;
    ++stats_.duplicates;
  }

  double reorder_p = background_.reorder;
  if (const FaultEpisode* burst =
          schedule_.ActiveEpisode(FaultKind::kReorderBurst, now_seconds_, src, dst)) {
    reorder_p = std::min(1.0, reorder_p + burst->magnitude);
  }
  if (reorder_p > 0.0 && rng_.Bernoulli(reorder_p)) {
    plan.reordered = true;
    ++stats_.reorders;
  }

  // Payload corruption: the strongest active covering corrupt-burst walks
  // its own per-direction Gilbert-Elliott chain (same chain map as the
  // loss episodes — episode indices keep the keys disjoint), then flips
  // bits at the state's corrupt rate. Direction-targeted episodes damage
  // the leg that travels toward/away from the target machine; symmetric
  // episodes pick a leg by coin flip.
  {
    const FaultEpisode* corrupt = nullptr;
    size_t corrupt_index = 0;
    const std::vector<FaultEpisode>& episodes = schedule_.episodes();
    for (size_t i = 0; i < episodes.size(); ++i) {
      const FaultEpisode& episode = episodes[i];
      if (episode.kind != FaultKind::kCorruptBurst ||
          !episode.ActiveAt(now_seconds_) || !episode.Covers(src, dst)) {
        continue;
      }
      if (corrupt == nullptr || episode.magnitude > corrupt->magnitude) {
        corrupt = &episode;
        corrupt_index = i;
      }
    }
    if (corrupt != nullptr) {
      bool& bad = ge_bad_[GeChainKey(corrupt_index, src, dst)];
      const double flip =
          bad ? corrupt->gilbert.p_bad_to_good : corrupt->gilbert.p_good_to_bad;
      if (rng_.Bernoulli(flip)) {
        bad = !bad;
      }
      const double rate = bad ? corrupt->gilbert.loss_bad : corrupt->gilbert.loss_good;
      if (rate > 0.0 && rng_.Bernoulli(rate)) {
        bool hit_reply;
        if (corrupt->machine != kAnyMachine &&
            corrupt->direction == FaultDirection::kInbound) {
          // Damage lands on the leg arriving at the target: requests when
          // the target receives them, replies when it sent the request.
          hit_reply = corrupt->machine == src;
        } else if (corrupt->machine != kAnyMachine &&
                   corrupt->direction == FaultDirection::kOutbound) {
          hit_reply = corrupt->machine == dst;
        } else {
          hit_reply = rng_.Bernoulli(0.5);
        }
        if (hit_reply) {
          plan.corrupt_reply = true;
          ++stats_.corrupt_replies;
        } else {
          plan.corrupt_request = true;
        }
        ++stats_.corruptions;
      }
    }
  }

  if (const FaultEpisode* spike =
          schedule_.ActiveEpisode(FaultKind::kLatencySpike, now_seconds_, src, dst)) {
    plan.latency_scale = spike->magnitude;
    ++stats_.latency_spiked;
  }
  if (const FaultEpisode* drop =
          schedule_.ActiveEpisode(FaultKind::kBandwidthDrop, now_seconds_, src, dst)) {
    plan.bandwidth_scale = drop->magnitude;
    ++stats_.bandwidth_limited;
  }

  return plan;
}

}  // namespace coign
