// The deterministic fault injector: interprets a FaultSchedule (plus
// steady background loss rates) against live transport traffic.
//
// Implements the TransportFaultModel hook the hardened transport consults
// on every delivery attempt. All randomness comes from one seeded Rng and
// the clock advances only with modeled simulated time, so a whole chaos
// run — schedule, per-attempt coin flips, Gilbert-Elliott chain walks,
// backoff jitter — replays byte-for-byte from (schedule seed, injector
// seed). Crash-restart episodes make a machine unreachable for their
// duration, void deliveries the crash onset would have caught in flight
// (the un-acked transfer's state is lost with the machine), and charge
// the first delivery after recovery a restart penalty.

#ifndef COIGN_SRC_FAULT_INJECTOR_H_
#define COIGN_SRC_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/net/transport.h"
#include "src/obs/obs.h"
#include "src/support/rng.h"

namespace coign {

struct FaultStats {
  uint64_t attempts = 0;
  uint64_t drops = 0;            // Background + burst probability drops.
  uint64_t ge_drops = 0;         // Gilbert-Elliott chain drops.
  uint64_t reply_drops = 0;      // Drops where the request reached the receiver.
  uint64_t duplicates = 0;
  uint64_t reorders = 0;
  uint64_t latency_spiked = 0;   // Attempts delivered under a latency spike.
  uint64_t bandwidth_limited = 0;
  uint64_t partition_drops = 0;  // Attempts killed by a partition episode.
  uint64_t crash_drops = 0;      // Attempts killed by a crashed machine.
  uint64_t voided_inflight = 0;  // Deliveries voided by a crash starting mid-flight.
  uint64_t restart_penalties = 0;
  uint64_t corruptions = 0;      // Attempts whose payload got bit-flipped.
  uint64_t corrupt_replies = 0;  // Corruptions that hit the reply leg.

  uint64_t total_faulted() const {
    return drops + ge_drops + duplicates + reorders + latency_spiked +
           bandwidth_limited + partition_drops + crash_drops + voided_inflight +
           corruptions;
  }
  std::string ToString() const;
};

// A retry policy proportioned to a network model: timeouts a few null
// round trips long, backoff starting at one round trip. Keeps the cost
// of one masked drop a single-digit multiple of a healthy call on any of
// the preset networks, so steady background loss inflates the live
// latency estimate only mildly.
RetryPolicy SuggestedRetryPolicy(const NetworkModel& model);

class FaultInjector : public TransportFaultModel {
 public:
  FaultInjector(FaultSchedule schedule, FaultRates background, uint64_t seed)
      : schedule_(std::move(schedule)), background_(background), rng_(seed) {}

  const FaultSchedule& schedule() const { return schedule_; }
  const FaultStats& stats() const { return stats_; }
  double now_seconds() const { return now_seconds_; }
  // Whether any scheduled episode is active right now (ground truth; the
  // online layer must *detect* episodes from transport health instead).
  bool InEpisode() const { return schedule_.AnyActiveAt(now_seconds_); }

  // Emits an instant event per episode onset/offset (by kind) and per-kind
  // episode counters as the fault clock crosses episode boundaries. Reads
  // the schedule only — never the Rng — so traced runs replay identically.
  void SetObservability(Observability* obs);

  // --- TransportFaultModel --------------------------------------------------
  AttemptPlan OnAttempt(MachineId src, MachineId dst, uint64_t request_bytes,
                        uint64_t reply_bytes, double expected_seconds) override;
  void AdvanceClock(double seconds) override;
  double JitterUnit() override { return rng_.UniformDouble(); }

 private:
  // Chain key of one GE episode for one ordered traffic direction: each
  // (episode, src->dst) pair walks its own chain, which is what makes
  // loss per-direction asymmetric even under a symmetric episode.
  static uint64_t GeChainKey(size_t episode_index, MachineId src, MachineId dst) {
    return (static_cast<uint64_t>(episode_index) << 32) |
           (static_cast<uint64_t>(static_cast<uint16_t>(src)) << 16) |
           static_cast<uint64_t>(static_cast<uint16_t>(dst));
  }

  // Diffs each episode's ActiveAt against its last observed state and
  // records the transitions. Called whenever the fault clock moves.
  void ObserveEpisodeTransitions();

  FaultSchedule schedule_;
  FaultRates background_;
  Rng rng_;
  FaultStats stats_;
  double now_seconds_ = 0.0;
  Observability* obs_ = nullptr;  // Not owned.
  std::vector<bool> episode_was_active_;
  // Machines with a pending restart penalty (crash episode ended, first
  // delivery not yet charged).
  std::unordered_map<MachineId, double> pending_restart_;
  // Gilbert-Elliott chain states: true = bad state. Keyed per episode and
  // per ordered direction; only ever probed by key, so the unordered map
  // cannot perturb determinism.
  std::unordered_map<uint64_t, bool> ge_bad_;
};

}  // namespace coign

#endif  // COIGN_SRC_FAULT_INJECTOR_H_
