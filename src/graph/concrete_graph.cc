#include "src/graph/concrete_graph.h"

#include <algorithm>

namespace coign {

double EdgeSeconds(const AbstractIccGraph::Edge& edge, const NetworkProfile& network) {
  const double count = static_cast<double>(edge.messages.total_count());
  const double bytes = static_cast<double>(edge.messages.total_bytes());
  return count * network.per_message_seconds + bytes * network.seconds_per_byte;
}

void ConcreteGraph::AddEdge(int a, int b, double seconds, bool constraint) {
  if (a == b) {
    return;
  }
  edges_.push_back(ConcreteEdge{a, b, seconds, constraint});
}

Result<int> ConcreteGraph::IndexOf(ClassificationId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return NotFoundError("classification not in concrete graph");
  }
  return it->second;
}

double ConcreteGraph::TotalCommunicationSeconds() const {
  double total = 0.0;
  for (const ConcreteEdge& edge : edges_) {
    if (!edge.constraint) {
      total += edge.seconds;
    }
  }
  return total;
}

ConcreteGraph ConcreteGraph::Build(const AbstractIccGraph& abstract,
                                   const NetworkProfile& network,
                                   const LocationConstraints& constraints) {
  ConcreteGraph graph;

  // Dense node numbering: classifications sorted by id, offset by the two
  // terminals.
  graph.node_ids_ = abstract.profile().SortedClassificationIds();
  for (size_t i = 0; i < graph.node_ids_.size(); ++i) {
    graph.index_.emplace(graph.node_ids_[i], static_cast<int>(i) + 2);
  }

  auto node_of = [&graph](ClassificationId id) -> int {
    if (id == kNoClassification) {
      // The application driver (user, GUI thread) is the client terminal.
      return kClientNode;
    }
    auto it = graph.index_.find(id);
    return it == graph.index_.end() ? kClientNode : it->second;
  };

  // Communication edges.
  for (const AbstractIccGraph::PairKey& pair : abstract.SortedPairs()) {
    const AbstractIccGraph::Edge& edge = abstract.edges().at(pair);
    const int a = node_of(pair.a);
    const int b = node_of(pair.b);
    if (a == b) {
      continue;
    }
    graph.AddEdge(a, b, EdgeSeconds(edge, network), /*constraint=*/false);
    if (edge.MustColocate()) {
      // Non-remotable interface between the endpoints: they cannot be
      // split, whatever the traffic volume.
      graph.AddEdge(a, b, 0.0, /*constraint=*/true);
    }
  }

  // Absolute pins (API analysis + programmer).
  for (const auto& [id, machine] : constraints.absolute()) {
    auto it = graph.index_.find(id);
    if (it == graph.index_.end()) {
      continue;
    }
    const int terminal = (machine == kServerMachine) ? kServerNode : kClientNode;
    graph.AddEdge(terminal, it->second, 0.0, /*constraint=*/true);
  }

  // Pairwise colocation.
  for (const auto& [a, b] : constraints.colocated()) {
    graph.AddEdge(node_of(a), node_of(b), 0.0, /*constraint=*/true);
  }

  return graph;
}

}  // namespace coign
