// Component location constraints (paper §2, §4.3).
//
// Sources of constraints:
//   * Static binary analysis: classes touching GUI APIs must run on the
//     client; classes touching storage APIs run on the server (where the
//     data files live).
//   * The programmer: absolute constraints ("this instance runs on machine
//     M", e.g. for data integrity/security) and pair-wise constraints
//     ("these two are colocated").
//   * Non-remotable interfaces (derived from the graph, handled when the
//     concrete graph is built).

#ifndef COIGN_SRC_GRAPH_CONSTRAINTS_H_
#define COIGN_SRC_GRAPH_CONSTRAINTS_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "src/classify/descriptor.h"
#include "src/com/types.h"
#include "src/profile/icc_profile.h"

namespace coign {

class LocationConstraints {
 public:
  // Derives API-based pins from the profile's classification metadata.
  static LocationConstraints FromProfile(const IccProfile& profile);

  // Explicit programmer constraints.
  void PinAbsolute(ClassificationId id, MachineId machine);
  void Colocate(ClassificationId a, ClassificationId b);

  const std::unordered_map<ClassificationId, MachineId>& absolute() const {
    return absolute_;
  }
  const std::vector<std::pair<ClassificationId, ClassificationId>>& colocated() const {
    return colocated_;
  }

  // Machine a classification is pinned to, if any.
  const MachineId* PinOf(ClassificationId id) const;

 private:
  std::unordered_map<ClassificationId, MachineId> absolute_;
  std::vector<std::pair<ClassificationId, ClassificationId>> colocated_;
};

}  // namespace coign

#endif  // COIGN_SRC_GRAPH_CONSTRAINTS_H_
