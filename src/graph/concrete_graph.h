// The concrete communication-time graph (paper §2).
//
// "The abstract ICC graph is combined with a network profile to create a
// concrete graph of potential communication time on the network." Nodes 0
// and 1 are the client and server terminals; classifications occupy dense
// indices from 2. Constraint edges (API pins, programmer pins, colocation,
// non-remotable interfaces) carry `constraint = true` and no time of their
// own; the analysis engine maps them to the min-cut layer's un-cuttable
// sentinel capacity so no minimum cut can violate them.

#ifndef COIGN_SRC_GRAPH_CONCRETE_GRAPH_H_
#define COIGN_SRC_GRAPH_CONCRETE_GRAPH_H_

#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/graph/constraints.h"
#include "src/graph/icc_graph.h"
#include "src/net/network_profiler.h"
#include "src/support/status.h"

namespace coign {

struct ConcreteEdge {
  int a = 0;
  int b = 0;
  double seconds = 0.0;   // Predicted communication time if a and b split.
                          // Always 0 on constraint edges (flag is authoritative).
  bool constraint = false;  // True for un-cuttable constraint edges.
};

class ConcreteGraph {
 public:
  static constexpr int kClientNode = 0;
  static constexpr int kServerNode = 1;

  // Builds the concrete graph from the abstract graph, a fitted network
  // profile, and location constraints.
  static ConcreteGraph Build(const AbstractIccGraph& abstract, const NetworkProfile& network,
                             const LocationConstraints& constraints);

  int node_count() const { return static_cast<int>(node_ids_.size()) + 2; }
  const std::vector<ConcreteEdge>& edges() const { return edges_; }

  // Classification at a dense node index (>= 2).
  ClassificationId ClassificationAt(int node) const { return node_ids_[node - 2]; }
  // Dense index of a classification; error if unknown.
  Result<int> IndexOf(ClassificationId id) const;

  // All classification ids in dense order.
  const std::vector<ClassificationId>& classifications() const { return node_ids_; }

  // Sum of non-constraint edge seconds — total potential communication time
  // if everything were split (an upper bound used in reports).
  double TotalCommunicationSeconds() const;

 private:
  void AddEdge(int a, int b, double seconds, bool constraint);

  std::vector<ClassificationId> node_ids_;  // Dense index - 2 → classification.
  std::unordered_map<ClassificationId, int> index_;
  std::vector<ConcreteEdge> edges_;
};

// Predicted communication seconds of one abstract edge under a network
// profile: count * per-message + bytes * per-byte (exact under the affine
// model because histograms preserve totals).
double EdgeSeconds(const AbstractIccGraph::Edge& edge, const NetworkProfile& network);

}  // namespace coign

#endif  // COIGN_SRC_GRAPH_CONCRETE_GRAPH_H_
