#include "src/graph/constraints.h"

#include "src/com/class_registry.h"

namespace coign {

LocationConstraints LocationConstraints::FromProfile(const IccProfile& profile) {
  LocationConstraints constraints;
  for (const auto& [id, info] : profile.classifications()) {
    if (info.api_usage & kApiGui) {
      // GUI components interact with the user: client.
      constraints.PinAbsolute(id, kClientMachine);
    } else if (info.api_usage & kApiStorage) {
      // Storage components read data files, which live on the server in the
      // paper's experiments ("for both distributions, data files are placed
      // on the server").
      constraints.PinAbsolute(id, kServerMachine);
    }
  }
  return constraints;
}

void LocationConstraints::PinAbsolute(ClassificationId id, MachineId machine) {
  absolute_[id] = machine;
}

void LocationConstraints::Colocate(ClassificationId a, ClassificationId b) {
  colocated_.emplace_back(a, b);
}

const MachineId* LocationConstraints::PinOf(ClassificationId id) const {
  auto it = absolute_.find(id);
  return it == absolute_.end() ? nullptr : &it->second;
}

}  // namespace coign
