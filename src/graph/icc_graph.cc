#include "src/graph/icc_graph.h"

#include <algorithm>
#include <utility>

namespace coign {
namespace {

AbstractIccGraph::PairKey Canonical(ClassificationId a, ClassificationId b) {
  if (a > b) {
    std::swap(a, b);
  }
  // kNoClassification is the max id value, so the driver always lands in b.
  return AbstractIccGraph::PairKey{a, b};
}

}  // namespace

AbstractIccGraph AbstractIccGraph::FromProfile(const IccProfile& profile) {
  AbstractIccGraph graph;
  graph.profile_ = &profile;
  for (const auto& [key, summary] : profile.calls()) {
    if (key.src == key.dst) {
      continue;  // Intra-classification calls never cross the wire.
    }
    Edge& edge = graph.edges_[Canonical(key.src, key.dst)];
    edge.messages.Merge(summary.requests);
    edge.messages.Merge(summary.replies);
    edge.calls += summary.call_count();
    edge.non_remotable_calls += summary.non_remotable_calls;
  }
  return graph;
}

std::vector<AbstractIccGraph::PairKey> AbstractIccGraph::SortedPairs() const {
  std::vector<PairKey> pairs;
  pairs.reserve(edges_.size());
  for (const auto& [key, edge] : edges_) {
    pairs.push_back(key);
  }
  std::sort(pairs.begin(), pairs.end(), [](const PairKey& x, const PairKey& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  return pairs;
}

}  // namespace coign
