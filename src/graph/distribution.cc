#include "src/graph/distribution.h"

#include "src/support/str_util.h"

namespace coign {

std::string Distribution::ToString() const {
  return StrFormat("distribution{%zu classifications, %zu on client, %zu on server}",
                   placement.size(), CountOn(kClientMachine), CountOn(kServerMachine));
}

Distribution EverythingOn(MachineId machine) {
  Distribution d;
  d.default_machine = machine;
  return d;
}

}  // namespace coign
