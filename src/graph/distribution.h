// A distribution: the mapping from instance classifications to machines.
//
// "Part of the output of the profile analysis engine is a map of instance
// classifications to computers in the network." (paper §3.4) The component
// factory consults this map to relocate instantiation requests; the
// simulator uses it to place instances.

#ifndef COIGN_SRC_GRAPH_DISTRIBUTION_H_
#define COIGN_SRC_GRAPH_DISTRIBUTION_H_

#include <cstddef>
#include <string>
#include <unordered_map>

#include "src/classify/descriptor.h"
#include "src/com/types.h"

namespace coign {

struct Distribution {
  std::unordered_map<ClassificationId, MachineId> placement;
  // Machine for classifications absent from the map (new classifications at
  // run time default to the client, where the user drives the app).
  MachineId default_machine = kClientMachine;

  MachineId MachineFor(ClassificationId id) const {
    auto it = placement.find(id);
    return it == placement.end() ? default_machine : it->second;
  }

  size_t CountOn(MachineId machine) const {
    size_t count = 0;
    for (const auto& [id, m] : placement) {
      count += (m == machine) ? 1 : 0;
    }
    return count;
  }

  size_t size() const { return placement.size(); }

  std::string ToString() const;
};

// All classifications on one machine — the non-distributed baseline.
Distribution EverythingOn(MachineId machine);

}  // namespace coign

#endif  // COIGN_SRC_GRAPH_DISTRIBUTION_H_
