// The abstract inter-component communication graph (paper §2).
//
// "The profile analysis engine combines component communication profiles
// and component location constraints to create an abstract ICC graph of the
// application." Abstract means network-independent: edges carry message
// histograms (counts and bytes), not seconds. Nodes are instance
// classifications; the application driver (GUI thread, the user) is the
// pseudo-node kDriverNode and always lives on the client.

#ifndef COIGN_SRC_GRAPH_ICC_GRAPH_H_
#define COIGN_SRC_GRAPH_ICC_GRAPH_H_

#include <unordered_map>
#include <vector>

#include "src/profile/icc_profile.h"
#include "src/support/histogram.h"

namespace coign {

class AbstractIccGraph {
 public:
  // Undirected pair key; the driver end uses kNoClassification.
  struct PairKey {
    ClassificationId a = kNoClassification;
    ClassificationId b = kNoClassification;
    friend bool operator==(const PairKey&, const PairKey&) = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      return static_cast<size_t>(k.a) * 0x9e3779b97f4a7c15ull + k.b;
    }
  };

  struct Edge {
    // One-way messages exchanged between the endpoints (each call
    // contributes its request and its reply).
    ExponentialHistogram messages;
    uint64_t calls = 0;
    // Calls on this pair that crossed a non-remotable interface or carried
    // opaque parameters: the endpoints must be colocated.
    uint64_t non_remotable_calls = 0;

    bool MustColocate() const { return non_remotable_calls > 0; }
  };

  static AbstractIccGraph FromProfile(const IccProfile& profile);

  const std::unordered_map<PairKey, Edge, PairKeyHash>& edges() const { return edges_; }
  const IccProfile& profile() const { return *profile_; }

  // Deterministic edge ordering for reports and tests.
  std::vector<PairKey> SortedPairs() const;

  size_t node_count() const { return profile_->classifications().size(); }
  size_t edge_count() const { return edges_.size(); }

 private:
  std::unordered_map<PairKey, Edge, PairKeyHash> edges_;
  const IccProfile* profile_ = nullptr;
};

}  // namespace coign

#endif  // COIGN_SRC_GRAPH_ICC_GRAPH_H_
