#include "src/apps/photodraw.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/apps/component_library.h"
#include "src/support/str_util.h"

namespace coign {
namespace {

struct Tuning {
  // UI forest.
  int ui_containers = 18;
  int ui_children = 8;
  int ui_classes = 60;

  // Compositions: ~3 MB pulled from the store in chunks.
  int msr_chunks = 384;
  int msr_chunk_bytes = 8 * 1024;
  // Line drawings (vector art): small but chatty.
  int cur_chunks = 30;
  int cur_chunk_bytes = 3 * 1024;

  // Property sets: larger input (from the reader) than output (to the UI).
  int property_sets = 7;
  int prop_pull_chunks = 24;
  int prop_pull_bytes = 4096;
  int prop_query_count = 10;
  int prop_reply_bytes = 160;

  // Sprite-cache hierarchy: 1 + 4 + 16 + 64.
  int sprite_fanout = 4;
  int sprite_levels = 4;
  int sprite_classes = 20;
  // Pixels travel to the root sprite in bulk messages...
  int pixel_msgs = 12;
  int pixel_msg_bytes = 256 * 1024;
  // ...and between sprites via shared memory (opaque pointers).
  int blit_calls_per_sprite = 3;

  // Transforms applied to the composition.
  int transform_count = 10;
  int transform_classes = 20;

  double parse_cost = 150e-6;
  double blit_cost = 60e-6;
  double ui_cost = 40e-6;
  double transform_cost = 800e-6;
};

enum AppMethod : MethodIndex { kAppNew = 0, kAppOpen = 1 };
enum StoreMethod : MethodIndex { kStoreOpen = 0, kStoreReadBlock = 1, kStoreClose = 2 };
enum ReaderMethod : MethodIndex {
  kReaderLoad = 0,
  kReaderReadPixels = 1,
  kReaderReadPropertyData = 2,
};
enum PropMethod : MethodIndex { kPropLoad = 0, kPropGet = 1 };
enum SpriteMethod : MethodIndex { kSpriteInit = 0, kSpriteFillPixels = 1 };
enum SpriteMemMethod : MethodIndex { kMemShareRegion = 0, kMemBlitRegion = 1 };
enum UiMethod : MethodIndex { kUiInit = 0, kUiPaint = 1 };
enum SinkMethod : MethodIndex { kSinkNotify = 0 };
enum TransformMethod : MethodIndex { kTransformApply = 0 };

ObjectRef SelfRef(const ScriptedComponent& self, const InterfaceId& iid) {
  return ObjectRef{self.id(), iid};
}

class PhotoDrawApp : public Application {
 public:
  std::string name() const override { return "PhotoDraw"; }

  Status Install(ObjectSystem* system) override;
  ApplicationImage Image() const override;
  ClassPlacement DefaultPlacement(const ObjectSystem& system) const override;
  std::vector<Scenario> Scenarios() const override;

  bool IsInfrastructureClass(const std::string& class_name) const override {
    return class_name == "PD.FileStore";
  }

 private:
  HandlerTable* NewTable() {
    tables_.push_back(std::make_unique<HandlerTable>());
    return tables_.back().get();
  }

  Tuning tuning_;
  InterfaceId iid_app_, iid_store_, iid_reader_, iid_prop_, iid_sprite_, iid_mem_, iid_ui_,
      iid_sink_, iid_transform_;
  std::vector<std::unique_ptr<HandlerTable>> tables_;
};

Status PhotoDrawApp::Install(ObjectSystem* system) {
  InterfaceRegistry& reg = system->interfaces();
  const Tuning& t = tuning_;

  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("PD.IApp")
                                         .Method("NewImage")
                                         .In("kind", ValueKind::kString)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("OpenDocument")
                                         .In("kind", ValueKind::kString)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("PD.IFileStore")
                                         .Method("Open")
                                         .In("name", ValueKind::kString)
                                         .Out("handle", ValueKind::kInt32)
                                         .Method("ReadBlock")
                                         .In("handle", ValueKind::kInt32)
                                         .In("offset", ValueKind::kInt64)
                                         .In("size", ValueKind::kInt32)
                                         .Out("data", ValueKind::kBlob)
                                         .Method("Close")
                                         .In("handle", ValueKind::kInt32)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("PD.IDocReader")
                                         .Method("Load")
                                         .In("store", ValueKind::kInterface)
                                         .In("kind", ValueKind::kString)
                                         .Out("meta", ValueKind::kRecord)
                                         .Method("ReadPixels")
                                         .In("band", ValueKind::kInt32)
                                         .Out("pixels", ValueKind::kBlob)
                                         .Method("ReadPropertyData")
                                         .In("index", ValueKind::kInt32)
                                         .In("chunk", ValueKind::kInt32)
                                         .Out("data", ValueKind::kBlob)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("PD.IPropertySet")
                                         .Method("Load")
                                         .In("reader", ValueKind::kInterface)
                                         .In("index", ValueKind::kInt32)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("GetProperty")
                                         .Cacheable()
                                         .In("key", ValueKind::kInt32)
                                         .Out("value", ValueKind::kRecord)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("PD.ISpriteCache")
                                         .Method("Init")
                                         .In("parent", ValueKind::kInterface)
                                         .In("level", ValueKind::kInt32)
                                         .In("slot", ValueKind::kInt32)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("FillPixels")
                                         .In("pixels", ValueKind::kBlob)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));
  // Sprite caches exchange pixels through shared-memory regions whose
  // pointers pass opaquely: never remotable (Figure 4's black lines).
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("PD.ISpriteMem")
                                         .NonRemotable()
                                         .Method("ShareRegion")
                                         .In("region", ValueKind::kOpaque)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("BlitRegion")
                                         .In("region", ValueKind::kOpaque)
                                         .In("rect", ValueKind::kRecord)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("PD.IUi")
                                         .Method("Init")
                                         .In("parent", ValueKind::kInterface)
                                         .In("depth", ValueKind::kInt32)
                                         .In("slot", ValueKind::kInt32)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("Paint")
                                         .In("region", ValueKind::kBlob)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("PD.IUiSink")
                                         .NonRemotable()
                                         .Method("Notify")
                                         .In("event", ValueKind::kInt32)
                                         .In("hwnd", ValueKind::kOpaque)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("PD.ITransform")
                                         .Method("Apply")
                                         .In("sprite", ValueKind::kInterface)
                                         .In("params", ValueKind::kRecord)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));

  iid_app_ = reg.LookupByName("PD.IApp")->iid;
  iid_store_ = reg.LookupByName("PD.IFileStore")->iid;
  iid_reader_ = reg.LookupByName("PD.IDocReader")->iid;
  iid_prop_ = reg.LookupByName("PD.IPropertySet")->iid;
  iid_sprite_ = reg.LookupByName("PD.ISpriteCache")->iid;
  iid_mem_ = reg.LookupByName("PD.ISpriteMem")->iid;
  iid_ui_ = reg.LookupByName("PD.IUi")->iid;
  iid_sink_ = reg.LookupByName("PD.IUiSink")->iid;
  iid_transform_ = reg.LookupByName("PD.ITransform")->iid;

  // --- File store ------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_store_, kStoreOpen,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(50e-6);
                 const int64_t handle = self.GetInt("next_handle", 1);
                 self.SetState("next_handle", Value::FromInt64(handle + 1));
                 out->Add("handle", Value::FromInt32(static_cast<int32_t>(handle)));
                 return Status::Ok();
               });
    table->Set(iid_store_, kStoreReadBlock,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(30e-6);
                 out->Add("data",
                          Value::BlobOfSize(
                              static_cast<uint64_t>(in.Find("size")->AsInt32()),
                              static_cast<uint64_t>(in.Find("offset")->AsInt64())));
                 return Status::Ok();
               });
    table->Set(iid_store_, kStoreClose,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 (void)out;
                 self.system()->ChargeCompute(20e-6);
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "PD.FileStore", {iid_store_}, kApiStorage, table));
  }

  // --- Document reader ---------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_reader_, kReaderLoad,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 const ObjectRef store = in.Find("store")->AsInterface();
                 const std::string& kind = in.Find("kind")->AsString();
                 self.SetRef("store", store);

                 Message open_in;
                 open_in.Add("name", Value::FromString("image." + kind));
                 Result<Message> opened = CallMethod(sys, store, kStoreOpen, open_in);
                 if (!opened.ok()) {
                   return opened.status();
                 }
                 const int32_t handle = opened->Find("handle")->AsInt32();

                 const int chunks = kind == "msr" ? t.msr_chunks
                                    : kind == "cur" ? t.cur_chunks
                                                    : 4;
                 const int chunk_bytes = kind == "msr" ? t.msr_chunk_bytes
                                         : kind == "cur" ? t.cur_chunk_bytes
                                                         : 2048;
                 int64_t offset = 0;
                 for (int c = 0; c < chunks; ++c) {
                   Message read_in;
                   read_in.Add("handle", Value::FromInt32(handle));
                   read_in.Add("offset", Value::FromInt64(offset));
                   read_in.Add("size", Value::FromInt32(chunk_bytes));
                   Result<Message> reply = CallMethod(sys, store, kStoreReadBlock, read_in);
                   if (!reply.ok()) {
                     return reply.status();
                   }
                   sys.ChargeCompute(t.parse_cost);
                   // Decoded image data stays resident in the reader.
                   sys.ChargeAllocation(static_cast<uint64_t>(chunk_bytes));
                   offset += chunk_bytes;
                 }
                 Message close_in;
                 close_in.Add("handle", Value::FromInt32(handle));
                 Result<Message> closed = CallMethod(sys, store, kStoreClose, close_in);
                 if (!closed.ok()) {
                   return closed.status();
                 }
                 self.SetState("kind",
                               Value::FromString(kind));
                 out->Add("meta", Value::FromRecord({
                                      {"kind", Value::FromString(kind)},
                                      {"bytes", Value::FromInt64(offset)},
                                  }));
                 return Status::Ok();
               });
    table->Set(iid_reader_, kReaderReadPixels,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(t.parse_cost);
                 const Value* kind = self.GetState("kind");
                 const bool vector_art =
                     kind != nullptr && kind->AsString() == "cur";
                 const uint64_t bytes = vector_art
                                            ? static_cast<uint64_t>(t.cur_chunk_bytes)
                                            : static_cast<uint64_t>(t.pixel_msg_bytes);
                 out->Add("pixels", Value::BlobOfSize(
                                        bytes, static_cast<uint64_t>(
                                                   in.Find("band")->AsInt32())));
                 return Status::Ok();
               });
    table->Set(iid_reader_, kReaderReadPropertyData,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 // Property streams live in the document file: each pull is
                 // a real file access through the store.
                 ObjectSystem& sys = *self.system();
                 sys.ChargeCompute(40e-6);
                 Message read_in;
                 read_in.Add("handle", Value::FromInt32(1));
                 read_in.Add("offset",
                             Value::FromInt64(in.Find("index")->AsInt32() * 65536 +
                                              in.Find("chunk")->AsInt32() * 4096));
                 read_in.Add("size", Value::FromInt32(t.prop_pull_bytes));
                 Result<Message> block =
                     CallMethod(sys, self.GetRef("store"), kStoreReadBlock, read_in);
                 if (!block.ok()) {
                   return block.status();
                 }
                 out->Add("data", *block->Find("data"));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "PD.DocReader", {iid_reader_}, kApiNone, table));
  }

  // --- Property sets --------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_prop_, kPropLoad,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 const ObjectRef reader = in.Find("reader")->AsInterface();
                 const int32_t index = in.Find("index")->AsInt32();
                 const int32_t chunks = in.Find("chunks")->AsInt32();
                 // Larger input set than output: pull many chunks of raw
                 // property data from the file's reader.
                 for (int c = 0; c < chunks; ++c) {
                   Message pull_in;
                   pull_in.Add("index", Value::FromInt32(index));
                   pull_in.Add("chunk", Value::FromInt32(c));
                   Result<Message> data =
                       CallMethod(sys, reader, kReaderReadPropertyData, pull_in);
                   if (!data.ok()) {
                     return data.status();
                   }
                   sys.ChargeCompute(30e-6);
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_prop_, kPropGet,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(10e-6);
                 out->Add("value",
                          Value::FromRecord({
                              {"key", Value::FromInt32(in.Find("key")->AsInt32())},
                              {"data", Value::BlobOfSize(
                                           static_cast<uint64_t>(t.prop_reply_bytes), 3)},
                          }));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "PD.PropertySet", {iid_prop_}, kApiNone, table));
  }

  // --- Sprite caches ---------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(
        iid_sprite_, kSpriteInit,
        [this, t](ScriptedComponent& self, const Message& in, Message* out) {
          ObjectSystem& sys = *self.system();
          const ObjectRef parent = in.Find("parent")->AsInterface();
          const int32_t level = in.Find("level")->AsInt32();
          const int32_t slot = in.Find("slot")->AsInt32();
          self.SetRef("parent", parent);
          sys.ChargeCompute(t.blit_cost);
          if (!parent.IsNull()) {
            // Announce the shared pixel region to the parent — opaque
            // pointer over the non-remotable interface.
            Message share_in;
            share_in.Add("region", Value::FromOpaque(0x7f000000 + self.id()));
            Result<Message> shared = CallMethod(sys, parent, kMemShareRegion, share_in);
            if (!shared.ok()) {
              return shared.status();
            }
          }
          if (level + 1 < t.sprite_levels) {
            for (int c = 0; c < t.sprite_fanout; ++c) {
              const int class_index = (slot * 5 + c * 3 + level * 7) % t.sprite_classes;
              Result<ObjectRef> child = sys.CreateInstance(
                  Guid::FromName(StrFormat("clsid:PD.SpriteCache%02d", class_index)),
                  iid_sprite_);
              if (!child.ok()) {
                return child.status();
              }
              self.SetRef(StrFormat("child%02d", c), *child);
              Message init_in;
              init_in.Add("parent", Value::FromInterface(SelfRef(self, iid_mem_)));
              init_in.Add("level", Value::FromInt32(level + 1));
              init_in.Add("slot", Value::FromInt32(slot * 4 + c + 1));
              Result<Message> inited = CallMethod(sys, *child, kSpriteInit, init_in);
              if (!inited.ok()) {
                return inited.status();
              }
            }
          }
          out->Add("ok", Value::FromBool(true));
          return Status::Ok();
        });
    table->Set(
        iid_sprite_, kSpriteFillPixels,
        [t](ScriptedComponent& self, const Message& in, Message* out) {
          ObjectSystem& sys = *self.system();
          (void)in;
          sys.ChargeCompute(t.blit_cost);
          // Distribute the pixels down the hierarchy through shared memory.
          for (const ObjectRef& child : self.RefsWithPrefix("child")) {
            for (int b = 0; b < t.blit_calls_per_sprite; ++b) {
              Message blit_in;
              blit_in.Add("region", Value::FromOpaque(0x7f000000 + child.instance));
              blit_in.Add("rect", Value::FromRecord({
                                      {"x", Value::FromInt32(b * 64)},
                                      {"y", Value::FromInt32(b * 64)},
                                      {"w", Value::FromInt32(256)},
                                      {"h", Value::FromInt32(256)},
                                  }));
              Result<Message> blitted = CallMethod(
                  sys, ObjectRef{child.instance, sys.interfaces()
                                                     .LookupByName("PD.ISpriteMem")
                                                     ->iid},
                  kMemBlitRegion, blit_in);
              if (!blitted.ok()) {
                return blitted.status();
              }
            }
          }
          out->Add("ok", Value::FromBool(true));
          return Status::Ok();
        });
    table->Set(iid_mem_, kMemShareRegion,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(10e-6);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_mem_, kMemBlitRegion,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(t.blit_cost);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    for (int s = 0; s < t.sprite_classes; ++s) {
      COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system,
                                                  StrFormat("PD.SpriteCache%02d", s),
                                                  {iid_sprite_, iid_mem_}, kApiNone, table));
    }
  }

  // --- Transforms ---------------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_transform_, kTransformApply,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 sys.ChargeCompute(t.transform_cost);
                 const ObjectRef sprite = in.Find("sprite")->AsInterface();
                 // Touch the sprite's pixels through shared memory.
                 Message blit_in;
                 blit_in.Add("region", Value::FromOpaque(0x7f100000 + sprite.instance));
                 blit_in.Add("rect", Value::FromRecord({
                                         {"x", Value::FromInt32(0)},
                                         {"y", Value::FromInt32(0)},
                                         {"w", Value::FromInt32(1024)},
                                         {"h", Value::FromInt32(768)},
                                     }));
                 Result<Message> blitted = CallMethod(
                     sys,
                     ObjectRef{sprite.instance,
                               sys.interfaces().LookupByName("PD.ISpriteMem")->iid},
                     kMemBlitRegion, blit_in);
                 if (!blitted.ok()) {
                   return blitted.status();
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    for (int x = 0; x < t.transform_classes; ++x) {
      COIGN_RETURN_IF_ERROR(RegisterScriptedClass(
          system, StrFormat("PD.Transform%02d", x), {iid_transform_}, kApiNone, table));
    }
  }

  // --- UI widgets -----------------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(
        iid_ui_, kUiInit,
        [this, t](ScriptedComponent& self, const Message& in, Message* out) {
          ObjectSystem& sys = *self.system();
          const ObjectRef parent = in.Find("parent")->AsInterface();
          const int32_t depth = in.Find("depth")->AsInt32();
          const int32_t slot = in.Find("slot")->AsInt32();
          self.SetRef("parent", parent);
          sys.ChargeCompute(t.ui_cost);
          Message notify_in;
          notify_in.Add("event", Value::FromInt32(1));
          notify_in.Add("hwnd", Value::FromOpaque(0x20000 + self.id()));
          Result<Message> notified = CallMethod(sys, parent, kSinkNotify, notify_in);
          if (!notified.ok()) {
            return notified.status();
          }
          if (depth == 1) {
            for (int c = 0; c < t.ui_children; ++c) {
              const int class_index = 18 + (slot * 8 + c * 3) % (t.ui_classes - 18);
              Result<ObjectRef> child = sys.CreateInstance(
                  Guid::FromName(StrFormat("clsid:PD.Ui%02d", class_index)), iid_ui_);
              if (!child.ok()) {
                return child.status();
              }
              self.SetRef(StrFormat("child%02d", c), *child);
              Message init_in;
              init_in.Add("parent", Value::FromInterface(SelfRef(self, iid_sink_)));
              init_in.Add("depth", Value::FromInt32(2));
              init_in.Add("slot", Value::FromInt32(slot * 8 + c + 1));
              Result<Message> inited = CallMethod(sys, *child, kUiInit, init_in);
              if (!inited.ok()) {
                return inited.status();
              }
            }
          }
          out->Add("ok", Value::FromBool(true));
          return Status::Ok();
        });
    table->Set(iid_ui_, kUiPaint,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 (void)in;
                 sys.ChargeCompute(t.ui_cost);
                 for (const ObjectRef& child : self.RefsWithPrefix("child")) {
                   Message paint_in;
                   paint_in.Add("region", Value::BlobOfSize(256, child.instance));
                   Result<Message> painted = CallMethod(sys, child, kUiPaint, paint_in);
                   if (!painted.ok()) {
                     return painted.status();
                   }
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_sink_, kSinkNotify,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(5e-6);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    // The canvas also speaks ISpriteMem: the root sprite cache shares its
    // pixel region with it and blits into it.
    table->Set(iid_mem_, kMemShareRegion,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(10e-6);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_mem_, kMemBlitRegion,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(t.blit_cost);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    for (int u = 0; u < t.ui_classes; ++u) {
      const uint32_t api = (u % 3 == 0) ? kApiGui : kApiNone;
      COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, StrFormat("PD.Ui%02d", u),
                                                  {iid_ui_, iid_sink_}, api, table));
    }
    COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, "PD.Canvas",
                                                {iid_ui_, iid_sink_, iid_mem_}, kApiGui,
                                                table));
  }

  // --- Application root -------------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    auto build_ui = [this, t](ScriptedComponent& self) -> Status {
      if (self.HasRef("canvas")) {
        return Status::Ok();
      }
      ObjectSystem& sys = *self.system();
      Result<ObjectRef> canvas =
          sys.CreateInstance(Guid::FromName("clsid:PD.Canvas"), iid_ui_);
      if (!canvas.ok()) {
        return canvas.status();
      }
      self.SetRef("canvas", *canvas);
      for (int c = 0; c < t.ui_containers; ++c) {
        Result<ObjectRef> container = sys.CreateInstance(
            Guid::FromName(StrFormat("clsid:PD.Ui%02d", c % 18)), iid_ui_);
        if (!container.ok()) {
          return container.status();
        }
        self.SetRef(StrFormat("container%02d", c), *container);
        Message init_in;
        init_in.Add("parent", Value::FromInterface(ObjectRef{canvas->instance, iid_sink_}));
        init_in.Add("depth", Value::FromInt32(1));
        init_in.Add("slot", Value::FromInt32(c));
        Result<Message> inited = CallMethod(sys, *container, kUiInit, init_in);
        if (!inited.ok()) {
          return inited.status();
        }
      }
      return Status::Ok();
    };

    auto build_sprites = [this, t](ScriptedComponent& self) -> Status {
      ObjectSystem& sys = *self.system();
      Result<ObjectRef> root =
          sys.CreateInstance(Guid::FromName("clsid:PD.SpriteCache00"), iid_sprite_);
      if (!root.ok()) {
        return root.status();
      }
      self.SetRef("sprite_root", *root);
      Message init_in;
      // The root sprite shares its region with the canvas.
      init_in.Add("parent", Value::FromInterface(
                                ObjectRef{self.GetRef("canvas").instance, iid_mem_}));
      init_in.Add("level", Value::FromInt32(0));
      init_in.Add("slot", Value::FromInt32(0));
      Result<Message> inited = CallMethod(sys, *root, kSpriteInit, init_in);
      if (!inited.ok()) {
        return inited.status();
      }
      return Status::Ok();
    };

    auto open_document = [this, t, build_ui, build_sprites](
                             ScriptedComponent& self, const std::string& kind,
                             bool fresh_image, Message* out) -> Status {
      ObjectSystem& sys = *self.system();
      COIGN_RETURN_IF_ERROR(build_ui(self));
      COIGN_RETURN_IF_ERROR(build_sprites(self));

      Result<ObjectRef> store =
          sys.CreateInstance(Guid::FromName("clsid:PD.FileStore"), iid_store_);
      if (!store.ok()) {
        return store.status();
      }
      Result<ObjectRef> reader =
          sys.CreateInstance(Guid::FromName("clsid:PD.DocReader"), iid_reader_);
      if (!reader.ok()) {
        return reader.status();
      }
      Message load_in;
      load_in.Add("store", Value::FromInterface(*store));
      load_in.Add("kind", Value::FromString(fresh_image ? "new" : kind));
      Result<Message> meta = CallMethod(sys, *reader, kReaderLoad, load_in);
      if (!meta.ok()) {
        return meta.status();
      }

      // High-level property sets created directly from file data. Rich
      // compositions carry much deeper property streams than line art.
      const int props = fresh_image ? 2 : t.property_sets;
      const int pull_chunks = fresh_image ? 2 : (kind == "msr" ? t.prop_pull_chunks : 6);
      for (int p = 0; p < props; ++p) {
        Result<ObjectRef> prop =
            sys.CreateInstance(Guid::FromName("clsid:PD.PropertySet"), iid_prop_);
        if (!prop.ok()) {
          return prop.status();
        }
        self.SetRef(StrFormat("prop%02d", p), *prop);
        Message prop_in;
        prop_in.Add("reader", Value::FromInterface(*reader));
        prop_in.Add("index", Value::FromInt32(p));
        prop_in.Add("chunks", Value::FromInt32(pull_chunks));
        Result<Message> loaded = CallMethod(sys, *prop, kPropLoad, prop_in);
        if (!loaded.ok()) {
          return loaded.status();
        }
        // The UI queries a handful of summary properties.
        for (int q = 0; q < t.prop_query_count; ++q) {
          Message get_in;
          get_in.Add("key", Value::FromInt32(q));
          Result<Message> got = CallMethod(sys, *prop, kPropGet, get_in);
          if (!got.ok()) {
            return got.status();
          }
        }
      }

      // Stream the pixels to the root sprite cache and distribute them.
      const ObjectRef sprite_root = self.GetRef("sprite_root");
      const int bands = fresh_image ? 2 : (kind == "msr" ? t.pixel_msgs : 6);
      for (int b = 0; b < bands; ++b) {
        Message band_in;
        band_in.Add("band", Value::FromInt32(b));
        Result<Message> pixels = CallMethod(sys, *reader, kReaderReadPixels, band_in);
        if (!pixels.ok()) {
          return pixels.status();
        }
        Message fill_in;
        fill_in.Add("pixels", *pixels->Find("pixels"));
        Result<Message> filled = CallMethod(sys, sprite_root, kSpriteFillPixels, fill_in);
        if (!filled.ok()) {
          return filled.status();
        }
      }

      // Apply a few transforms to the composition.
      const int transforms = fresh_image ? 2 : t.transform_count;
      for (int x = 0; x < transforms; ++x) {
        Result<ObjectRef> transform = sys.CreateInstance(
            Guid::FromName(StrFormat("clsid:PD.Transform%02d", x % t.transform_classes)),
            iid_transform_);
        if (!transform.ok()) {
          return transform.status();
        }
        Message apply_in;
        apply_in.Add("sprite", Value::FromInterface(sprite_root));
        apply_in.Add("params", Value::FromRecord({
                                   {"kind", Value::FromInt32(x)},
                                   {"amount", Value::FromDouble(0.5)},
                               }));
        Result<Message> applied = CallMethod(sys, *transform, kTransformApply, apply_in);
        if (!applied.ok()) {
          return applied.status();
        }
      }

      // Repaint.
      for (const ObjectRef& container : self.RefsWithPrefix("container")) {
        Message paint_in;
        paint_in.Add("region", Value::BlobOfSize(512, container.instance));
        Result<Message> painted = CallMethod(sys, container, kUiPaint, paint_in);
        if (!painted.ok()) {
          return painted.status();
        }
      }
      out->Add("ok", Value::FromBool(true));
      return Status::Ok();
    };

    table->Set(iid_app_, kAppNew,
               [open_document](ScriptedComponent& self, const Message& in, Message* out) {
                 return open_document(self, in.Find("kind")->AsString(),
                                      /*fresh_image=*/true, out);
               });
    table->Set(iid_app_, kAppOpen,
               [open_document](ScriptedComponent& self, const Message& in, Message* out) {
                 return open_document(self, in.Find("kind")->AsString(),
                                      /*fresh_image=*/false, out);
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "PD.App", {iid_app_}, kApiGui, table));
  }

  return Status::Ok();
}

ApplicationImage PhotoDrawApp::Image() const {
  ApplicationImage image;
  image.name = "photodraw.exe";
  image.binaries = {"photodraw.exe", "pdcore.dll", "pdsprite.dll", "pdfx.dll"};
  image.import_table = {"ole32.dll", "user32.dll", "gdi32.dll", "kernel32.dll"};
  return image;
}

ClassPlacement PhotoDrawApp::DefaultPlacement(const ObjectSystem& system) const {
  (void)system;
  ClassPlacement placement(kClientMachine);
  placement.Place(Guid::FromName("clsid:PD.FileStore"), kServerMachine);
  return placement;
}

struct PhotoDrawTask {
  std::string kind;
  bool fresh = false;
};

Status RunPhotoDrawScenario(ObjectSystem& system, const std::vector<PhotoDrawTask>& tasks) {
  Result<ObjectRef> app = CreateByName(system, "PD.App", "PD.IApp");
  if (!app.ok()) {
    return app.status();
  }
  for (const PhotoDrawTask& task : tasks) {
    Message in;
    in.Add("kind", Value::FromString(task.kind));
    Result<Message> out =
        CallMethod(system, *app, task.fresh ? kAppNew : kAppOpen, in);
    if (!out.ok()) {
      return out.status();
    }
  }
  return Status::Ok();
}

std::vector<Scenario> PhotoDrawApp::Scenarios() const {
  auto scenario = [](std::string id, std::string description,
                     std::vector<PhotoDrawTask> tasks) {
    Scenario s;
    s.id = std::move(id);
    s.description = std::move(description);
    s.run = [tasks = std::move(tasks)](ObjectSystem& system, Rng& rng) {
      (void)rng;
      return RunPhotoDrawScenario(system, tasks);
    };
    return s;
  };

  const PhotoDrawTask new_doc{"img", true};
  const PhotoDrawTask new_msr{"msr", true};
  const PhotoDrawTask old_cur{"cur", false};
  const PhotoDrawTask old_msr{"msr", false};

  return {
      scenario("p_newdoc", "Create new image.", {new_doc}),
      scenario("p_newmsr", "Create new composition.", {new_msr}),
      scenario("p_oldcur", "View line drawing.", {old_cur}),
      scenario("p_oldmsr", "View composition.", {old_msr}),
      scenario("p_offcur", "p_newdoc then p_oldcur.", {new_doc, old_cur}),
      scenario("p_offmsr", "p_newdoc then p_oldmsr.", {new_doc, old_msr}),
      scenario("p_bigone", "All of the above in one scenario.",
               {new_doc, new_msr, old_cur, old_msr}),
  };
}

}  // namespace

std::unique_ptr<Application> MakePhotoDraw() { return std::make_unique<PhotoDrawApp>(); }

}  // namespace coign
