#include "src/apps/app.h"

namespace coign {

Result<Scenario> Application::FindScenario(const std::string& id) const {
  for (Scenario& scenario : Scenarios()) {
    if (scenario.id == id) {
      return scenario;
    }
  }
  return NotFoundError("unknown scenario: " + id);
}

}  // namespace coign
