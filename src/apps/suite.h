// The full application suite of the paper's evaluation: PhotoDraw,
// Octarine, and the Corporate Benefits Sample, with every Table 1 scenario.

#ifndef COIGN_SRC_APPS_SUITE_H_
#define COIGN_SRC_APPS_SUITE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/app.h"

namespace coign {

// All three applications, in Table 1 order (Octarine, PhotoDraw, Benefits).
std::vector<std::unique_ptr<Application>> BuildApplicationSuite();

// Builds the application owning a scenario id by its prefix
// ("o_" = Octarine, "p_" = PhotoDraw, "b_" = Benefits).
Result<std::unique_ptr<Application>> BuildApplicationForScenario(const std::string& scenario_id);

// The 23 Table 1 scenario ids, in the table's order.
std::vector<std::string> Table1ScenarioIds();

}  // namespace coign

#endif  // COIGN_SRC_APPS_SUITE_H_
