#include "src/apps/suite.h"

#include "src/apps/benefits.h"
#include "src/apps/octarine.h"
#include "src/apps/photodraw.h"
#include "src/support/str_util.h"

namespace coign {

std::vector<std::unique_ptr<Application>> BuildApplicationSuite() {
  std::vector<std::unique_ptr<Application>> suite;
  suite.push_back(MakeOctarine());
  suite.push_back(MakePhotoDraw());
  suite.push_back(MakeBenefits());
  return suite;
}

Result<std::unique_ptr<Application>> BuildApplicationForScenario(
    const std::string& scenario_id) {
  if (StartsWith(scenario_id, "o_")) {
    return MakeOctarine();
  }
  if (StartsWith(scenario_id, "p_")) {
    return MakePhotoDraw();
  }
  if (StartsWith(scenario_id, "b_")) {
    return MakeBenefits();
  }
  return NotFoundError("no application for scenario id: " + scenario_id);
}

std::vector<std::string> Table1ScenarioIds() {
  return {
      "o_newdoc", "o_newmus", "o_newtbl", "o_oldtb0", "o_oldtb3", "o_oldwp0",
      "o_oldwp3", "o_oldwp7", "o_oldbth", "o_offtb3", "o_offwp7", "o_bigone",
      "p_newdoc", "p_newmsr", "p_oldcur", "p_oldmsr", "p_offcur", "p_offmsr",
      "p_bigone", "b_vueone", "b_addone", "b_delone", "b_bigone",
  };
}

}  // namespace coign
