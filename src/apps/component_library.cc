#include "src/apps/component_library.h"

#include "src/support/str_util.h"

namespace coign {

void HandlerTable::Set(const InterfaceId& iid, MethodIndex method, MethodHandler handler) {
  handlers_[Key(iid, method)] = std::move(handler);
}

const MethodHandler* HandlerTable::Find(const InterfaceId& iid, MethodIndex method) const {
  auto it = handlers_.find(Key(iid, method));
  return it == handlers_.end() ? nullptr : &it->second;
}

Status ScriptedComponent::Dispatch(const InterfaceId& iid, MethodIndex method,
                                   const Message& in, Message* out) {
  const MethodHandler* handler = table_->Find(iid, method);
  if (handler == nullptr) {
    return UnimplementedError(
        StrFormat("no handler for method %u on instance #%llu", method,
                  static_cast<unsigned long long>(id())));
  }
  return (*handler)(*this, in, out);
}

const Value* ScriptedComponent::GetState(const std::string& key) const {
  auto it = state_.find(key);
  return it == state_.end() ? nullptr : &it->second;
}

int64_t ScriptedComponent::GetInt(const std::string& key, int64_t fallback) const {
  const Value* value = GetState(key);
  if (value == nullptr) {
    return fallback;
  }
  if (value->kind() == ValueKind::kInt64) {
    return value->AsInt64();
  }
  if (value->kind() == ValueKind::kInt32) {
    return value->AsInt32();
  }
  return fallback;
}

ObjectRef ScriptedComponent::GetRef(const std::string& key) const {
  auto it = refs_.find(key);
  return it == refs_.end() ? ObjectRef{} : it->second;
}

std::vector<ObjectRef> ScriptedComponent::RefsWithPrefix(const std::string& prefix) const {
  std::vector<std::pair<std::string, ObjectRef>> matches;
  for (const auto& [key, ref] : refs_) {
    if (StartsWith(key, prefix)) {
      matches.emplace_back(key, ref);
    }
  }
  // Deterministic order.
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<ObjectRef> out;
  out.reserve(matches.size());
  for (auto& [key, ref] : matches) {
    out.push_back(ref);
  }
  return out;
}

Status RegisterScriptedClass(ObjectSystem* system, const std::string& name,
                             const std::vector<InterfaceId>& interfaces, uint32_t api_usage,
                             const HandlerTable* table) {
  ClassDesc desc;
  desc.clsid = Guid::FromName("clsid:" + name);
  desc.name = name;
  desc.interfaces = interfaces;
  desc.api_usage = api_usage;
  desc.factory = [table]() {
    return RefPtr<ComponentInstance>::Adopt(new ScriptedComponent(table));
  };
  return system->classes().Register(std::move(desc));
}

Result<Message> CallMethod(ObjectSystem& system, const ObjectRef& ref, MethodIndex method,
                           Message in) {
  Message out;
  const Status status = system.Call(ref, method, in, &out);
  if (!status.ok()) {
    return status;
  }
  return out;
}

Result<ObjectRef> CreateByName(ObjectSystem& system, const std::string& class_name,
                               const std::string& interface_name) {
  return system.CreateInstanceByName(class_name, interface_name);
}

}  // namespace coign
