#include "src/apps/benefits.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/apps/component_library.h"
#include "src/support/str_util.h"

namespace coign {
namespace {

struct Tuning {
  // Front end.
  int controls = 8;

  // Per employee operation: three record lists, each with caches.
  int caches_per_list = 6;
  // How many cache kinds are "chatty" with the front end (these are the
  // ones Coign moves to the client).
  int chatty_cache_kinds = 2;

  // Database pulls.
  int db_rows_bytes = 8 * 1024;
  int db_queries_per_list = 16;
  int cache_fill_bytes = 6 * 1024;

  // Front-end field reads from chatty caches.
  int field_reads = 24;
  int field_reply_bytes = 260;
  // Rules engine traffic: lists <-> rules <-> database (middle-heavy).
  int rule_checks = 12;
  // Form-side summary reads served by the lists themselves; these cross the
  // tiers under every distribution (the lists are anchored to the database).
  int list_summary_reads = 48;
  int rule_bytes = 300;

  // Report/graph rendering on the client.
  int graph_bytes = 24 * 1024;

  double db_cost = 500e-6;
  double cache_cost = 20e-6;
  double rule_cost = 80e-6;
  double ui_cost = 40e-6;
};

enum FormMethod : MethodIndex {
  kFormInit = 0,
  kFormViewEmployee = 1,
  kFormAddEmployee = 2,
  kFormDeleteEmployee = 3,
};
enum ControlMethod : MethodIndex { kControlInit = 0, kControlRefresh = 1 };
enum SinkMethod : MethodIndex { kSinkNotify = 0 };
enum ListMethod : MethodIndex {
  kListInit = 0,
  kListFetch = 1,
  kListAddRecord = 2,
  kListDeleteRecord = 3,
  kListReadSummary = 4,
};
enum CacheMethod : MethodIndex { kCacheFill = 0, kCacheRead = 1 };
enum SessionMethod : MethodIndex { kSessionConnect = 0, kSessionQuery = 1, kSessionExecute = 2 };
enum OdbcMethod : MethodIndex { kOdbcConnect = 0, kOdbcExec = 1 };
enum RulesMethod : MethodIndex { kRulesValidate = 0, kRulesRecalc = 1 };
enum GraphMethod : MethodIndex { kGraphRender = 0 };

ObjectRef SelfRef(const ScriptedComponent& self, const InterfaceId& iid) {
  return ObjectRef{self.id(), iid};
}

class BenefitsApp : public Application {
 public:
  std::string name() const override { return "Benefits"; }

  Status Install(ObjectSystem* system) override;
  ApplicationImage Image() const override;
  ClassPlacement DefaultPlacement(const ObjectSystem& system) const override;
  std::vector<Scenario> Scenarios() const override;

  bool IsInfrastructureClass(const std::string& class_name) const override {
    // The ODBC driver stands for the database connection Coign cannot
    // analyze; it is part of the database tier, not the 196 counted
    // components.
    return class_name == "BN.Odbc";
  }

 private:
  HandlerTable* NewTable() {
    tables_.push_back(std::make_unique<HandlerTable>());
    return tables_.back().get();
  }

  Tuning tuning_;
  InterfaceId iid_form_, iid_control_, iid_sink_, iid_list_, iid_cache_, iid_session_,
      iid_odbc_, iid_rules_, iid_graph_;
  std::vector<std::unique_ptr<HandlerTable>> tables_;
};

Status BenefitsApp::Install(ObjectSystem* system) {
  InterfaceRegistry& reg = system->interfaces();
  const Tuning& t = tuning_;

  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("BN.IForm")
                                         .Method("Init")
                                         .Out("ok", ValueKind::kBool)
                                         .Method("ViewEmployee")
                                         .In("id", ValueKind::kInt32)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("AddEmployee")
                                         .In("record", ValueKind::kRecord)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("DeleteEmployee")
                                         .In("id", ValueKind::kInt32)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("BN.IControl")
                                         .Method("Init")
                                         .In("parent", ValueKind::kInterface)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("Refresh")
                                         .In("data", ValueKind::kBlob)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("BN.IUiSink")
                                         .NonRemotable()
                                         .Method("Notify")
                                         .In("event", ValueKind::kInt32)
                                         .In("hwnd", ValueKind::kOpaque)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("BN.IList")
                                         .Method("Init")
                                         .In("session", ValueKind::kInterface)
                                         .In("rules", ValueKind::kInterface)
                                         .In("kind", ValueKind::kInt32)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("Fetch")
                                         .In("employee", ValueKind::kInt32)
                                         .Out("caches", ValueKind::kArray)
                                         .Method("AddRecord")
                                         .In("record", ValueKind::kRecord)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("DeleteRecord")
                                         .In("id", ValueKind::kInt32)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("ReadSummary")
                                         .Cacheable()
                                         .In("index", ValueKind::kInt32)
                                         .Out("value", ValueKind::kRecord)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("BN.ICache")
                                         .Method("Fill")
                                         .In("session", ValueKind::kInterface)
                                         .In("kind", ValueKind::kInt32)
                                         .Out("count", ValueKind::kInt32)
                                         .Method("Read")
                                         .Cacheable()
                                         .In("index", ValueKind::kInt32)
                                         .Out("value", ValueKind::kRecord)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("BN.ISession")
                                         .Method("Connect")
                                         .Out("ok", ValueKind::kBool)
                                         .Method("Query")
                                         .In("sql", ValueKind::kString)
                                         .Out("rows", ValueKind::kBlob)
                                         .Method("Execute")
                                         .In("sql", ValueKind::kString)
                                         .Out("count", ValueKind::kInt32)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("BN.IOdbc")
                                         .Method("SqlConnect")
                                         .Out("ok", ValueKind::kBool)
                                         .Method("SqlExec")
                                         .In("sql", ValueKind::kString)
                                         .Out("rows", ValueKind::kBlob)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("BN.IRules")
                                         .Method("Validate")
                                         .In("record", ValueKind::kRecord)
                                         .Out("ok", ValueKind::kBool)
                                         .Method("Recalc")
                                         .In("employee", ValueKind::kInt32)
                                         .In("session", ValueKind::kInterface)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(InterfaceBuilder("BN.IGraph")
                                         .Method("Render")
                                         .In("data", ValueKind::kBlob)
                                         .Out("ok", ValueKind::kBool)
                                         .Build()));

  iid_form_ = reg.LookupByName("BN.IForm")->iid;
  iid_control_ = reg.LookupByName("BN.IControl")->iid;
  iid_sink_ = reg.LookupByName("BN.IUiSink")->iid;
  iid_list_ = reg.LookupByName("BN.IList")->iid;
  iid_cache_ = reg.LookupByName("BN.ICache")->iid;
  iid_session_ = reg.LookupByName("BN.ISession")->iid;
  iid_odbc_ = reg.LookupByName("BN.IOdbc")->iid;
  iid_rules_ = reg.LookupByName("BN.IRules")->iid;
  iid_graph_ = reg.LookupByName("BN.IGraph")->iid;

  // --- ODBC driver (the unanalyzable database boundary) ----------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_odbc_, kOdbcConnect,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(1e-3);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_odbc_, kOdbcExec,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(t.db_cost);
                 const uint64_t seed = in.Find("sql")->AsString().size();
                 out->Add("rows",
                          Value::BlobOfSize(static_cast<uint64_t>(t.db_rows_bytes), seed));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, "BN.Odbc", {iid_odbc_},
                                                kApiOdbc | kApiStorage, table));
  }

  // --- Session manager ---------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_session_, kSessionConnect,
               [this](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 ObjectSystem& sys = *self.system();
                 Result<ObjectRef> odbc =
                     sys.CreateInstance(Guid::FromName("clsid:BN.Odbc"), iid_odbc_);
                 if (!odbc.ok()) {
                   return odbc.status();
                 }
                 self.SetRef("odbc", *odbc);
                 Result<Message> connected = CallMethod(sys, *odbc, kOdbcConnect);
                 if (!connected.ok()) {
                   return connected.status();
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_session_, kSessionQuery,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 sys.ChargeCompute(60e-6);
                 Message exec_in;
                 exec_in.Add("sql", *in.Find("sql"));
                 Result<Message> rows =
                     CallMethod(sys, self.GetRef("odbc"), kOdbcExec, exec_in);
                 if (!rows.ok()) {
                   return rows.status();
                 }
                 out->Add("rows", *rows->Find("rows"));
                 return Status::Ok();
               });
    table->Set(iid_session_, kSessionExecute,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 sys.ChargeCompute(60e-6);
                 Message exec_in;
                 exec_in.Add("sql", *in.Find("sql"));
                 Result<Message> rows =
                     CallMethod(sys, self.GetRef("odbc"), kOdbcExec, exec_in);
                 if (!rows.ok()) {
                   return rows.status();
                 }
                 out->Add("count", Value::FromInt32(4));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "BN.SessionMgr", {iid_session_}, kApiNone, table));
  }

  // --- Business rules -------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_rules_, kRulesValidate,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(t.rule_cost);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_rules_, kRulesRecalc,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 const ObjectRef session = in.Find("session")->AsInterface();
                 // Recalculation repeatedly consults the database.
                 for (int r = 0; r < t.rule_checks; ++r) {
                   Message query_in;
                   query_in.Add("sql", Value::FromString(StrFormat(
                                           "SELECT plan FROM benefits WHERE rule=%d", r)));
                   Result<Message> rows = CallMethod(sys, session, kSessionQuery, query_in);
                   if (!rows.ok()) {
                     return rows.status();
                   }
                   sys.ChargeCompute(t.rule_cost);
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "BN.BizRules", {iid_rules_}, kApiNone, table));
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "BN.Validator", {iid_rules_}, kApiNone, table));
  }

  // --- Caches ------------------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_cache_, kCacheFill,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 const ObjectRef session = in.Find("session")->AsInterface();
                 const int32_t kind = in.Find("kind")->AsInt32();
                 self.SetState("kind", Value::FromInt32(kind));
                 // One bulk pull from the database per cache.
                 Message query_in;
                 query_in.Add("sql", Value::FromString(StrFormat(
                                         "SELECT * FROM records WHERE kind=%d", kind)));
                 Result<Message> rows = CallMethod(sys, session, kSessionQuery, query_in);
                 if (!rows.ok()) {
                   return rows.status();
                 }
                 sys.ChargeCompute(t.cache_cost * 10);
                 // The cache pins the whole result set in memory.
                 sys.ChargeAllocation(64ull * static_cast<uint64_t>(t.field_reply_bytes));
                 out->Add("count", Value::FromInt32(64));
                 return Status::Ok();
               });
    table->Set(iid_cache_, kCacheRead,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(t.cache_cost);
                 out->Add("value",
                          Value::FromRecord({
                              {"index", Value::FromInt32(in.Find("index")->AsInt32())},
                              {"field", Value::BlobOfSize(
                                            static_cast<uint64_t>(t.field_reply_bytes),
                                            static_cast<uint64_t>(self.GetInt("kind")))},
                          }));
                 return Status::Ok();
               });
    for (int c = 0; c < t.caches_per_list; ++c) {
      COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, StrFormat("BN.Cache%02d", c),
                                                  {iid_cache_}, kApiNone, table));
    }
  }

  // --- Record lists ----------------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_list_, kListInit,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 self.SetRef("session", in.Find("session")->AsInterface());
                 self.SetRef("rules", in.Find("rules")->AsInterface());
                 self.SetState("kind", Value::FromInt32(in.Find("kind")->AsInt32()));
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(
        iid_list_, kListFetch,
        [this, t](ScriptedComponent& self, const Message& in, Message* out) {
          ObjectSystem& sys = *self.system();
          const int32_t employee = in.Find("employee")->AsInt32();
          const ObjectRef session = self.GetRef("session");
          // List-level queries.
          for (int q = 0; q < t.db_queries_per_list; ++q) {
            Message query_in;
            query_in.Add("sql",
                         Value::FromString(StrFormat(
                             "SELECT * FROM list WHERE emp=%d AND part=%d", employee, q)));
            Result<Message> rows = CallMethod(sys, session, kSessionQuery, query_in);
            if (!rows.ok()) {
              return rows.status();
            }
            sys.ChargeCompute(50e-6);
          }
          // Per-list caches, returned to the caller so the front end can
          // read fields from them directly.
          std::vector<Value> cache_refs;
          for (int c = 0; c < t.caches_per_list; ++c) {
            Result<ObjectRef> cache = sys.CreateInstance(
                Guid::FromName(StrFormat("clsid:BN.Cache%02d", c)), iid_cache_);
            if (!cache.ok()) {
              return cache.status();
            }
            self.SetRef(StrFormat("cache%02d", c), *cache);
            Message fill_in;
            fill_in.Add("session", Value::FromInterface(session));
            fill_in.Add("kind", Value::FromInt32(c));
            Result<Message> filled = CallMethod(sys, *cache, kCacheFill, fill_in);
            if (!filled.ok()) {
              return filled.status();
            }
            cache_refs.push_back(Value::FromInterface(*cache));
          }
          out->Add("caches", Value::FromArray(std::move(cache_refs)));
          return Status::Ok();
        });
    table->Set(iid_list_, kListAddRecord,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 Message validate_in;
                 validate_in.Add("record", *in.Find("record"));
                 Result<Message> valid =
                     CallMethod(sys, self.GetRef("rules"), kRulesValidate, validate_in);
                 if (!valid.ok()) {
                   return valid.status();
                 }
                 Message exec_in;
                 exec_in.Add("sql", Value::FromString("INSERT INTO records VALUES (...)"));
                 Result<Message> executed =
                     CallMethod(sys, self.GetRef("session"), kSessionExecute, exec_in);
                 if (!executed.ok()) {
                   return executed.status();
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_list_, kListDeleteRecord,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 (void)in;
                 Message exec_in;
                 exec_in.Add("sql", Value::FromString("DELETE FROM records WHERE id=..."));
                 Result<Message> executed =
                     CallMethod(sys, self.GetRef("session"), kSessionExecute, exec_in);
                 if (!executed.ok()) {
                   return executed.status();
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_list_, kListReadSummary,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(15e-6);
                 out->Add("value",
                          Value::FromRecord({
                              {"index", Value::FromInt32(in.Find("index")->AsInt32())},
                              {"summary", Value::BlobOfSize(96, 2)},
                          }));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "BN.EmployeeList", {iid_list_}, kApiNone, table));
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "BN.BenefitsList", {iid_list_}, kApiNone, table));
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "BN.DependentsList", {iid_list_}, kApiNone, table));
  }

  // --- Graph / report view -----------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_graph_, kGraphRender,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(1.5e-3);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "BN.GraphView", {iid_graph_}, kApiGui, table));
  }

  // --- Controls -----------------------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_control_, kControlInit,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 const ObjectRef parent = in.Find("parent")->AsInterface();
                 self.SetRef("parent", parent);
                 sys.ChargeCompute(40e-6);
                 Message notify_in;
                 notify_in.Add("event", Value::FromInt32(1));
                 notify_in.Add("hwnd", Value::FromOpaque(0x30000 + self.id()));
                 Result<Message> notified = CallMethod(sys, parent, kSinkNotify, notify_in);
                 if (!notified.ok()) {
                   return notified.status();
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_control_, kControlRefresh,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(40e-6);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    for (int c = 0; c < t.controls; ++c) {
      COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, StrFormat("BN.Control%02d", c),
                                                  {iid_control_}, kApiGui, table));
    }
  }

  // --- Main form -------------------------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    auto ensure_session = [this](ScriptedComponent& self) -> Status {
      if (self.HasRef("session")) {
        return Status::Ok();
      }
      ObjectSystem& sys = *self.system();
      // Controls + graph on the client.
      for (int c = 0; c < tuning_.controls; ++c) {
        Result<ObjectRef> control = sys.CreateInstance(
            Guid::FromName(StrFormat("clsid:BN.Control%02d", c)), iid_control_);
        if (!control.ok()) {
          return control.status();
        }
        self.SetRef(StrFormat("control%02d", c), *control);
        Message init_in;
        init_in.Add("parent", Value::FromInterface(SelfRef(self, iid_sink_)));
        Result<Message> inited = CallMethod(sys, *control, kControlInit, init_in);
        if (!inited.ok()) {
          return inited.status();
        }
      }
      Result<ObjectRef> graph =
          sys.CreateInstance(Guid::FromName("clsid:BN.GraphView"), iid_graph_);
      if (!graph.ok()) {
        return graph.status();
      }
      self.SetRef("graph", *graph);

      // Middle-tier session, rules, validator.
      Result<ObjectRef> session =
          sys.CreateInstance(Guid::FromName("clsid:BN.SessionMgr"), iid_session_);
      if (!session.ok()) {
        return session.status();
      }
      self.SetRef("session", *session);
      Result<Message> connected = CallMethod(sys, *session, kSessionConnect);
      if (!connected.ok()) {
        return connected.status();
      }
      Result<ObjectRef> rules =
          sys.CreateInstance(Guid::FromName("clsid:BN.BizRules"), iid_rules_);
      if (!rules.ok()) {
        return rules.status();
      }
      self.SetRef("rules", *rules);
      Result<ObjectRef> validator =
          sys.CreateInstance(Guid::FromName("clsid:BN.Validator"), iid_rules_);
      if (!validator.ok()) {
        return validator.status();
      }
      self.SetRef("validator", *validator);
      return Status::Ok();
    };

    auto view_employee = [this, t](ScriptedComponent& self, int32_t employee,
                                   Message* out) -> Status {
      ObjectSystem& sys = *self.system();
      const ObjectRef session = self.GetRef("session");
      const ObjectRef rules = self.GetRef("rules");
      static const char* kListClasses[] = {"BN.EmployeeList", "BN.BenefitsList",
                                           "BN.DependentsList"};
      for (int l = 0; l < 3; ++l) {
        Result<ObjectRef> list = sys.CreateInstance(
            Guid::FromName(StrFormat("clsid:%s", kListClasses[l])), iid_list_);
        if (!list.ok()) {
          return list.status();
        }
        self.SetRef(StrFormat("list_e%d_%d", employee, l), *list);
        Message init_in;
        init_in.Add("session", Value::FromInterface(session));
        init_in.Add("rules", Value::FromInterface(rules));
        init_in.Add("kind", Value::FromInt32(l));
        Result<Message> inited = CallMethod(sys, *list, kListInit, init_in);
        if (!inited.ok()) {
          return inited.status();
        }
        Message fetch_in;
        fetch_in.Add("employee", Value::FromInt32(employee));
        Result<Message> fetched = CallMethod(sys, *list, kListFetch, fetch_in);
        if (!fetched.ok()) {
          return fetched.status();
        }
        // The front end browses the employee list's caches field by field
        // (chatty); the caches of the other lists exist for the rules
        // engine and are barely touched from the client. The same cache
        // *classes* appear in both roles — only an instance-granularity
        // classifier can separate them (the ICOPS deficiency, paper §5).
        const auto& caches = fetched->Find("caches")->AsArray();
        for (size_t c = 0; c < caches.size(); ++c) {
          const ObjectRef cache = caches[c].AsInterface();
          const bool chatty = (l == 0);
          const int reads = chatty ? t.field_reads : 3;
          for (int r = 0; r < reads; ++r) {
            Message read_in;
            read_in.Add("index", Value::FromInt32(r));
            Result<Message> value = CallMethod(sys, cache, kCacheRead, read_in);
            if (!value.ok()) {
              return value.status();
            }
          }
        }
        // The form also reads row summaries straight from the list.
        for (int r = 0; r < t.list_summary_reads; ++r) {
          Message summary_in;
          summary_in.Add("index", Value::FromInt32(r));
          Result<Message> summary = CallMethod(sys, *list, kListReadSummary, summary_in);
          if (!summary.ok()) {
            return summary.status();
          }
        }
        // Rules recalculation stays chatty with the database.
        Message recalc_in;
        recalc_in.Add("employee", Value::FromInt32(employee));
        recalc_in.Add("session", Value::FromInterface(session));
        Result<Message> recalced = CallMethod(sys, rules, kRulesRecalc, recalc_in);
        if (!recalced.ok()) {
          return recalced.status();
        }
        // The recalc may have changed totals: the form refreshes the
        // displayed summary rows and fields — identical queries, which
        // per-interface caching can answer locally.
        for (int r = 0; r < 24; ++r) {
          Message summary_in;
          summary_in.Add("index", Value::FromInt32(r));
          Result<Message> summary = CallMethod(sys, *list, kListReadSummary, summary_in);
          if (!summary.ok()) {
            return summary.status();
          }
        }
        if (l == 0) {
          for (size_t c = 0; c < caches.size(); ++c) {
            const ObjectRef cache = caches[c].AsInterface();
            for (int r = 0; r < std::min(t.field_reads, 12); ++r) {
              Message read_in;
              read_in.Add("index", Value::FromInt32(r));
              Result<Message> value = CallMethod(sys, cache, kCacheRead, read_in);
              if (!value.ok()) {
                return value.status();
              }
            }
          }
        }
      }
      // Render the benefits graph on the client.
      Message graph_in;
      graph_in.Add("data", Value::BlobOfSize(static_cast<uint64_t>(t.graph_bytes),
                                             static_cast<uint64_t>(employee)));
      Result<Message> rendered =
          CallMethod(sys, self.GetRef("graph"), kGraphRender, graph_in);
      if (!rendered.ok()) {
        return rendered.status();
      }
      // Refresh the controls with small summaries.
      for (const ObjectRef& control : self.RefsWithPrefix("control")) {
        Message refresh_in;
        refresh_in.Add("data", Value::BlobOfSize(300, control.instance));
        Result<Message> refreshed =
            CallMethod(sys, control, kControlRefresh, refresh_in);
        if (!refreshed.ok()) {
          return refreshed.status();
        }
      }
      out->Add("ok", Value::FromBool(true));
      return Status::Ok();
    };

    table->Set(iid_form_, kFormInit,
               [ensure_session](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 COIGN_RETURN_IF_ERROR(ensure_session(self));
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_form_, kFormViewEmployee,
               [ensure_session, view_employee](ScriptedComponent& self, const Message& in,
                                               Message* out) {
                 COIGN_RETURN_IF_ERROR(ensure_session(self));
                 return view_employee(self, in.Find("id")->AsInt32(), out);
               });
    table->Set(iid_form_, kFormAddEmployee,
               [this, ensure_session](ScriptedComponent& self, const Message& in, Message* out) {
                 COIGN_RETURN_IF_ERROR(ensure_session(self));
                 ObjectSystem& sys = *self.system();
                 Result<ObjectRef> list = sys.CreateInstance(
                     Guid::FromName("clsid:BN.EmployeeList"), iid_list_);
                 if (!list.ok()) {
                   return list.status();
                 }
                 Message init_in;
                 init_in.Add("session", Value::FromInterface(self.GetRef("session")));
                 init_in.Add("rules", Value::FromInterface(self.GetRef("validator")));
                 init_in.Add("kind", Value::FromInt32(0));
                 Result<Message> inited = CallMethod(sys, *list, kListInit, init_in);
                 if (!inited.ok()) {
                   return inited.status();
                 }
                 Message add_in;
                 add_in.Add("record", *in.Find("record"));
                 Result<Message> added = CallMethod(sys, *list, kListAddRecord, add_in);
                 if (!added.ok()) {
                   return added.status();
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_form_, kFormDeleteEmployee,
               [this, ensure_session](ScriptedComponent& self, const Message& in, Message* out) {
                 COIGN_RETURN_IF_ERROR(ensure_session(self));
                 ObjectSystem& sys = *self.system();
                 Result<ObjectRef> list = sys.CreateInstance(
                     Guid::FromName("clsid:BN.EmployeeList"), iid_list_);
                 if (!list.ok()) {
                   return list.status();
                 }
                 Message init_in;
                 init_in.Add("session", Value::FromInterface(self.GetRef("session")));
                 init_in.Add("rules", Value::FromInterface(self.GetRef("validator")));
                 init_in.Add("kind", Value::FromInt32(0));
                 Result<Message> inited = CallMethod(sys, *list, kListInit, init_in);
                 if (!inited.ok()) {
                   return inited.status();
                 }
                 Message delete_in;
                 delete_in.Add("id", *in.Find("id"));
                 Result<Message> deleted =
                     CallMethod(sys, *list, kListDeleteRecord, delete_in);
                 if (!deleted.ok()) {
                   return deleted.status();
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    // The form also receives control notifications.
    table->Set(iid_sink_, kSinkNotify,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(5e-6);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, "BN.MainForm",
                                                {iid_form_, iid_sink_}, kApiGui, table));
  }

  return Status::Ok();
}

ApplicationImage BenefitsApp::Image() const {
  ApplicationImage image;
  image.name = "benefits.exe";
  image.binaries = {"benefits.exe", "bnlogic.dll", "bnlists.dll"};
  image.import_table = {"ole32.dll", "user32.dll", "odbc32.dll", "kernel32.dll"};
  return image;
}

ClassPlacement BenefitsApp::DefaultPlacement(const ObjectSystem& system) const {
  (void)system;
  // The programmer's 3-tier split: front end on the client, everything
  // else on the middle tier (our "server" machine).
  ClassPlacement placement(kServerMachine);
  placement.Place(Guid::FromName("clsid:BN.MainForm"), kClientMachine);
  placement.Place(Guid::FromName("clsid:BN.GraphView"), kClientMachine);
  for (int c = 0; c < 8; ++c) {
    placement.Place(Guid::FromName(StrFormat("clsid:BN.Control%02d", c)), kClientMachine);
  }
  return placement;
}

struct BenefitsTask {
  MethodIndex method = kFormViewEmployee;
  int32_t employee = 0;
};

Status RunBenefitsScenario(ObjectSystem& system, const std::vector<BenefitsTask>& tasks) {
  Result<ObjectRef> form = CreateByName(system, "BN.MainForm", "BN.IForm");
  if (!form.ok()) {
    return form.status();
  }
  Result<Message> inited = CallMethod(system, *form, kFormInit);
  if (!inited.ok()) {
    return inited.status();
  }
  for (const BenefitsTask& task : tasks) {
    Message in;
    if (task.method == kFormAddEmployee) {
      in.Add("record", Value::FromRecord({
                           {"name", Value::FromString("Avery Lee")},
                           {"id", Value::FromInt32(task.employee)},
                           {"plan", Value::FromString("PPO")},
                       }));
    } else {
      in.Add("id", Value::FromInt32(task.employee));
    }
    Result<Message> out = CallMethod(system, *form, task.method, in);
    if (!out.ok()) {
      return out.status();
    }
  }
  return Status::Ok();
}

std::vector<Scenario> BenefitsApp::Scenarios() const {
  auto scenario = [](std::string id, std::string description,
                     std::vector<BenefitsTask> tasks) {
    Scenario s;
    s.id = std::move(id);
    s.description = std::move(description);
    s.run = [tasks = std::move(tasks)](ObjectSystem& system, Rng& rng) {
      (void)rng;
      return RunBenefitsScenario(system, tasks);
    };
    return s;
  };

  return {
      scenario("b_vueone", "View records for an employee.",
               {BenefitsTask{kFormViewEmployee, 7}}),
      scenario("b_addone", "Add new employee.", {BenefitsTask{kFormAddEmployee, 99}}),
      scenario("b_delone", "Delete employee.", {BenefitsTask{kFormDeleteEmployee, 7}}),
      scenario("b_bigone", "All of the above in one scenario.",
               {BenefitsTask{kFormViewEmployee, 7}, BenefitsTask{kFormAddEmployee, 99},
                BenefitsTask{kFormDeleteEmployee, 7},
                // The bigone browses several employees, the dominant usage.
                BenefitsTask{kFormViewEmployee, 11}, BenefitsTask{kFormViewEmployee, 12},
                BenefitsTask{kFormViewEmployee, 13}, BenefitsTask{kFormViewEmployee, 14},
                BenefitsTask{kFormViewEmployee, 15}, BenefitsTask{kFormViewEmployee, 16},
                BenefitsTask{kFormViewEmployee, 17}}),
  };
}

}  // namespace

std::unique_ptr<Application> MakeBenefits() { return std::make_unique<BenefitsApp>(); }

}  // namespace coign
