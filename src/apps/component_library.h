// Scripted components: the building blocks of the synthetic applications.
//
// A ScriptedComponent dispatches each interface call to a handler looked up
// in a per-class HandlerTable owned by the Application. Handlers implement
// the component's behaviour: reading state, calling peers through interface
// refs, creating further components, charging compute. This is the moral
// equivalent of the application binaries in the paper's suite — opaque code
// the Coign runtime observes only through the component boundary.

#ifndef COIGN_SRC_APPS_COMPONENT_LIBRARY_H_
#define COIGN_SRC_APPS_COMPONENT_LIBRARY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/com/object_system.h"
#include "src/support/status.h"

namespace coign {

class ScriptedComponent;

using MethodHandler =
    std::function<Status(ScriptedComponent& self, const Message& in, Message* out)>;

class HandlerTable {
 public:
  void Set(const InterfaceId& iid, MethodIndex method, MethodHandler handler);
  const MethodHandler* Find(const InterfaceId& iid, MethodIndex method) const;

 private:
  static uint64_t Key(const InterfaceId& iid, MethodIndex method) {
    return iid.hi ^ (iid.lo * 3) ^ (static_cast<uint64_t>(method) << 48);
  }
  std::unordered_map<uint64_t, MethodHandler> handlers_;
};

class ScriptedComponent : public ComponentInstance {
 public:
  explicit ScriptedComponent(const HandlerTable* table) : table_(table) {}

  Status Dispatch(const InterfaceId& iid, MethodIndex method, const Message& in,
                  Message* out) override;

  // Per-instance scalar state.
  void SetState(const std::string& key, Value value) { state_[key] = std::move(value); }
  const Value* GetState(const std::string& key) const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;

  // Per-instance interface refs (collaborator links).
  void SetRef(const std::string& key, ObjectRef ref) { refs_[key] = ref; }
  ObjectRef GetRef(const std::string& key) const;
  bool HasRef(const std::string& key) const { return refs_.contains(key); }
  // All stored refs, for fan-out patterns.
  std::vector<ObjectRef> RefsWithPrefix(const std::string& prefix) const;

 private:
  const HandlerTable* table_;
  std::unordered_map<std::string, Value> state_;
  std::unordered_map<std::string, ObjectRef> refs_;
};

// Registers a scripted class. `table` must outlive the system.
Status RegisterScriptedClass(ObjectSystem* system, const std::string& name,
                             const std::vector<InterfaceId>& interfaces, uint32_t api_usage,
                             const HandlerTable* table);

// --- Call/creation sugar (used by handlers and scenario scripts) -----------

// Calls method on ref; returns the reply message.
Result<Message> CallMethod(ObjectSystem& system, const ObjectRef& ref, MethodIndex method,
                           Message in = Message());

// Creates an instance by names.
Result<ObjectRef> CreateByName(ObjectSystem& system, const std::string& class_name,
                               const std::string& interface_name);

}  // namespace coign

#endif  // COIGN_SRC_APPS_COMPONENT_LIBRARY_H_
