#include "src/apps/octarine.h"

#include <memory>
#include <vector>

#include "src/apps/component_library.h"
#include "src/support/str_util.h"

namespace coign {
namespace {

// ---------------------------------------------------------------------------
// Tuning: the traffic shape of the synthetic application. Sizes and counts
// are chosen so that the min-cut reproduces the paper's distribution shapes
// (Figures 5, 7, 8 and the Octarine rows of Table 4).
// ---------------------------------------------------------------------------
struct Tuning {
  // GUI forest: frame → containers → children → grandchildren.
  int gui_containers = 14;
  int gui_children = 10;
  int gui_grandchildren = 2;
  int widget_classes = 96;

  // File store access.
  int block_bytes = 1536;
  int blocks_per_page = 2;

  // Style table (text-property provider): parts scale with document size.
  int style_part_bytes = 2048;
  int max_style_parts = 40;

  // Text layout of the displayed page.
  int paras_per_page = 8;
  int chunks_per_para = 5;
  int text_chunk_bytes = 420;
  int page_text_bytes = 3072;     // Engine's bulk pull of the displayed page.
  int props_queries = 12;         // Engine → props per displayed page.
  int props_reply_bytes = 220;

  // Tables.
  int cells_per_page = 24;        // Scan granularity of the full-file scan.
  int cell_read_bytes = 400;      // One cell read from the store.
  int cell_content_bytes = 600;   // Reader → model content pull.
  int table_rows = 4;
  int table_cols = 6;
  int material_pages = 5;         // Pages of content the model materializes.

  // Page-placement negotiation (mixed documents only).
  int negotiation_rounds = 30;
  int proposal_bytes = 180;

  // Display.
  int view_page_bytes = 120000;
  int pageview_bytes = 8000;

  // Music documents.
  int music_bars = 12;
  int music_blob = 800;

  // Compute charges (seconds).
  double parse_block_cost = 120e-6;
  double widget_cost = 40e-6;
  double layout_para_cost = 400e-6;
  double cell_cost = 25e-6;
  double negotiate_cost = 30e-6;
  double render_cost = 2e-3;
};

// Method indices per interface.
enum AppMethod : MethodIndex { kAppNewDocument = 0, kAppOpenDocument = 1 };
enum StoreMethod : MethodIndex { kStoreOpen = 0, kStoreReadBlock = 1, kStoreClose = 2 };
enum ReaderMethod : MethodIndex {
  kReaderLoad = 0,
  kReaderReadPageText = 1,
  kReaderReadTableData = 2,
};
enum PropsMethod : MethodIndex { kPropsLoadStyleTable = 0, kPropsGetProps = 1 };
enum EngineMethod : MethodIndex { kEngineInit = 0, kEngineLayoutDocument = 1 };
enum ParaMethod : MethodIndex { kParaLayoutChunk = 0, kParaFinish = 1 };
enum TableMethod : MethodIndex { kTableBuild = 0, kTableNegotiate = 1 };
enum CellMethod : MethodIndex { kCellSetContent = 0, kCellMeasure = 1 };
enum RowMethod : MethodIndex { kRowBuild = 0 };
enum NegotiateMethod : MethodIndex { kNegPropose = 0 };
enum WidgetMethod : MethodIndex { kWidgetInit = 0, kWidgetPaint = 1 };
enum SinkMethod : MethodIndex { kSinkNotify = 0 };
enum ViewMethod : MethodIndex { kViewDisplay = 0 };
enum MusicMethod : MethodIndex { kMusicCompose = 0, kMusicRenderStaff = 1 };
enum DictMethod : MethodIndex { kDictPut = 0, kDictGet = 1 };

ObjectRef SelfRef(const ScriptedComponent& self, const InterfaceId& iid) {
  return ObjectRef{self.id(), iid};
}

// Records an operation with the undo log and annotates the entry the log
// hands back. The entry component is instantiated by the log while *this
// caller's* frames are on the stack.
Status RecordUndo(ObjectSystem& sys, const ObjectRef& undo, uint64_t op_bytes,
                  uint64_t note_bytes) {
  if (undo.IsNull()) {
    return Status::Ok();
  }
  Message record_in;
  record_in.Add("op", Value::BlobOfSize(op_bytes, op_bytes));
  Result<Message> recorded = CallMethod(sys, undo, 0, record_in);
  if (!recorded.ok()) {
    return recorded.status();
  }
  const ObjectRef entry = recorded->Find("entry")->AsInterface();
  Message note_in;
  note_in.Add("note", Value::BlobOfSize(note_bytes, note_bytes));
  Result<Message> annotated = CallMethod(sys, entry, 0, note_in);
  return annotated.ok() ? Status::Ok() : annotated.status();
}

class OctarineApp : public Application {
 public:
  std::string name() const override { return "Octarine"; }

  Status Install(ObjectSystem* system) override;
  ApplicationImage Image() const override;
  ClassPlacement DefaultPlacement(const ObjectSystem& system) const override;
  std::vector<Scenario> Scenarios() const override;

  bool IsInfrastructureClass(const std::string& class_name) const override {
    return class_name == "Octarine.FileStore";
  }

 private:
  Status RegisterInterfaces(ObjectSystem* system);
  Status RegisterClasses(ObjectSystem* system);
  HandlerTable* NewTable() {
    tables_.push_back(std::make_unique<HandlerTable>());
    return tables_.back().get();
  }

  Tuning tuning_;

  // Interface ids, filled during Install.
  InterfaceId iid_app_, iid_store_, iid_reader_, iid_props_, iid_engine_, iid_para_,
      iid_table_, iid_cell_, iid_row_, iid_negotiate_, iid_widget_, iid_sink_, iid_view_,
      iid_music_, iid_dict_, iid_undo_, iid_undo_entry_, iid_fmt_, iid_glyph_;

  std::vector<std::unique_ptr<HandlerTable>> tables_;
};

Status OctarineApp::RegisterInterfaces(ObjectSystem* system) {
  InterfaceRegistry& reg = system->interfaces();

  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IApp")
          .Method("NewDocument")
          .In("kind", ValueKind::kString)
          .Out("ok", ValueKind::kBool)
          .Method("OpenDocument")
          .In("kind", ValueKind::kString)
          .In("pages", ValueKind::kInt32)
          .In("tables", ValueKind::kInt32)
          .Out("ok", ValueKind::kBool)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IFileStore")
          .Method("Open")
          .In("name", ValueKind::kString)
          .Out("handle", ValueKind::kInt32)
          .Method("ReadBlock")
          .In("handle", ValueKind::kInt32)
          .In("offset", ValueKind::kInt64)
          .In("size", ValueKind::kInt32)
          .Out("data", ValueKind::kBlob)
          .Method("Close")
          .In("handle", ValueKind::kInt32)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IDocReader")
          .Method("Load")
          .In("store", ValueKind::kInterface)
          .In("kind", ValueKind::kString)
          .In("pages", ValueKind::kInt32)
          .In("tables", ValueKind::kInt32)
          .Out("meta", ValueKind::kRecord)
          .Method("ReadPageText")
          .In("page", ValueKind::kInt32)
          .In("chunk", ValueKind::kInt32)
          .Out("text", ValueKind::kBlob)
          .Method("ReadTableData")
          .In("table", ValueKind::kInt32)
          .In("cell", ValueKind::kInt32)
          .Out("data", ValueKind::kBlob)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.ITextProps")
          .Method("LoadStyleTable")
          .In("store", ValueKind::kInterface)
          .In("parts", ValueKind::kInt32)
          .Out("count", ValueKind::kInt32)
          .Method("GetProps")
          .Cacheable()
          .In("style", ValueKind::kInt32)
          .Out("props", ValueKind::kRecord)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.ITextEngine")
          .Method("Init")
          .In("reader", ValueKind::kInterface)
          .In("props", ValueKind::kInterface)
          .In("view", ValueKind::kInterface)
          .In("pageview", ValueKind::kInterface)
          .In("undo", ValueKind::kInterface)
          .Out("ok", ValueKind::kBool)
          .Method("LayoutDocument")
          .In("kind", ValueKind::kString)
          .In("pages", ValueKind::kInt32)
          .In("tables", ValueKind::kInt32)
          .Out("ok", ValueKind::kBool)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IParagraph")
          .Method("LayoutChunk")
          .In("text", ValueKind::kBlob)
          .In("props", ValueKind::kRecord)
          .Out("metrics", ValueKind::kRecord)
          .Method("Finish")
          .Out("metrics", ValueKind::kRecord)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.ITable")
          .Method("Build")
          .In("reader", ValueKind::kInterface)
          .In("view", ValueKind::kInterface)
          .In("undo", ValueKind::kInterface)
          .In("index", ValueKind::kInt32)
          .In("pages", ValueKind::kInt32)
          .In("grid_view", ValueKind::kBool)
          .Out("ok", ValueKind::kBool)
          .Method("Negotiate")
          .In("negotiator", ValueKind::kInterface)
          .In("engine", ValueKind::kInterface)
          .In("rounds", ValueKind::kInt32)
          .Out("ok", ValueKind::kBool)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.ITableCell")
          .Method("SetContent")
          .In("data", ValueKind::kBlob)
          .Out("ok", ValueKind::kBool)
          .Method("Measure")
          .Out("metrics", ValueKind::kRecord)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.ITableRow")
          .Method("Build")
          .In("reader", ValueKind::kInterface)
          .In("view", ValueKind::kInterface)
          .In("undo", ValueKind::kInterface)
          .In("table", ValueKind::kInt32)
          .In("row", ValueKind::kInt32)
          .In("grid_view", ValueKind::kBool)
          .Out("ok", ValueKind::kBool)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.INegotiate")
          .Method("Propose")
          .In("proposal", ValueKind::kBlob)
          .Out("counter", ValueKind::kBlob)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IWidget")
          .Method("Init")
          .In("parent", ValueKind::kInterface)
          .In("depth", ValueKind::kInt32)
          .In("slot", ValueKind::kInt32)
          .Out("ok", ValueKind::kBool)
          .Method("Paint")
          .In("region", ValueKind::kBlob)
          .Out("ok", ValueKind::kBool)
          .Build()));
  // GUI interconnect: opaque window handles — never remotable.
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IWidgetSink")
          .NonRemotable()
          .Method("Notify")
          .In("event", ValueKind::kInt32)
          .In("hwnd", ValueKind::kOpaque)
          .Out("ok", ValueKind::kBool)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IView")
          .Method("Display")
          .In("page", ValueKind::kBlob)
          .Out("ok", ValueKind::kBool)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IMusic")
          .Method("Compose")
          .In("bars", ValueKind::kInt32)
          .Out("ok", ValueKind::kBool)
          .Method("RenderStaff")
          .In("notes", ValueKind::kBlob)
          .Out("ok", ValueKind::kBool)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IFormatter")
          .Method("Format")
          .In("nesting", ValueKind::kInt32)
          .In("text", ValueKind::kBlob)
          .Out("ok", ValueKind::kBool)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IGlyphRun")
          .Method("Shape")
          .In("text", ValueKind::kBlob)
          .Out("advance", ValueKind::kRecord)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IUndo")
          .Method("Record")
          .In("op", ValueKind::kBlob)
          .Out("entry", ValueKind::kInterface)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IUndoEntry")
          .Method("Annotate")
          .In("note", ValueKind::kBlob)
          .Out("ok", ValueKind::kBool)
          .Build()));
  COIGN_RETURN_IF_ERROR(reg.Register(
      InterfaceBuilder("Octarine.IDictionary")
          .Method("Put")
          .In("key", ValueKind::kString)
          .In("value", ValueKind::kRecord)
          .Out("ok", ValueKind::kBool)
          .Method("Get")
          .In("key", ValueKind::kString)
          .Out("value", ValueKind::kRecord)
          .Build()));

  iid_app_ = reg.LookupByName("Octarine.IApp")->iid;
  iid_store_ = reg.LookupByName("Octarine.IFileStore")->iid;
  iid_reader_ = reg.LookupByName("Octarine.IDocReader")->iid;
  iid_props_ = reg.LookupByName("Octarine.ITextProps")->iid;
  iid_engine_ = reg.LookupByName("Octarine.ITextEngine")->iid;
  iid_para_ = reg.LookupByName("Octarine.IParagraph")->iid;
  iid_table_ = reg.LookupByName("Octarine.ITable")->iid;
  iid_cell_ = reg.LookupByName("Octarine.ITableCell")->iid;
  iid_row_ = reg.LookupByName("Octarine.ITableRow")->iid;
  iid_negotiate_ = reg.LookupByName("Octarine.INegotiate")->iid;
  iid_widget_ = reg.LookupByName("Octarine.IWidget")->iid;
  iid_sink_ = reg.LookupByName("Octarine.IWidgetSink")->iid;
  iid_view_ = reg.LookupByName("Octarine.IView")->iid;
  iid_music_ = reg.LookupByName("Octarine.IMusic")->iid;
  iid_dict_ = reg.LookupByName("Octarine.IDictionary")->iid;
  iid_undo_ = reg.LookupByName("Octarine.IUndo")->iid;
  iid_undo_entry_ = reg.LookupByName("Octarine.IUndoEntry")->iid;
  iid_fmt_ = reg.LookupByName("Octarine.IFormatter")->iid;
  iid_glyph_ = reg.LookupByName("Octarine.IGlyphRun")->iid;
  return Status::Ok();
}

Status OctarineApp::RegisterClasses(ObjectSystem* system) {
  const Tuning& t = tuning_;

  // --- File store (the server machine's file system) -----------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_store_, kStoreOpen,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(50e-6);
                 // Per-handle bookkeeping retained until kStoreClose.
                 self.system()->ChargeAllocation(256);
                 const int64_t handle = self.GetInt("next_handle", 1);
                 self.SetState("next_handle", Value::FromInt64(handle + 1));
                 out->Add("handle", Value::FromInt32(static_cast<int32_t>(handle)));
                 return Status::Ok();
               });
    table->Set(iid_store_, kStoreReadBlock,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(30e-6);
                 const int32_t size = in.Find("size")->AsInt32();
                 const int64_t offset = in.Find("offset")->AsInt64();
                 out->Add("data", Value::BlobOfSize(static_cast<uint64_t>(size),
                                                    static_cast<uint64_t>(offset)));
                 return Status::Ok();
               });
    table->Set(iid_store_, kStoreClose,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 (void)out;
                 self.system()->ChargeCompute(20e-6);
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, "Octarine.FileStore", {iid_store_},
                                                kApiStorage, table));
  }

  // --- Document reader ------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_reader_, kReaderLoad,
               [this, t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 const ObjectRef store = in.Find("store")->AsInterface();
                 const std::string& kind = in.Find("kind")->AsString();
                 const int32_t pages = in.Find("pages")->AsInt32();
                 const int32_t num_tables = in.Find("tables")->AsInt32();
                 self.SetRef("store", store);
                 self.SetState("pages", Value::FromInt32(pages));

                 Message open_in;
                 open_in.Add("name", Value::FromString("doc." + kind));
                 Result<Message> open_out = CallMethod(sys, store, kStoreOpen, open_in);
                 if (!open_out.ok()) {
                   return open_out.status();
                 }
                 const int32_t handle = open_out->Find("handle")->AsInt32();

                 auto read_block = [&sys, &self, store, handle](int64_t offset,
                                                                int32_t size) -> Status {
                   Message read_in;
                   read_in.Add("handle", Value::FromInt32(handle));
                   read_in.Add("offset", Value::FromInt64(offset));
                   read_in.Add("size", Value::FromInt32(size));
                   Result<Message> reply = CallMethod(sys, store, kStoreReadBlock, read_in);
                   if (!reply.ok()) {
                     return reply.status();
                   }
                   self.system()->ChargeCompute(120e-6);
                   // The reader buffers every block it reads for the life of
                   // the document, so its live state tracks document size.
                   self.system()->ChargeAllocation(static_cast<uint64_t>(size));
                   return Status::Ok();
                 };

                 int64_t offset = 0;
                 if (kind == "wp" || kind == "mixed") {
                   // Sequential block reads of the text stream.
                   for (int32_t p = 0; p < pages; ++p) {
                     for (int b = 0; b < t.blocks_per_page; ++b) {
                       COIGN_RETURN_IF_ERROR(read_block(offset, t.block_bytes));
                       offset += t.block_bytes;
                     }
                   }
                 }
                 if (kind == "table") {
                   // A table document is one large table spanning all pages;
                   // loading scans every cell (index chatter).
                   for (int32_t p = 0; p < pages; ++p) {
                     for (int c = 0; c < t.cells_per_page; ++c) {
                       COIGN_RETURN_IF_ERROR(read_block(offset, t.cell_read_bytes));
                       offset += t.cell_read_bytes;
                     }
                   }
                 }
                 if (kind == "mixed") {
                   // Embedded one-page tables.
                   for (int32_t tab = 0; tab < num_tables; ++tab) {
                     for (int c = 0; c < t.cells_per_page; ++c) {
                       COIGN_RETURN_IF_ERROR(read_block(offset, t.cell_read_bytes));
                       offset += t.cell_read_bytes;
                     }
                   }
                 }
                 if (kind == "music") {
                   for (int b = 0; b < 4; ++b) {
                     COIGN_RETURN_IF_ERROR(read_block(offset, t.block_bytes));
                     offset += t.block_bytes;
                   }
                 }

                 Message close_in;
                 close_in.Add("handle", Value::FromInt32(handle));
                 Result<Message> closed = CallMethod(sys, store, kStoreClose, close_in);
                 if (!closed.ok()) {
                   return closed.status();
                 }
                 out->Add("meta", Value::FromRecord({
                                      {"pages", Value::FromInt32(pages)},
                                      {"tables", Value::FromInt32(num_tables)},
                                  }));
                 return Status::Ok();
               });
    table->Set(iid_reader_, kReaderReadPageText,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 // Text is streamed to the layout engine one run at a time
                 // — the chatty pull that keeps the reader on the client
                 // for small documents.
                 self.system()->ChargeCompute(20e-6);
                 const int32_t page = in.Find("page")->AsInt32();
                 const int32_t chunk = in.Find("chunk")->AsInt32();
                 out->Add("text", Value::BlobOfSize(static_cast<uint64_t>(t.text_chunk_bytes),
                                                    static_cast<uint64_t>(page * 1000 + chunk)));
                 return Status::Ok();
               });
    table->Set(iid_reader_, kReaderReadTableData,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(40e-6);
                 const int32_t cell = in.Find("cell")->AsInt32();
                 out->Add("data",
                          Value::BlobOfSize(static_cast<uint64_t>(t.cell_content_bytes),
                                            static_cast<uint64_t>(cell)));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.DocReader", {iid_reader_}, kApiNone, table));
  }

  // --- Text property provider ----------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_props_, kPropsLoadStyleTable,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 const ObjectRef store = in.Find("store")->AsInterface();
                 const int32_t parts = in.Find("parts")->AsInt32();
                 Message open_in;
                 open_in.Add("name", Value::FromString("styles.tbl"));
                 Result<Message> open_out = CallMethod(sys, store, kStoreOpen, open_in);
                 if (!open_out.ok()) {
                   return open_out.status();
                 }
                 const int32_t handle = open_out->Find("handle")->AsInt32();
                 for (int32_t p = 0; p < parts; ++p) {
                   Message read_in;
                   read_in.Add("handle", Value::FromInt32(handle));
                   read_in.Add("offset", Value::FromInt64(p * t.style_part_bytes));
                   read_in.Add("size", Value::FromInt32(t.style_part_bytes));
                   Result<Message> reply = CallMethod(sys, store, kStoreReadBlock, read_in);
                   if (!reply.ok()) {
                     return reply.status();
                   }
                   sys.ChargeCompute(60e-6);
                   // Style tables stay resident after loading.
                   sys.ChargeAllocation(static_cast<uint64_t>(t.style_part_bytes));
                 }
                 out->Add("count", Value::FromInt32(parts * 16));
                 return Status::Ok();
               });
    table->Set(iid_props_, kPropsGetProps,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(15e-6);
                 const int32_t style = in.Find("style")->AsInt32();
                 out->Add("props", Value::FromRecord({
                                       {"font", Value::FromString("Bookman Old Style")},
                                       {"size", Value::FromInt32(10 + style % 4)},
                                       {"leading", Value::FromDouble(1.15)},
                                       {"kerning", Value::BlobOfSize(96, style)},
                                   }));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.TextProps", {iid_props_}, kApiNone, table));
  }

  // --- Paragraph -------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_para_, kParaLayoutChunk,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(t.layout_para_cost / t.chunks_per_para);
                 // Three line boxes of layout state per chunk.
                 self.system()->ChargeAllocation(3 * 64);
                 const int64_t lines = self.GetInt("lines") + 3;
                 self.SetState("lines", Value::FromInt64(lines));
                 out->Add("metrics", Value::FromRecord({
                                         {"lines", Value::FromInt64(lines)},
                                         {"height", Value::FromDouble(12.0 * lines)},
                                     }));
                 return Status::Ok();
               });
    table->Set(iid_para_, kParaFinish,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(20e-6);
                 out->Add("metrics", Value::FromRecord({
                                         {"lines", Value::FromInt64(self.GetInt("lines"))},
                                     }));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.Paragraph", {iid_para_}, kApiNone, table));
  }

  // --- Table cell ------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_cell_, kCellSetContent,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(t.cell_cost);
                 // The cell keeps its content until the document closes.
                 self.system()->ChargeAllocation(
                     static_cast<uint64_t>(t.cell_content_bytes));
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_cell_, kCellMeasure,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(t.cell_cost);
                 out->Add("metrics", Value::FromRecord({
                                         {"width", Value::FromDouble(48.0)},
                                         {"height", Value::FromDouble(14.0)},
                                     }));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.TableCell", {iid_cell_}, kApiNone, table));
  }

  // --- Table row --------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(
        iid_row_, kRowBuild,
        [this, t](ScriptedComponent& self, const Message& in, Message* out) {
          ObjectSystem& sys = *self.system();
          const ObjectRef reader = in.Find("reader")->AsInterface();
          const ObjectRef view = in.Find("view")->AsInterface();
          const ObjectRef undo = in.Find("undo")->AsInterface();
          const int32_t table_index = in.Find("table")->AsInt32();
          const int32_t row = in.Find("row")->AsInt32();
          const bool grid_view = in.Find("grid_view")->AsBool();
          for (int c = 0; c < t.table_cols; ++c) {
            Result<ObjectRef> cell = sys.CreateInstance(
                Guid::FromName("clsid:Octarine.TableCell"), iid_cell_);
            if (!cell.ok()) {
              return cell.status();
            }
            self.SetRef(StrFormat("cell%02d", c), *cell);
            // Pull the cell's content from the reader, then push it in.
            Message read_in;
            read_in.Add("table", Value::FromInt32(table_index));
            read_in.Add("cell", Value::FromInt32(row * t.table_cols + c));
            Result<Message> data = CallMethod(sys, reader, kReaderReadTableData, read_in);
            if (!data.ok()) {
              return data.status();
            }
            Message set_in;
            set_in.Add("data", *data->Find("data"));
            Result<Message> set = CallMethod(sys, *cell, kCellSetContent, set_in);
            if (!set.ok()) {
              return set.status();
            }
            // The grid view paints every materialized cell (borders +
            // content); a table placed inside a text flow does not paint
            // per cell here.
            if (grid_view) {
              for (int paint = 0; paint < 2; ++paint) {
                Message paint_in;
                paint_in.Add("page",
                             Value::BlobOfSize(280, static_cast<uint64_t>(row * 100 + c)));
                Result<Message> painted = CallMethod(sys, view, kViewDisplay, paint_in);
                if (!painted.ok()) {
                  return painted.status();
                }
              }
            }
          }
          COIGN_RETURN_IF_ERROR(RecordUndo(sys, undo, 120, 250));
          out->Add("ok", Value::FromBool(true));
          return Status::Ok();
        });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.TableRow", {iid_row_}, kApiNone, table));
  }

  // --- Table model -------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(
        iid_table_, kTableBuild,
        [this, t](ScriptedComponent& self, const Message& in, Message* out) {
          ObjectSystem& sys = *self.system();
          const ObjectRef reader = in.Find("reader")->AsInterface();
          const ObjectRef view = in.Find("view")->AsInterface();
          const ObjectRef undo = in.Find("undo")->AsInterface();
          const int32_t index = in.Find("index")->AsInt32();
          const int32_t pages = in.Find("pages")->AsInt32();
          const bool grid_view = in.Find("grid_view")->AsBool();
          // Materialize the first page of rows as components; pull content
          // for up to material_pages pages (virtualized beyond that).
          for (int r = 0; r < t.table_rows; ++r) {
            Result<ObjectRef> row =
                sys.CreateInstance(Guid::FromName("clsid:Octarine.TableRow"), iid_row_);
            if (!row.ok()) {
              return row.status();
            }
            self.SetRef(StrFormat("row%02d", r), *row);
            Message build_in;
            build_in.Add("reader", Value::FromInterface(reader));
            build_in.Add("view", Value::FromInterface(view));
            build_in.Add("undo", Value::FromInterface(undo));
            build_in.Add("table", Value::FromInt32(index));
            build_in.Add("row", Value::FromInt32(r));
            build_in.Add("grid_view", Value::FromBool(grid_view));
            Result<Message> built = CallMethod(sys, *row, kRowBuild, build_in);
            if (!built.ok()) {
              return built.status();
            }
          }
          // Content pulls for the virtualized remainder of the window.
          const int32_t window = std::min(pages, static_cast<int32_t>(t.material_pages));
          for (int32_t p = 1; p < window; ++p) {
            for (int c = 0; c < t.cells_per_page; ++c) {
              Message read_in;
              read_in.Add("table", Value::FromInt32(index));
              read_in.Add("cell", Value::FromInt32(p * t.cells_per_page + c));
              Result<Message> data = CallMethod(sys, reader, kReaderReadTableData, read_in);
              if (!data.ok()) {
                return data.status();
              }
              sys.ChargeCompute(t.cell_cost);
            }
          }
          // Render the virtualized remainder (the rows painted their own
          // cells). A table embedded in a text document renders as a cheap
          // placed block instead — "output from the page-placement
          // negotiation to the rest of the application is minimal".
          const int32_t render_calls =
              grid_view ? (window - 1) * static_cast<int32_t>(t.cells_per_page) : 2;
          for (int32_t r = 0; r < render_calls; ++r) {
            Message paint_in;
            paint_in.Add("page", Value::BlobOfSize(300, static_cast<uint64_t>(r)));
            Result<Message> painted = CallMethod(sys, view, kViewDisplay, paint_in);
            if (!painted.ok()) {
              return painted.status();
            }
          }
          COIGN_RETURN_IF_ERROR(RecordUndo(sys, undo, 300, 800));
          out->Add("ok", Value::FromBool(true));
          return Status::Ok();
        });
    table->Set(
        iid_table_, kTableNegotiate,
        [this, t](ScriptedComponent& self, const Message& in, Message* out) {
          ObjectSystem& sys = *self.system();
          const ObjectRef negotiator = in.Find("negotiator")->AsInterface();
          const ObjectRef engine = in.Find("engine")->AsInterface();
          const int32_t rounds = in.Find("rounds")->AsInt32();
          const std::vector<ObjectRef> rows = self.RefsWithPrefix("row");
          for (int32_t round = 0; round < rounds; ++round) {
            // Measure a cell (via its row owner), then trade proposals with
            // the negotiator, which consults the text engine.
            sys.ChargeCompute(t.negotiate_cost);
            Message proposal;
            proposal.Add("proposal",
                         Value::BlobOfSize(static_cast<uint64_t>(t.proposal_bytes), round));
            Result<Message> counter = CallMethod(sys, negotiator, kNegPropose, proposal);
            if (!counter.ok()) {
              return counter.status();
            }
            Message engine_prop;
            engine_prop.Add("proposal",
                            Value::BlobOfSize(static_cast<uint64_t>(t.proposal_bytes),
                                              round + 1000));
            Result<Message> engine_counter =
                CallMethod(sys, engine, kNegPropose, engine_prop);
            if (!engine_counter.ok()) {
              return engine_counter.status();
            }
          }
          out->Add("ok", Value::FromBool(true));
          return Status::Ok();
        });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.TableModel", {iid_table_}, kApiNone, table));
  }

  // --- Negotiator ----------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_negotiate_, kNegPropose,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(t.negotiate_cost);
                 const int64_t round = self.GetInt("round");
                 self.SetState("round", Value::FromInt64(round + 1));
                 out->Add("counter",
                          Value::BlobOfSize(static_cast<uint64_t>(t.proposal_bytes / 2),
                                            static_cast<uint64_t>(round)));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, "Octarine.PageNegotiator",
                                                {iid_negotiate_}, kApiNone, table));
  }

  // --- Text engine -----------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_engine_, kEngineInit,
               [this](ScriptedComponent& self, const Message& in, Message* out) {
                 self.SetRef("reader", in.Find("reader")->AsInterface());
                 self.SetRef("props", in.Find("props")->AsInterface());
                 self.SetRef("view", in.Find("view")->AsInterface());
                 self.SetRef("pageview", in.Find("pageview")->AsInterface());
                 self.SetRef("undo", in.Find("undo")->AsInterface());
                 Result<ObjectRef> formatter = self.system()->CreateInstance(
                     Guid::FromName("clsid:Octarine.Formatter"), iid_fmt_);
                 if (!formatter.ok()) {
                   return formatter.status();
                 }
                 self.SetRef("formatter", *formatter);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_engine_, kEngineLayoutDocument,
               [this, t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 const std::string& kind = in.Find("kind")->AsString();
                 const int32_t pages = in.Find("pages")->AsInt32();
                 const int32_t num_tables = in.Find("tables")->AsInt32();
                 const ObjectRef reader = self.GetRef("reader");
                 const ObjectRef props = self.GetRef("props");

                 // Style dictionaries (generic object dictionaries).
                 for (int d = 0; d < 3; ++d) {
                   const std::string dict_class =
                       StrFormat("Octarine.Dict%02d", (d * 7 + static_cast<int>(kind.size())) % 20);
                   Result<ObjectRef> dict = sys.CreateInstance(
                       Guid::FromName("clsid:" + dict_class), iid_dict_);
                   if (!dict.ok()) {
                     return dict.status();
                   }
                   self.SetRef(StrFormat("dict%d", d), *dict);
                   Message put_in;
                   put_in.Add("key", Value::FromString("defaults"));
                   put_in.Add("value", Value::FromRecord({
                                           {"margin", Value::FromDouble(1.0)},
                                           {"tabs", Value::FromInt32(8)},
                                       }));
                   Result<Message> put = CallMethod(sys, *dict, kDictPut, put_in);
                   if (!put.ok()) {
                     return put.status();
                   }
                 }

                 const bool has_text = (kind == "wp" || kind == "mixed");
                 const bool has_tables =
                     (kind == "table" && pages > 0) || (kind == "mixed" && num_tables > 0);

                 if (has_text) {
                   for (int q = 0; q < t.props_queries; ++q) {
                     Message props_in;
                     props_in.Add("style", Value::FromInt32(q % 7));
                     Result<Message> style = CallMethod(sys, props, kPropsGetProps, props_in);
                     if (!style.ok()) {
                       return style.status();
                     }
                   }
                   for (int p = 0; p < t.paras_per_page; ++p) {
                     Result<ObjectRef> para = sys.CreateInstance(
                         Guid::FromName("clsid:Octarine.Paragraph"), iid_para_);
                     if (!para.ok()) {
                       return para.status();
                     }
                     self.SetRef(StrFormat("para%02d", p), *para);
                     for (int c = 0; c < t.chunks_per_para; ++c) {
                       Message pull_in;
                       pull_in.Add("page", Value::FromInt32(0));
                       pull_in.Add("chunk", Value::FromInt32(p * t.chunks_per_para + c));
                       Result<Message> text =
                           CallMethod(sys, reader, kReaderReadPageText, pull_in);
                       if (!text.ok()) {
                         return text.status();
                       }
                       Message chunk_in;
                       chunk_in.Add("text", *text->Find("text"));
                       chunk_in.Add("props", Value::FromRecord({
                                                 {"style", Value::FromInt32(c % 5)},
                                             }));
                       Result<Message> metrics =
                           CallMethod(sys, *para, kParaLayoutChunk, chunk_in);
                       if (!metrics.ok()) {
                         return metrics.status();
                       }
                     }
                     Result<Message> done = CallMethod(sys, *para, kParaFinish);
                     if (!done.ok()) {
                       return done.status();
                     }
                     // Shape the paragraph; nesting varies with structure.
                     Message fmt_in;
                     fmt_in.Add("nesting", Value::FromInt32(p % 4));
                     fmt_in.Add("text", Value::BlobOfSize(220, static_cast<uint64_t>(p)));
                     Result<Message> formatted =
                         CallMethod(sys, self.GetRef("formatter"), 0, fmt_in);
                     if (!formatted.ok()) {
                       return formatted.status();
                     }
                     COIGN_RETURN_IF_ERROR(
                         RecordUndo(sys, self.GetRef("undo"), 180, 400));
                   }
                 }

                 if (has_tables) {
                   const int32_t count = (kind == "table") ? 1 : num_tables;
                   const int32_t table_pages = (kind == "table") ? pages : 1;
                   for (int32_t i = 0; i < count; ++i) {
                     Result<ObjectRef> model = sys.CreateInstance(
                         Guid::FromName("clsid:Octarine.TableModel"), iid_table_);
                     if (!model.ok()) {
                       return model.status();
                     }
                     self.SetRef(StrFormat("table%02d", i), *model);
                     Message build_in;
                     build_in.Add("reader", Value::FromInterface(reader));
                     build_in.Add("view", Value::FromInterface(self.GetRef("pageview")));
                     build_in.Add("undo", Value::FromInterface(self.GetRef("undo")));
                     build_in.Add("index", Value::FromInt32(i));
                     build_in.Add("pages", Value::FromInt32(table_pages));
                     build_in.Add("grid_view", Value::FromBool(kind == "table"));
                     Result<Message> built = CallMethod(sys, *model, kTableBuild, build_in);
                     if (!built.ok()) {
                       return built.status();
                     }
                     if (has_text) {
                       // Mixed documents: complex page-placement negotiation
                       // between the table components and the text engine.
                       Result<ObjectRef> negotiator = sys.CreateInstance(
                           Guid::FromName("clsid:Octarine.PageNegotiator"), iid_negotiate_);
                       if (!negotiator.ok()) {
                         return negotiator.status();
                       }
                       Message neg_in;
                       neg_in.Add("negotiator", Value::FromInterface(*negotiator));
                       neg_in.Add("engine", Value::FromInterface(SelfRef(self, iid_negotiate_)));
                       neg_in.Add("rounds", Value::FromInt32(t.negotiation_rounds));
                       Result<Message> negotiated =
                           CallMethod(sys, *model, kTableNegotiate, neg_in);
                       if (!negotiated.ok()) {
                         return negotiated.status();
                       }
                     }
                   }
                 }

                 // Display the first page.
                 sys.ChargeCompute(t.render_cost);
                 Message display_in;
                 display_in.Add("page", Value::BlobOfSize(
                                            static_cast<uint64_t>(t.view_page_bytes), 7));
                 Result<Message> displayed =
                     CallMethod(sys, self.GetRef("view"), kViewDisplay, display_in);
                 if (!displayed.ok()) {
                   return displayed.status();
                 }
                 Message thumb_in;
                 thumb_in.Add("page", Value::BlobOfSize(
                                          static_cast<uint64_t>(t.pageview_bytes), 9));
                 Result<Message> thumbed =
                     CallMethod(sys, self.GetRef("pageview"), kViewDisplay, thumb_in);
                 if (!thumbed.ok()) {
                   return thumbed.status();
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    // The engine also answers negotiation proposals (INegotiate).
    table->Set(iid_negotiate_, kNegPropose,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(t.negotiate_cost);
                 out->Add("counter",
                          Value::BlobOfSize(static_cast<uint64_t>(t.proposal_bytes / 2), 5));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, "Octarine.TextEngine",
                                                {iid_engine_, iid_negotiate_}, kApiNone,
                                                table));
  }

  // --- Formatter + glyph runs --------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_fmt_, 0,
               [this](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 sys.ChargeCompute(12e-6);
                 const int32_t nesting = in.Find("nesting")->AsInt32();
                 if (nesting > 0) {
                   Message nested_in;
                   nested_in.Add("nesting", Value::FromInt32(nesting - 1));
                   nested_in.Add("text", *in.Find("text"));
                   Result<Message> nested =
                       CallMethod(sys, SelfRef(self, iid_fmt_), 0, nested_in);
                   if (!nested.ok()) {
                     return nested.status();
                   }
                   out->Add("ok", Value::FromBool(true));
                   return Status::Ok();
                 }
                 Result<ObjectRef> glyphs = sys.CreateInstance(
                     Guid::FromName("clsid:Octarine.GlyphRun"), iid_glyph_);
                 if (!glyphs.ok()) {
                   return glyphs.status();
                 }
                 Message shape_in;
                 shape_in.Add("text", *in.Find("text"));
                 Result<Message> shaped = CallMethod(sys, *glyphs, 0, shape_in);
                 if (!shaped.ok()) {
                   return shaped.status();
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_glyph_, 0,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(30e-6);
                 out->Add("advance",
                          Value::FromRecord({
                              {"width", Value::FromDouble(
                                            static_cast<double>(in.Find("text")->AsBlob().size) *
                                            0.42)},
                          }));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.Formatter", {iid_fmt_}, kApiNone, table));
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.GlyphRun", {iid_glyph_}, kApiNone, table));
  }

  // --- Undo log (shared service) + undo entries -------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_undo_, 0,
               [this](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 sys.ChargeCompute(15e-6);
                 Result<ObjectRef> entry = sys.CreateInstance(
                     Guid::FromName("clsid:Octarine.UndoEntry"), iid_undo_entry_);
                 if (!entry.ok()) {
                   return entry.status();
                 }
                 const int64_t n = self.GetInt("entries");
                 self.SetState("entries", Value::FromInt64(n + 1));
                 self.SetRef(StrFormat("entry%lld", static_cast<long long>(n % 8)), *entry);
                 // Seed the entry with the recorded operation.
                 Message seed_in;
                 seed_in.Add("note", Value::BlobOfSize(in.Find("op")->AsBlob().size, 1));
                 Result<Message> seeded = CallMethod(sys, *entry, 0, seed_in);
                 if (!seeded.ok()) {
                   return seeded.status();
                 }
                 out->Add("entry", Value::FromInterface(*entry));
                 return Status::Ok();
               });
    table->Set(iid_undo_entry_, 0,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(8e-6);
                 const int64_t bytes =
                     self.GetInt("bytes") + static_cast<int64_t>(in.Find("note")->AsBlob().size);
                 self.SetState("bytes", Value::FromInt64(bytes));
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.UndoLog", {iid_undo_}, kApiNone, table));
    COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, "Octarine.UndoEntry",
                                                {iid_undo_entry_}, kApiNone, table));
  }

  // --- Dictionaries (20 generic object dictionary classes) -------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_dict_, kDictPut,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(10e-6);
                 self.SetState(in.Find("key")->AsString(), *in.Find("value"));
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_dict_, kDictGet,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 self.system()->ChargeCompute(5e-6);
                 const Value* value = self.GetState(in.Find("key")->AsString());
                 out->Add("value", value != nullptr
                                       ? *value
                                       : Value::FromRecord({{"missing", Value::FromBool(true)}}));
                 return Status::Ok();
               });
    for (int d = 0; d < 20; ++d) {
      COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, StrFormat("Octarine.Dict%02d", d),
                                                  {iid_dict_}, kApiNone, table));
    }
  }

  // --- Music ---------------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_music_, kMusicCompose,
               [this, t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 const int32_t bars = in.Find("bars")->AsInt32();
                 for (int s = 0; s < 2; ++s) {
                   Result<ObjectRef> staff = sys.CreateInstance(
                       Guid::FromName("clsid:Octarine.Staff"), iid_music_);
                   if (!staff.ok()) {
                     return staff.status();
                   }
                   self.SetRef(StrFormat("staff%d", s), *staff);
                   Message render_in;
                   render_in.Add("notes", Value::BlobOfSize(
                                              static_cast<uint64_t>(t.music_blob),
                                              static_cast<uint64_t>(bars + s)));
                   Result<Message> rendered =
                       CallMethod(sys, *staff, kMusicRenderStaff, render_in);
                   if (!rendered.ok()) {
                     return rendered.status();
                   }
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_music_, kMusicRenderStaff,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(300e-6);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.MusicModel", {iid_music_}, kApiNone, table));
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.Staff", {iid_music_}, kApiGui, table));
  }

  // --- Views ----------------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(iid_view_, kViewDisplay,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(t.render_cost);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.View", {iid_view_}, kApiGui, table));
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.PageView", {iid_view_}, kApiGui, table));
  }

  // --- GUI widgets -----------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    table->Set(
        iid_widget_, kWidgetInit,
        [this, t](ScriptedComponent& self, const Message& in, Message* out) {
          ObjectSystem& sys = *self.system();
          const ObjectRef parent = in.Find("parent")->AsInterface();
          const int32_t depth = in.Find("depth")->AsInt32();
          const int32_t slot = in.Find("slot")->AsInt32();
          self.SetRef("parent", parent);
          sys.ChargeCompute(t.widget_cost);
          // Announce ourselves to the parent over the non-remotable sink.
          Message notify_in;
          notify_in.Add("event", Value::FromInt32(1));
          notify_in.Add("hwnd", Value::FromOpaque(0x10000 + self.id()));
          Result<Message> notified = CallMethod(sys, parent, kSinkNotify, notify_in);
          if (!notified.ok()) {
            return notified.status();
          }
          // Containers (depth 1) create children; children (depth 2) create
          // grandchildren.
          const int children = depth == 1   ? t.gui_children
                               : depth == 2 ? t.gui_grandchildren
                                            : 0;
          for (int c = 0; c < children; ++c) {
            // Deterministic by position, never by instance id: the same
            // widget is built from the same class in every execution.
            const int class_index =
                14 + (slot * 7 + c * 5 + depth * 31) % (t.widget_classes - 14);
            Result<ObjectRef> child = sys.CreateInstance(
                Guid::FromName(StrFormat("clsid:Octarine.Widget%02d", class_index)),
                iid_widget_);
            if (!child.ok()) {
              return child.status();
            }
            self.SetRef(StrFormat("child%02d", c), *child);
            Message init_in;
            init_in.Add("parent", Value::FromInterface(SelfRef(self, iid_sink_)));
            init_in.Add("depth", Value::FromInt32(depth + 1));
            init_in.Add("slot", Value::FromInt32((slot * 10 + c + depth) % 997));
            Result<Message> inited = CallMethod(sys, *child, kWidgetInit, init_in);
            if (!inited.ok()) {
              return inited.status();
            }
          }
          out->Add("ok", Value::FromBool(true));
          return Status::Ok();
        });
    table->Set(iid_widget_, kWidgetPaint,
               [t](ScriptedComponent& self, const Message& in, Message* out) {
                 ObjectSystem& sys = *self.system();
                 const uint64_t region = in.Find("region")->AsBlob().size;
                 sys.ChargeCompute(t.widget_cost);
                 for (const ObjectRef& child : self.RefsWithPrefix("child")) {
                   Message paint_in;
                   paint_in.Add("region", Value::BlobOfSize(region / 3 + 64, child.instance));
                   Result<Message> painted = CallMethod(sys, child, kWidgetPaint, paint_in);
                   if (!painted.ok()) {
                     return painted.status();
                   }
                 }
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    table->Set(iid_sink_, kSinkNotify,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(5e-6);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    for (int w = 0; w < t.widget_classes; ++w) {
      // A quarter of the widget classes call Win32 GUI APIs directly; the
      // rest are bound to them by the non-remotable sink interface.
      const uint32_t api = (w % 4 == 0) ? kApiGui : kApiNone;
      COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, StrFormat("Octarine.Widget%02d", w),
                                                  {iid_widget_, iid_sink_}, api, table));
    }
    // The frame is the forest root (a container of containers).
    COIGN_RETURN_IF_ERROR(RegisterScriptedClass(system, "Octarine.Frame",
                                                {iid_widget_, iid_sink_}, kApiGui, table));
  }

  // --- Application root --------------------------------------------------------------
  {
    HandlerTable* table = NewTable();
    auto build_gui = [this, t](ScriptedComponent& self, const std::string& kind) -> Status {
      if (self.HasRef("frame")) {
        return Status::Ok();
      }
      ObjectSystem& sys = *self.system();
      // The user's first action decides which mode-specific toolbar the app
      // builds before the common forest — the input-driven instantiation
      // order the paper's straw-man classifier trips over.
      const int mode_widgets = kind == "wp"      ? 1
                               : kind == "table" ? 2
                               : kind == "music" ? 3
                                                 : 4;
      for (int m = 0; m < mode_widgets; ++m) {
        Result<ObjectRef> mode_widget = sys.CreateInstance(
            Guid::FromName(StrFormat("clsid:Octarine.Widget%02d", (m * 3 + 1) % 14)),
            iid_widget_);
        if (!mode_widget.ok()) {
          return mode_widget.status();
        }
        self.SetRef(StrFormat("mode%02d", m), *mode_widget);
        Message init_in;
        init_in.Add("parent", Value::FromInterface(SelfRef(self, iid_sink_)));
        init_in.Add("depth", Value::FromInt32(3));  // Leaf: no children.
        init_in.Add("slot", Value::FromInt32(900 + m));
        Result<Message> inited = CallMethod(sys, *mode_widget, kWidgetInit, init_in);
        if (!inited.ok()) {
          return inited.status();
        }
      }
      Result<ObjectRef> frame =
          sys.CreateInstance(Guid::FromName("clsid:Octarine.Frame"), iid_widget_);
      if (!frame.ok()) {
        return frame.status();
      }
      self.SetRef("frame", *frame);
      // The frame creates the containers itself.
      for (int c = 0; c < t.gui_containers; ++c) {
        Result<ObjectRef> container = sys.CreateInstance(
            Guid::FromName(StrFormat("clsid:Octarine.Widget%02d", c % 14)), iid_widget_);
        if (!container.ok()) {
          return container.status();
        }
        Message init_in;
        init_in.Add("parent", Value::FromInterface(ObjectRef{frame->instance, iid_sink_}));
        init_in.Add("depth", Value::FromInt32(1));
        init_in.Add("slot", Value::FromInt32(c));
        Result<Message> inited = CallMethod(sys, *container, kWidgetInit, init_in);
        if (!inited.ok()) {
          return inited.status();
        }
        self.SetRef(StrFormat("container%02d", c), *container);
      }
      Result<ObjectRef> view =
          sys.CreateInstance(Guid::FromName("clsid:Octarine.View"), iid_view_);
      if (!view.ok()) {
        return view.status();
      }
      self.SetRef("view", *view);
      Result<ObjectRef> pageview =
          sys.CreateInstance(Guid::FromName("clsid:Octarine.PageView"), iid_view_);
      if (!pageview.ok()) {
        return pageview.status();
      }
      self.SetRef("pageview", *pageview);
      // One paint pass over the forest.
      for (const ObjectRef& container : self.RefsWithPrefix("container")) {
        Message paint_in;
        paint_in.Add("region", Value::BlobOfSize(1024, container.instance));
        Result<Message> painted = CallMethod(sys, container, kWidgetPaint, paint_in);
        if (!painted.ok()) {
          return painted.status();
        }
      }
      return Status::Ok();
    };

    auto open_document = [this, t, build_gui](ScriptedComponent& self, const std::string& kind,
                                              int32_t pages, int32_t num_tables,
                                              Message* out) -> Status {
      ObjectSystem& sys = *self.system();
      COIGN_RETURN_IF_ERROR(build_gui(self, kind));
      if (!self.HasRef("undo")) {
        Result<ObjectRef> undo =
            sys.CreateInstance(Guid::FromName("clsid:Octarine.UndoLog"), iid_undo_);
        if (!undo.ok()) {
          return undo.status();
        }
        self.SetRef("undo", *undo);
      }

      if (kind == "music") {
        Result<ObjectRef> music =
            sys.CreateInstance(Guid::FromName("clsid:Octarine.MusicModel"), iid_music_);
        if (!music.ok()) {
          return music.status();
        }
        Message compose_in;
        compose_in.Add("bars", Value::FromInt32(t.music_bars));
        Result<Message> composed = CallMethod(sys, *music, kMusicCompose, compose_in);
        if (!composed.ok()) {
          return composed.status();
        }
        COIGN_RETURN_IF_ERROR(RecordUndo(sys, self.GetRef("undo"), 400, 600));
        out->Add("ok", Value::FromBool(true));
        return Status::Ok();
      }

      Result<ObjectRef> store =
          sys.CreateInstance(Guid::FromName("clsid:Octarine.FileStore"), iid_store_);
      if (!store.ok()) {
        return store.status();
      }
      Result<ObjectRef> reader =
          sys.CreateInstance(Guid::FromName("clsid:Octarine.DocReader"), iid_reader_);
      if (!reader.ok()) {
        return reader.status();
      }
      Message load_in;
      load_in.Add("store", Value::FromInterface(*store));
      load_in.Add("kind", Value::FromString(kind));
      load_in.Add("pages", Value::FromInt32(pages));
      load_in.Add("tables", Value::FromInt32(num_tables));
      Result<Message> meta = CallMethod(sys, *reader, kReaderLoad, load_in);
      if (!meta.ok()) {
        return meta.status();
      }

      // Only text-bearing documents carry style tables.
      ObjectRef props_ref;
      if (kind == "wp" || kind == "mixed") {
        Result<ObjectRef> props =
            sys.CreateInstance(Guid::FromName("clsid:Octarine.TextProps"), iid_props_);
        if (!props.ok()) {
          return props.status();
        }
        props_ref = *props;
        const int32_t style_parts =
            std::min(static_cast<int32_t>(t.max_style_parts), pages + 2);
        Message styles_in;
        styles_in.Add("store", Value::FromInterface(*store));
        styles_in.Add("parts", Value::FromInt32(style_parts));
        Result<Message> styles = CallMethod(sys, props_ref, kPropsLoadStyleTable, styles_in);
        if (!styles.ok()) {
          return styles.status();
        }
      }

      Result<ObjectRef> engine =
          sys.CreateInstance(Guid::FromName("clsid:Octarine.TextEngine"), iid_engine_);
      if (!engine.ok()) {
        return engine.status();
      }
      Message init_in;
      init_in.Add("reader", Value::FromInterface(*reader));
      init_in.Add("props", Value::FromInterface(props_ref));
      init_in.Add("view", Value::FromInterface(self.GetRef("view")));
      init_in.Add("pageview", Value::FromInterface(self.GetRef("pageview")));
      init_in.Add("undo", Value::FromInterface(self.GetRef("undo")));
      Result<Message> inited = CallMethod(sys, *engine, kEngineInit, init_in);
      if (!inited.ok()) {
        return inited.status();
      }
      Message layout_in;
      layout_in.Add("kind", Value::FromString(kind));
      layout_in.Add("pages", Value::FromInt32(pages));
      layout_in.Add("tables", Value::FromInt32(num_tables));
      Result<Message> laid_out = CallMethod(sys, *engine, kEngineLayoutDocument, layout_in);
      if (!laid_out.ok()) {
        return laid_out.status();
      }
      COIGN_RETURN_IF_ERROR(RecordUndo(sys, self.GetRef("undo"), 500, 1500));
      out->Add("ok", Value::FromBool(true));
      return Status::Ok();
    };

    table->Set(iid_app_, kAppNewDocument,
               [open_document](ScriptedComponent& self, const Message& in, Message* out) {
                 const std::string& kind = in.Find("kind")->AsString();
                 // New documents have a one-page template read from storage.
                 return open_document(self, kind, /*pages=*/1, /*tables=*/0, out);
               });
    table->Set(iid_app_, kAppOpenDocument,
               [open_document](ScriptedComponent& self, const Message& in, Message* out) {
                 return open_document(self, in.Find("kind")->AsString(),
                                      in.Find("pages")->AsInt32(),
                                      in.Find("tables")->AsInt32(), out);
               });
    // The app is also a widget sink (its mode toolbar reports to it).
    table->Set(iid_sink_, kSinkNotify,
               [](ScriptedComponent& self, const Message& in, Message* out) {
                 (void)in;
                 self.system()->ChargeCompute(5e-6);
                 out->Add("ok", Value::FromBool(true));
                 return Status::Ok();
               });
    COIGN_RETURN_IF_ERROR(
        RegisterScriptedClass(system, "Octarine.App", {iid_app_, iid_sink_}, kApiGui, table));
  }

  return Status::Ok();
}

Status OctarineApp::Install(ObjectSystem* system) {
  COIGN_RETURN_IF_ERROR(RegisterInterfaces(system));
  return RegisterClasses(system);
}

ApplicationImage OctarineApp::Image() const {
  ApplicationImage image;
  image.name = "octarine.exe";
  image.binaries = {"octarine.exe", "octext.dll", "octtbl.dll", "octmus.dll", "octgui.dll"};
  image.import_table = {"ole32.dll", "user32.dll", "gdi32.dll", "kernel32.dll"};
  return image;
}

ClassPlacement OctarineApp::DefaultPlacement(const ObjectSystem& system) const {
  (void)system;
  // As shipped: a desktop application, everything on the client; only the
  // file server (where the data files live) is remote.
  ClassPlacement placement(kClientMachine);
  placement.Place(Guid::FromName("clsid:Octarine.FileStore"), kServerMachine);
  return placement;
}

// --- Scenario scripts --------------------------------------------------------

Status RunOctarineTask(ObjectSystem& system, ObjectRef app, const std::string& kind,
                       int32_t pages, int32_t tables, bool create_new) {
  const InterfaceDesc* iapp = system.interfaces().LookupByName("Octarine.IApp");
  (void)iapp;
  Message in;
  if (create_new) {
    in.Add("kind", Value::FromString(kind));
    Result<Message> out = CallMethod(system, app, kAppNewDocument, in);
    return out.ok() ? Status::Ok() : out.status();
  }
  in.Add("kind", Value::FromString(kind));
  in.Add("pages", Value::FromInt32(pages));
  in.Add("tables", Value::FromInt32(tables));
  Result<Message> out = CallMethod(system, app, kAppOpenDocument, in);
  return out.ok() ? Status::Ok() : out.status();
}

Result<ObjectRef> LaunchOctarine(ObjectSystem& system) {
  return CreateByName(system, "Octarine.App", "Octarine.IApp");
}

// One task description: (kind, pages, tables, create_new).
struct OctarineTask {
  std::string kind;
  int32_t pages = 0;
  int32_t tables = 0;
  bool create_new = false;
};

Status RunOctarineScenario(ObjectSystem& system, const std::vector<OctarineTask>& tasks) {
  Result<ObjectRef> app = LaunchOctarine(system);
  if (!app.ok()) {
    return app.status();
  }
  for (const OctarineTask& task : tasks) {
    COIGN_RETURN_IF_ERROR(
        RunOctarineTask(system, *app, task.kind, task.pages, task.tables, task.create_new));
  }
  return Status::Ok();
}

std::vector<Scenario> OctarineApp::Scenarios() const {
  auto scenario = [](std::string id, std::string description,
                     std::vector<OctarineTask> tasks) {
    Scenario s;
    s.id = std::move(id);
    s.description = std::move(description);
    s.run = [tasks = std::move(tasks)](ObjectSystem& system, Rng& rng) {
      (void)rng;
      return RunOctarineScenario(system, tasks);
    };
    return s;
  };

  const OctarineTask new_doc{"wp", 0, 0, true};
  const OctarineTask new_mus{"music", 0, 0, true};
  const OctarineTask new_tbl{"table", 0, 0, true};
  const OctarineTask old_tb0{"table", 5, 0, false};
  const OctarineTask old_tb3{"table", 150, 0, false};
  const OctarineTask old_wp0{"wp", 5, 0, false};
  const OctarineTask old_wp3{"wp", 13, 0, false};
  const OctarineTask old_wp7{"wp", 208, 0, false};
  const OctarineTask old_bth{"mixed", 5, 8, false};

  return {
      scenario("o_newdoc", "Create text document.", {new_doc}),
      scenario("o_newmus", "Create music document.", {new_mus}),
      scenario("o_newtbl", "Create table document.", {new_tbl}),
      scenario("o_oldtb0", "View 5-page table.", {old_tb0}),
      scenario("o_oldtb3", "View 150-page table.", {old_tb3}),
      scenario("o_oldwp0", "View 5-page text document.", {old_wp0}),
      scenario("o_oldwp3", "View 13-page text document.", {old_wp3}),
      scenario("o_oldwp7", "View 208-page text document.", {old_wp7}),
      scenario("o_oldbth", "View 5-page text doc. with tables.", {old_bth}),
      scenario("o_offtb3", "o_newdoc then o_oldtb3.", {new_doc, old_tb3}),
      scenario("o_offwp7", "o_newdoc then o_oldwp7.", {new_doc, old_wp7}),
      scenario("o_bigone", "All of the above in one scenario.",
               {new_doc, new_mus, new_tbl, old_tb0, old_tb3, old_wp0, old_wp3, old_wp7,
                old_bth}),
      // The paper's Figure 8 workload: a 5-page text document with fewer
      // than a dozen small embedded tables.
      scenario("o_mixed9", "View 5-page text doc. with nine tables (Figure 8).",
               {OctarineTask{"mixed", 5, 9, false}}),
      // Figure 5's workload: a 35-page text-only document.
      scenario("o_fig5", "Load first page of a 35-page text document (Figure 5).",
               {OctarineTask{"wp", 35, 0, false}}),
  };
}

}  // namespace

std::unique_ptr<Application> MakeOctarine() { return std::make_unique<OctarineApp>(); }

}  // namespace coign
