// Corporate Benefits Sample: a synthetic counterpart of the MSDN 3-tier
// client/server demonstration application (Visual Basic front end, C++
// middle tier of about a dozen component classes, ODBC database access).
//
// Structural signatures reproduced (see DESIGN.md §2):
//   * The programmer's 3-tier default: the front end on the client,
//     business logic on the middle tier, the database behind an ODBC
//     connection Coign cannot analyze (pinned by static analysis).
//   * Middle-tier caching components that pull results from the database
//     once and then answer many small queries from the front end — the
//     components Coign profitably moves to the client (Figure 6, ~35 %
//     communication reduction).

#ifndef COIGN_SRC_APPS_BENEFITS_H_
#define COIGN_SRC_APPS_BENEFITS_H_

#include <memory>

#include "src/apps/app.h"

namespace coign {

std::unique_ptr<Application> MakeBenefits();

}  // namespace coign

#endif  // COIGN_SRC_APPS_BENEFITS_H_
