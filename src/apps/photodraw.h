// PhotoDraw: a synthetic counterpart of Microsoft PhotoDraw 2000 ("a
// consumer application for manipulating digital images ... approximately
// 112 COM component classes in 1.8 million lines of C++").
//
// Structural signatures reproduced (see DESIGN.md §2):
//   * A hierarchy of sprite-cache components managing pixels for subsets of
//     the composition, passing shared-memory region pointers opaquely
//     through non-remotable interfaces — the ~50 non-distributable
//     interfaces of Figure 4 that pin the sprite caches to the GUI.
//   * A document reader pulling multi-megabyte compositions from the file
//     store, plus high-level property sets created directly from file data
//     with larger input than output — the eight components Coign places on
//     the server in Figure 4.

#ifndef COIGN_SRC_APPS_PHOTODRAW_H_
#define COIGN_SRC_APPS_PHOTODRAW_H_

#include <memory>

#include "src/apps/app.h"

namespace coign {

std::unique_ptr<Application> MakePhotoDraw();

}  // namespace coign

#endif  // COIGN_SRC_APPS_PHOTODRAW_H_
