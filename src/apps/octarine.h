// Octarine: a synthetic counterpart of the paper's component-based word
// processor ("designed as a prototype to explore the limits of component
// granularity ... approximately 150 classes of components ... manipulates
// three major types of documents: word-processing, sheet music, and
// table").
//
// Structural signatures reproduced (see DESIGN.md §2):
//   * A GUI forest of hundreds of widget instances drawn from dozens of
//     widget classes, interconnected by a non-remotable sink interface.
//   * A document reader that pulls the document from the server's file
//     store in small blocks, and a text-property provider that pulls a
//     style table — the two components Coign moves to the server for
//     text documents (Figure 5).
//   * Table documents whose full-file scan is much chattier than the
//     materialized first-page content (Figures 7, o_oldtb3 savings).
//   * Page-placement negotiation between table and text components in
//     mixed documents, binding the whole layout cluster to the reader
//     side (Figure 8).

#ifndef COIGN_SRC_APPS_OCTARINE_H_
#define COIGN_SRC_APPS_OCTARINE_H_

#include <memory>

#include "src/apps/app.h"

namespace coign {

std::unique_ptr<Application> MakeOctarine();

}  // namespace coign

#endif  // COIGN_SRC_APPS_OCTARINE_H_
