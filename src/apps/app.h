// The application model: what Coign sees of a program.
//
// An Application installs its component classes and interfaces into an
// ObjectSystem, describes its binary image (for the rewriter path), ships a
// developer default distribution, and provides the Table 1 scenario scripts
// that drive it. The three applications of the paper's suite — PhotoDraw,
// Octarine, and the Corporate Benefits Sample — are synthetic counterparts
// with the same structural signatures (see DESIGN.md §2).

#ifndef COIGN_SRC_APPS_APP_H_
#define COIGN_SRC_APPS_APP_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/com/object_system.h"
#include "src/runtime/binary_rewriter.h"
#include "src/sim/class_placement.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace coign {

struct Scenario {
  std::string id;           // Table 1 id, e.g. "o_oldtb3".
  std::string description;  // Table 1 description.
  // Drives the application: instantiates roots and invokes entry methods.
  std::function<Status(ObjectSystem&, Rng&)> run;
};

class Application {
 public:
  virtual ~Application() = default;

  virtual std::string name() const = 0;

  // Registers interfaces and component classes. The Application must
  // outlive every ObjectSystem it is installed into (component handlers
  // reference storage owned by the Application).
  virtual Status Install(ObjectSystem* system) = 0;

  // The modeled binary files of the application.
  virtual ApplicationImage Image() const = 0;

  // The distribution the developer shipped (Table 4's "Default" column).
  virtual ClassPlacement DefaultPlacement(const ObjectSystem& system) const = 0;

  virtual std::vector<Scenario> Scenarios() const = 0;

  // True for classes that model machine infrastructure rather than
  // application components (e.g. the server's file store); figure counts
  // exclude them.
  virtual bool IsInfrastructureClass(const std::string& class_name) const {
    (void)class_name;
    return false;
  }

  Result<Scenario> FindScenario(const std::string& id) const;
};

}  // namespace coign

#endif  // COIGN_SRC_APPS_APP_H_
