// Usage-drift detection — the paper's §6 future-work mechanism, built out:
//
// "In the future, Coign could automatically decide when usage differs
// significantly from profiled scenarios and silently enable profiling to
// re-optimize the distribution. ... The lightweight version of the runtime
// ... could count messages between components with only slight additional
// overhead. Run time message counts could be compared with related message
// counts from the profiling scenarios to recognize changes in application
// usage."
//
// MessageCounts is the cheap per-pair counter the lightweight runtime
// maintains (no parameter walking, no byte measurement — just counts);
// DetectDrift compares it against the profile the distribution was chosen
// from and recommends re-profiling when the usage pattern diverges.

#ifndef COIGN_SRC_RUNTIME_DRIFT_H_
#define COIGN_SRC_RUNTIME_DRIFT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/classify/descriptor.h"
#include "src/profile/icc_profile.h"

namespace coign {

class MessageCounts {
 public:
  void Record(ClassificationId src, ClassificationId dst, uint64_t messages = 1);

  uint64_t total_messages() const { return total_; }
  uint64_t CountOf(ClassificationId src, ClassificationId dst) const;

  const std::unordered_map<uint64_t, uint64_t>& pairs() const { return pairs_; }

  void Clear() {
    pairs_.clear();
    total_ = 0;
  }

  // Stable pair key (directionless).
  static uint64_t PairKeyOf(ClassificationId src, ClassificationId dst);

 private:
  std::unordered_map<uint64_t, uint64_t> pairs_;
  uint64_t total_ = 0;
};

// Extracts the profile's per-pair message counts in MessageCounts form.
MessageCounts CountsFromProfile(const IccProfile& profile);

struct DriftReport {
  // Cosine similarity between the normalized pair-count vectors; 1 means
  // the runtime communicates exactly like the profiling scenarios did.
  double similarity = 1.0;
  uint64_t observed_messages = 0;
  // Fraction of observed messages on pairs the profile never saw at all —
  // the strongest signal that the user is doing something new.
  double unprofiled_fraction = 0.0;
  bool reprofile_recommended = false;

  std::string ToString() const;
};

struct DriftOptions {
  double similarity_threshold = 0.85;
  double unprofiled_threshold = 0.05;
  // Below this many observed messages, no judgment is made.
  uint64_t min_messages = 100;
};

DriftReport DetectDrift(const IccProfile& profile, const MessageCounts& observed,
                        const DriftOptions& options = {});

}  // namespace coign

#endif  // COIGN_SRC_RUNTIME_DRIFT_H_
