#include "src/runtime/rte.h"

#include <cassert>

namespace coign {
namespace {

uint64_t InterfaceKey(const ObjectRef& ref) {
  return ref.instance * 0x9e3779b97f4a7c15ull ^ ref.iid.hi ^ (ref.iid.lo << 1);
}

}  // namespace

CoignRuntime::CoignRuntime(ObjectSystem* system, const ConfigurationRecord& config)
    : system_(system),
      config_(config),
      classifier_(MakeClassifier(config.classifier_kind, config.classifier_depth)),
      client_factory_(kClientMachine, &config_.distribution),
      server_factory_(kServerMachine, &config_.distribution) {
  assert(system_ != nullptr);
  client_factory_.SetPeer(&server_factory_);
  server_factory_.SetPeer(&client_factory_);
  if (!config_.classifier_table.empty()) {
    // Restore the profiled classification table so run-time instantiations
    // map onto the ids the analysis engine used.
    const Status imported = classifier_->ImportDescriptors(config_.classifier_table);
    assert(imported.ok());
    (void)imported;
  }
  if (config_.mode == RuntimeMode::kProfiling) {
    informer_ = std::make_unique<ProfilingInformer>();
    profiling_logger_ = std::make_unique<ProfilingLogger>();
  } else {
    informer_ = std::make_unique<DistributionInformer>();
    null_logger_ = std::make_unique<NullLogger>();
  }
  Attach();
}

CoignRuntime::~CoignRuntime() { Detach(); }

Result<std::unique_ptr<CoignRuntime>> CoignRuntime::LoadFromImage(
    ObjectSystem* system, const ApplicationImage& image) {
  if (!image.IsInstrumented()) {
    return FailedPreconditionError(
        "image does not import the Coign runtime: " + image.name);
  }
  Result<ConfigurationRecord> config = image.ReadConfig();
  if (!config.ok()) {
    return config.status();
  }
  return std::make_unique<CoignRuntime>(system, *config);
}

void CoignRuntime::Attach() {
  if (attached_) {
    return;
  }
  system_->AddInterceptor(this);
  // The component factory traps instantiation requests. In profiling mode
  // placement is untouched (everything stays where COM would put it), but
  // the classifier still runs before every instantiation is fulfilled.
  system_->SetPlacementPolicy(
      [this](const ClassDesc& cls, InstanceId creator, InstanceId new_id) -> MachineId {
        const ClassificationId classification =
            classifier_->Classify(cls, system_->call_stack().BackTrace(), new_id);
        if (config_.mode == RuntimeMode::kProfiling) {
          // In-process instantiation, wherever the creator runs.
          if (creator == kNoInstance) {
            return kClientMachine;
          }
          Result<MachineId> machine = system_->MachineOf(creator);
          return machine.ok() ? *machine : kClientMachine;
        }
        // Distributed mode: the factory on the creator's machine traps the
        // request and fulfills or forwards it.
        MachineId creator_machine = kClientMachine;
        if (creator != kNoInstance) {
          Result<MachineId> machine = system_->MachineOf(creator);
          if (machine.ok()) {
            creator_machine = *machine;
          }
        }
        ComponentFactory& factory =
            creator_machine == kServerMachine ? server_factory_ : client_factory_;
        return factory.PlaceInstantiation(classification);
      });
  attached_ = true;
}

void CoignRuntime::Detach() {
  if (!attached_) {
    return;
  }
  system_->RemoveInterceptor(this);
  system_->SetPlacementPolicy(nullptr);
  attached_ = false;
}

void CoignRuntime::BeginScenario() {
  classifier_->BeginExecution();
  if (profiling_logger_ != nullptr) {
    profiling_logger_->BeginExecution();
  }
  wrapped_interfaces_.clear();
  event_sequence_ = 0;
}

ClassificationId CoignRuntime::EnsureClassified(const ClassDesc& cls, InstanceId id) {
  Result<ClassificationId> existing = classifier_->ClassificationOf(id);
  if (existing.ok()) {
    return *existing;
  }
  return classifier_->Classify(cls, system_->call_stack().BackTrace(), id);
}

void CoignRuntime::EmitEvent(const ProfileEvent& event) {
  if (profiling_logger_ != nullptr) {
    profiling_logger_->OnEvent(event);
  }
  if (null_logger_ != nullptr) {
    null_logger_->OnEvent(event);
  }
  for (InformationLogger* logger : extra_loggers_) {
    logger->OnEvent(event);
  }
}

void CoignRuntime::WrapInterface(const ObjectRef& ref, uint64_t* sequence) {
  if (ref.IsNull()) {
    return;
  }
  if (!wrapped_interfaces_.insert(InterfaceKey(ref)).second) {
    return;  // Already wrapped.
  }
  ProfileEvent event;
  event.kind = EventKind::kInterfaceInstantiation;
  event.sequence = (*sequence)++;
  event.subject = ref.instance;
  event.iid = ref.iid;
  const Result<ClassificationId> classification = classifier_->ClassificationOf(ref.instance);
  event.subject_classification = classification.ok() ? *classification : kNoClassification;
  EmitEvent(event);
}

void CoignRuntime::OnInstantiated(const ClassDesc& cls, InstanceId id, InstanceId creator) {
  const ClassificationId classification = EnsureClassified(cls, id);

  // First sighting of a classification: register its metadata (class, API
  // usage from static analysis) with the profile.
  if (profiling_logger_ != nullptr &&
      known_classifications_.insert(classification).second) {
    ClassificationInfo info;
    info.id = classification;
    info.clsid = cls.clsid;
    info.class_name = cls.name;
    info.api_usage = cls.api_usage;
    info.instance_count = 0;  // Counted by instantiation events.
    profiling_logger_->RecordClassification(info);
  }

  ProfileEvent event;
  event.kind = EventKind::kComponentInstantiation;
  event.sequence = event_sequence_++;
  event.subject = id;
  event.subject_class = cls.clsid;
  event.subject_classification = classification;
  event.caller = creator;
  EmitEvent(event);
}

void CoignRuntime::OnDestroyed(InstanceId id, const ClassId& clsid) {
  ProfileEvent event;
  event.kind = EventKind::kComponentDestruction;
  event.sequence = event_sequence_++;
  event.subject = id;
  event.subject_class = clsid;
  const Result<ClassificationId> classification = classifier_->ClassificationOf(id);
  event.subject_classification = classification.ok() ? *classification : kNoClassification;
  EmitEvent(event);
}

void CoignRuntime::OnCallEnd(const ObjectSystem::CallEvent& call, const Status& status) {
  if (!status.ok()) {
    return;  // Failed calls carry no communication.
  }
  ++calls_observed_;
  if (call.is_remote()) {
    ++remote_calls_observed_;
  }

  const InterfaceDesc* iface = system_->interfaces().Lookup(call.target.iid);
  assert(iface != nullptr);  // Call() validated it.
  const WireCall wire = informer_->Inspect(*iface, call.method, *call.in, *call.out);

  // Interface wrapping: the callee's interface plus anything passed through
  // parameters in either direction.
  WrapInterface(call.target, &event_sequence_);
  for (const ObjectRef& passed : wire.passed_interfaces) {
    WrapInterface(passed, &event_sequence_);
  }

  if (message_counting_) {
    // Request + reply = two one-way messages on the pair.
    const Result<ClassificationId> src = classifier_->ClassificationOf(call.caller);
    const Result<ClassificationId> dst = classifier_->ClassificationOf(call.target.instance);
    message_counts_.Record(src.ok() ? *src : kNoClassification,
                           dst.ok() ? *dst : kNoClassification, 1);
  }

  if (!informer_->measures_communication()) {
    return;  // Lightweight runtime: no logging.
  }

  ProfileEvent event;
  event.kind = EventKind::kInterfaceCall;
  event.sequence = event_sequence_++;
  event.subject = call.target.instance;
  event.subject_class = call.target_clsid;
  {
    const Result<ClassificationId> c = classifier_->ClassificationOf(call.target.instance);
    event.subject_classification = c.ok() ? *c : kNoClassification;
  }
  event.caller = call.caller;
  {
    const Result<ClassificationId> c = classifier_->ClassificationOf(call.caller);
    event.caller_classification = c.ok() ? *c : kNoClassification;
  }
  event.iid = call.target.iid;
  event.method = call.method;
  event.request_bytes = wire.request_bytes;
  event.reply_bytes = wire.reply_bytes;
  event.remotable = wire.remotable;
  EmitEvent(event);
}

void CoignRuntime::OnCompute(InstanceId instance, double seconds) {
  if (profiling_logger_ == nullptr) {
    return;
  }
  const Result<ClassificationId> classification = classifier_->ClassificationOf(instance);
  profiling_logger_->OnCompute(classification.ok() ? *classification : kNoClassification,
                               seconds);
  for (InformationLogger* logger : extra_loggers_) {
    logger->OnCompute(classification.ok() ? *classification : kNoClassification, seconds);
  }
}

void CoignRuntime::OnAllocate(InstanceId instance, uint64_t bytes) {
  if (profiling_logger_ == nullptr) {
    return;
  }
  const Result<ClassificationId> classification = classifier_->ClassificationOf(instance);
  profiling_logger_->OnAllocate(classification.ok() ? *classification : kNoClassification,
                                bytes);
  for (InformationLogger* logger : extra_loggers_) {
    logger->OnAllocate(classification.ok() ? *classification : kNoClassification, bytes);
  }
}

}  // namespace coign
