// The component factory (paper §3.5).
//
// "The component factory produces a distributed application by manipulating
// instance placement. ... During distributed execution, a copy of the
// component factory is replicated onto each machine. The component
// factories act as peers. Each traps component instantiation requests on
// its own machine, forwards requests to other machines as appropriate, and
// fulfills instantiation requests destined for its machine."

#ifndef COIGN_SRC_RUNTIME_FACTORY_H_
#define COIGN_SRC_RUNTIME_FACTORY_H_

#include <cstdint>

#include "src/classify/descriptor.h"
#include "src/com/types.h"
#include "src/graph/distribution.h"

namespace coign {

class ComponentFactory {
 public:
  ComponentFactory(MachineId local_machine, const Distribution* distribution)
      : local_machine_(local_machine), distribution_(distribution) {}

  void SetPeer(ComponentFactory* peer) { peer_ = peer; }

  MachineId local_machine() const { return local_machine_; }

  // Handles an instantiation request trapped on this factory's machine:
  // consults the distribution for the instance classification, fulfills the
  // request locally or forwards it to the peer factory, and returns the
  // machine that fulfilled it.
  MachineId PlaceInstantiation(ClassificationId classification);

  uint64_t local_instantiations() const { return local_instantiations_; }
  uint64_t forwarded_instantiations() const { return forwarded_instantiations_; }
  uint64_t fulfilled_for_peer() const { return fulfilled_for_peer_; }

 private:
  // Peer-side fulfillment of a forwarded request.
  void FulfillForPeer() { ++fulfilled_for_peer_; }

  MachineId local_machine_;
  const Distribution* distribution_;
  ComponentFactory* peer_ = nullptr;
  uint64_t local_instantiations_ = 0;
  uint64_t forwarded_instantiations_ = 0;
  uint64_t fulfilled_for_peer_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_RUNTIME_FACTORY_H_
