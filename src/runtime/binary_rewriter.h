// The binary rewriter (paper §2).
//
// On Windows the rewriter makes two changes to the application's PE files:
// it inserts the Coign runtime DLL into the *first slot* of the DLL import
// table (so the runtime loads and runs before the application or any of its
// DLLs) and appends a configuration-record data segment. Here the
// application binary is modeled as an ApplicationImage; the rewriter makes
// the same two changes to it. Running an instrumented image attaches a
// CoignRuntime configured from the record — the observable effect the
// import-table trick achieves.

#ifndef COIGN_SRC_RUNTIME_BINARY_REWRITER_H_
#define COIGN_SRC_RUNTIME_BINARY_REWRITER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/runtime/config_record.h"
#include "src/support/status.h"

namespace coign {

inline constexpr char kCoignRuntimeDll[] = "coignrte.dll";

// A modeled application binary: name, module list, import table, and the
// optional appended configuration segment.
struct ApplicationImage {
  std::string name;
  std::vector<std::string> binaries;      // .EXE plus .DLLs.
  std::vector<std::string> import_table;  // Import order = load order.
  // The appended data segment, serialized (the on-disk form).
  std::optional<std::string> config_segment;

  bool IsInstrumented() const {
    return !import_table.empty() && import_table.front() == kCoignRuntimeDll &&
           config_segment.has_value();
  }

  // Parses the configuration segment.
  Result<ConfigurationRecord> ReadConfig() const;
};

class BinaryRewriter {
 public:
  // Produces the instrumented image: runtime DLL first in the import table
  // plus a profiling-mode configuration record.
  Result<ApplicationImage> Instrument(const ApplicationImage& original,
                                      const ConfigurationRecord& config) const;

  // Writes analysis output back into the image: the chosen distribution,
  // the profiled classification table, and the lightweight runtime mode,
  // "removing" the profiling instrumentation.
  Result<ApplicationImage> WriteDistribution(
      const ApplicationImage& instrumented, const Distribution& distribution,
      const std::string& profile_text,
      const std::vector<Descriptor>& classifier_table = {}) const;

  // Restores the original, uninstrumented image.
  ApplicationImage Strip(const ApplicationImage& instrumented) const;
};

}  // namespace coign

#endif  // COIGN_SRC_RUNTIME_BINARY_REWRITER_H_
