#include "src/runtime/logger.h"

namespace coign {

void ProfilingLogger::OnEvent(const ProfileEvent& event) {
  switch (event.kind) {
    case EventKind::kComponentInstantiation:
      profile_.RecordInstantiation(event.subject_classification);
      return;
    case EventKind::kInterfaceCall: {
      CallKey key;
      key.src = event.caller_classification;
      key.dst = event.subject_classification;
      key.iid = event.iid;
      key.method = event.method;
      profile_.RecordCall(key, event.request_bytes, event.reply_bytes, event.remotable);
      // Instance-level weights for classifier evaluation: total bytes that
      // would cross the wire between the two instances.
      comm_.Add(event.caller, event.subject,
                static_cast<double>(event.request_bytes + event.reply_bytes));
      return;
    }
    case EventKind::kComponentDestruction:
    case EventKind::kInterfaceInstantiation:
    case EventKind::kInterfaceDestruction:
      return;  // Summarized profiles do not track these.
  }
}

void ProfilingLogger::OnCompute(ClassificationId classification, double seconds) {
  profile_.RecordCompute(classification, seconds);
}

void ProfilingLogger::OnAllocate(ClassificationId classification, uint64_t bytes) {
  profile_.RecordAllocation(classification, bytes);
}

void EventLogger::OnEvent(const ProfileEvent& event) {
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

}  // namespace coign
