#include "src/runtime/cache.h"

#include <cassert>

#include "src/marshal/ndr.h"

namespace coign {
namespace {

uint64_t MixInto(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

InterfaceCache::InterfaceCache(ObjectSystem* system, size_t max_entries)
    : system_(system), max_entries_(max_entries) {
  assert(system_ != nullptr);
  system_->AddInterceptor(this);
  system_->SetCallFilter([this](const ObjectSystem::CallEvent& event, Message* out) {
    return Lookup(event, out);
  });
}

InterfaceCache::~InterfaceCache() {
  system_->RemoveInterceptor(this);
  system_->SetCallFilter(nullptr);
}

bool InterfaceCache::KeyFor(const ObjectSystem::CallEvent& event, uint64_t* key) const {
  if (!event.is_remote()) {
    return false;  // Local calls are already cheap.
  }
  const InterfaceDesc* iface = system_->interfaces().Lookup(event.target.iid);
  if (iface == nullptr) {
    return false;
  }
  const MethodDesc* method = iface->FindMethod(event.method);
  if (method == nullptr || !method->cacheable) {
    return false;
  }
  // Key by target interface + method + the exact request bytes — what a
  // semi-custom marshaling proxy would see on the wire.
  Result<std::vector<uint8_t>> request = Serialize(*event.in);
  if (!request.ok()) {
    return false;
  }
  uint64_t h = MixInto(event.target.iid.hi, event.target.iid.lo);
  h = MixInto(h, event.target.instance);
  h = MixInto(h, event.method);
  uint64_t chunk = 0;
  int filled = 0;
  for (uint8_t byte : *request) {
    chunk = (chunk << 8) | byte;
    if (++filled == 8) {
      h = MixInto(h, chunk);
      chunk = 0;
      filled = 0;
    }
  }
  h = MixInto(h, chunk);
  h = MixInto(h, request->size());
  *key = h;
  return true;
}

bool InterfaceCache::Lookup(const ObjectSystem::CallEvent& event, Message* out) {
  uint64_t key = 0;
  if (!KeyFor(event, &key)) {
    return false;
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *out = it->second.reply;
  return true;
}

void InterfaceCache::OnCallEnd(const ObjectSystem::CallEvent& event, const Status& status) {
  if (!status.ok()) {
    return;
  }
  uint64_t key = 0;
  if (!KeyFor(event, &key)) {
    return;
  }
  Entry entry;
  entry.reply = *event.out;
  entry.order = next_order_++;
  entry.instance = event.target.instance;
  entries_[key] = std::move(entry);
  EvictIfNeeded();
}

void InterfaceCache::OnDestroyed(InstanceId id, const ClassId& clsid) {
  (void)clsid;
  // Replies from a dead instance must never be served.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.instance == id) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void InterfaceCache::EvictIfNeeded() {
  while (entries_.size() > max_entries_) {
    auto oldest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.order < oldest->second.order) {
        oldest = it;
      }
    }
    entries_.erase(oldest);
  }
}

void InterfaceCache::Clear() {
  entries_.clear();
}

}  // namespace coign
