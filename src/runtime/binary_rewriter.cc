#include "src/runtime/binary_rewriter.h"

#include <algorithm>

namespace coign {

Result<ConfigurationRecord> ApplicationImage::ReadConfig() const {
  if (!config_segment.has_value()) {
    return NotFoundError("image has no configuration segment: " + name);
  }
  return ConfigurationRecord::Parse(*config_segment);
}

Result<ApplicationImage> BinaryRewriter::Instrument(const ApplicationImage& original,
                                                    const ConfigurationRecord& config) const {
  if (original.IsInstrumented()) {
    return FailedPreconditionError("image already instrumented: " + original.name);
  }
  ApplicationImage instrumented = original;
  // "First, it inserts an entry into the first slot of the application's
  // DLL import table to load the Coign runtime."
  instrumented.import_table.insert(instrumented.import_table.begin(), kCoignRuntimeDll);
  // "Second, it adds a data segment containing configuration information at
  // the end of the application binary."
  instrumented.config_segment = config.Serialize();
  return instrumented;
}

Result<ApplicationImage> BinaryRewriter::WriteDistribution(
    const ApplicationImage& instrumented, const Distribution& distribution,
    const std::string& profile_text, const std::vector<Descriptor>& classifier_table) const {
  if (!instrumented.IsInstrumented()) {
    return FailedPreconditionError("image is not instrumented: " + instrumented.name);
  }
  Result<ConfigurationRecord> config = instrumented.ReadConfig();
  if (!config.ok()) {
    return config.status();
  }
  // "The configuration record is also modified to remove the profiling
  // instrumentation. In its place, a lightweight version of the
  // instrumentation will be loaded to realize the distribution."
  config->mode = RuntimeMode::kDistributed;
  config->distribution = distribution;
  config->profile_text = profile_text;
  if (!classifier_table.empty()) {
    config->classifier_table = classifier_table;
  }
  ApplicationImage distributed = instrumented;
  distributed.config_segment = config->Serialize();
  return distributed;
}

ApplicationImage BinaryRewriter::Strip(const ApplicationImage& instrumented) const {
  ApplicationImage original = instrumented;
  original.import_table.erase(
      std::remove(original.import_table.begin(), original.import_table.end(),
                  std::string(kCoignRuntimeDll)),
      original.import_table.end());
  original.config_segment.reset();
  return original;
}

}  // namespace coign
