// The configuration record (paper §2-3).
//
// The binary rewriter appends this record to the application binary. It
// tells the runtime how to profile the application and how to classify
// components during execution; after analysis it carries the chosen
// distribution and switches the binary to the lightweight runtime.

#ifndef COIGN_SRC_RUNTIME_CONFIG_RECORD_H_
#define COIGN_SRC_RUNTIME_CONFIG_RECORD_H_

#include <string>

#include "src/classify/classifiers.h"
#include "src/graph/distribution.h"
#include "src/support/status.h"

namespace coign {

enum class RuntimeMode {
  kProfiling,    // Heavy instrumentation: profiling informer + logger.
  kDistributed,  // Lightweight: distribution informer, factories realize
                 // the distribution, null logger.
};

const char* RuntimeModeName(RuntimeMode mode);

struct ConfigurationRecord {
  RuntimeMode mode = RuntimeMode::kProfiling;
  ClassifierKind classifier_kind = ClassifierKind::kInternalFunctionCalledBy;
  int classifier_depth = kCompleteStackWalk;
  // Classification → machine map; meaningful in kDistributed mode.
  Distribution distribution;
  // The profiled classification table ("component classification data" in
  // the paper's words): restoring it lets the lightweight runtime assign
  // the same classification ids the analysis used, even for instantiation
  // contexts that appear in a different order at run time.
  std::vector<Descriptor> classifier_table;
  // Accumulated profile summary ("information from the log file may be
  // combined into the configuration record in the application binary").
  std::string profile_text;

  std::string Serialize() const;
  static Result<ConfigurationRecord> Parse(const std::string& text);
};

}  // namespace coign

#endif  // COIGN_SRC_RUNTIME_CONFIG_RECORD_H_
