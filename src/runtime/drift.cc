#include "src/runtime/drift.h"

#include <algorithm>
#include <cmath>

#include "src/support/str_util.h"

namespace coign {

uint64_t MessageCounts::PairKeyOf(ClassificationId src, ClassificationId dst) {
  ClassificationId a = src;
  ClassificationId b = dst;
  if (a > b) {
    std::swap(a, b);
  }
  return (static_cast<uint64_t>(a) << 32) | b;
}

void MessageCounts::Record(ClassificationId src, ClassificationId dst, uint64_t messages) {
  pairs_[PairKeyOf(src, dst)] += messages;
  total_ += messages;
}

uint64_t MessageCounts::CountOf(ClassificationId src, ClassificationId dst) const {
  auto it = pairs_.find(PairKeyOf(src, dst));
  return it == pairs_.end() ? 0 : it->second;
}

MessageCounts CountsFromProfile(const IccProfile& profile) {
  MessageCounts counts;
  for (const auto& [key, summary] : profile.calls()) {
    counts.Record(key.src, key.dst, summary.call_count());
  }
  return counts;
}

std::string DriftReport::ToString() const {
  return StrFormat(
      "drift{similarity=%.3f, observed=%llu, unprofiled=%.1f%%, reprofile=%s}", similarity,
      static_cast<unsigned long long>(observed_messages), unprofiled_fraction * 100.0,
      reprofile_recommended ? "yes" : "no");
}

DriftReport DetectDrift(const IccProfile& profile, const MessageCounts& observed,
                        const DriftOptions& options) {
  DriftReport report;
  report.observed_messages = observed.total_messages();
  if (report.observed_messages < options.min_messages) {
    return report;  // Not enough evidence; keep the current distribution.
  }

  const MessageCounts profiled = CountsFromProfile(profile);

  // Cosine similarity over the union of pairs, on sqrt-transformed counts:
  // the variance-stabilizing transform keeps one enormous pair (a long
  // document's file reads) from hiding drift everywhere else, and keeps
  // document *length* from reading as usage drift.
  double dot = 0.0, norm_observed = 0.0, norm_profiled = 0.0;
  uint64_t unprofiled = 0;
  for (const auto& [pair, count] : observed.pairs()) {
    const double x = std::sqrt(static_cast<double>(count));
    norm_observed += x * x;
    auto it = profiled.pairs().find(pair);
    if (it == profiled.pairs().end()) {
      unprofiled += count;
      continue;
    }
    dot += x * std::sqrt(static_cast<double>(it->second));
  }
  for (const auto& [pair, count] : profiled.pairs()) {
    const double y = std::sqrt(static_cast<double>(count));
    norm_profiled += y * y;
  }
  if (norm_observed > 0.0 && norm_profiled > 0.0) {
    report.similarity = dot / (std::sqrt(norm_observed) * std::sqrt(norm_profiled));
  } else {
    report.similarity = norm_observed == norm_profiled ? 1.0 : 0.0;
  }
  // Guard the empty-window case (reachable when min_messages is 0): an
  // application that sent nothing has not drifted.
  report.unprofiled_fraction =
      report.observed_messages == 0
          ? 0.0
          : static_cast<double>(unprofiled) / static_cast<double>(report.observed_messages);
  report.reprofile_recommended = report.similarity < options.similarity_threshold ||
                                 report.unprofiled_fraction > options.unprofiled_threshold;
  return report;
}

}  // namespace coign
