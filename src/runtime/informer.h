// Interface informers (paper §3.2).
//
// "The interface informer manages static interface metadata. Other Coign
// components use data from the interface informer to determine the static
// type of COM interfaces, and walk input and output parameters of interface
// function calls."
//
// Two implementations, as in the paper:
//   * ProfilingInformer — uses full IDL metadata to walk every parameter
//     and measure inter-component communication precisely (the expensive
//     informer, up to 85 % overhead on real binaries).
//   * DistributionInformer — examines parameters only enough to find
//     interface pointers (the <3 % overhead informer left in the
//     distributed application).

#ifndef COIGN_SRC_RUNTIME_INFORMER_H_
#define COIGN_SRC_RUNTIME_INFORMER_H_

#include <string>
#include <vector>

#include "src/com/message.h"
#include "src/com/metadata.h"
#include "src/marshal/proxy_stub.h"

namespace coign {

class InterfaceInformer {
 public:
  virtual ~InterfaceInformer() = default;

  virtual std::string name() const = 0;

  // Inspects one completed call. Profiling informers return precise wire
  // measurements; distribution informers return zero sizes but still report
  // passed interface pointers (needed for interface wrapping/ownership).
  virtual WireCall Inspect(const InterfaceDesc& iface, MethodIndex method, const Message& in,
                           const Message& out) = 0;

  // True when Inspect produces real byte counts.
  virtual bool measures_communication() const = 0;
};

// Walks every parameter with the marshaler's deep-copy sizing.
class ProfilingInformer : public InterfaceInformer {
 public:
  std::string name() const override { return "profiling-informer"; }
  WireCall Inspect(const InterfaceDesc& iface, MethodIndex method, const Message& in,
                   const Message& out) override;
  bool measures_communication() const override { return true; }
};

// Only identifies interface pointers.
class DistributionInformer : public InterfaceInformer {
 public:
  std::string name() const override { return "distribution-informer"; }
  WireCall Inspect(const InterfaceDesc& iface, MethodIndex method, const Message& in,
                   const Message& out) override;
  bool measures_communication() const override { return false; }
};

}  // namespace coign

#endif  // COIGN_SRC_RUNTIME_INFORMER_H_
