#include "src/runtime/static_analysis.h"

#include <array>

namespace coign {
namespace {

// Known GUI entry points (USER32/GDI32 family).
constexpr std::array kGuiApis = {
    "CreateWindowExW", "ShowWindow",  "GetMessageW",   "DispatchMessageW",
    "BeginPaint",      "EndPaint",    "BitBlt",        "TextOutW",
    "SetWindowTextW",  "TrackPopupMenu", "GetDC",      "InvalidateRect",
};

// Known storage entry points (KERNEL32 file APIs + structured storage).
constexpr std::array kStorageApis = {
    "CreateFileW", "ReadFile",      "WriteFile",     "SetFilePointer",
    "CloseHandle", "StgOpenStorage", "StgCreateDocfile", "FlushFileBuffers",
    "GetFileSizeEx",
};

// ODBC entry points: a proprietary database wire protocol Coign cannot
// analyze ("Coign cannot analyze proprietary connections between the ODBC
// driver and the database server").
constexpr std::array kOdbcApis = {
    "SQLConnect", "SQLExecDirect", "SQLFetch", "SQLDisconnect", "SQLPrepare",
};

}  // namespace

uint32_t ClassifyApiName(std::string_view api_name) {
  for (const char* name : kGuiApis) {
    if (api_name == name) {
      return kApiGui;
    }
  }
  for (const char* name : kStorageApis) {
    if (api_name == name) {
      return kApiStorage;
    }
  }
  for (const char* name : kOdbcApis) {
    if (api_name == name) {
      return kApiOdbc;
    }
  }
  return kApiNone;
}

uint32_t AnalyzeImports(const std::vector<std::string>& imported_apis) {
  uint32_t usage = kApiNone;
  for (const std::string& api : imported_apis) {
    usage |= ClassifyApiName(api);
  }
  return usage;
}

std::string ApiUsageString(uint32_t usage) {
  if (usage == kApiNone) {
    return "none";
  }
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) {
      out += "|";
    }
    out += name;
  };
  if (usage & kApiGui) {
    append("gui");
  }
  if (usage & kApiStorage) {
    append("storage");
  }
  if (usage & kApiOdbc) {
    append("odbc");
  }
  return out;
}

}  // namespace coign
