#include "src/runtime/factory.h"

namespace coign {

MachineId ComponentFactory::PlaceInstantiation(ClassificationId classification) {
  const MachineId target = distribution_->MachineFor(classification);
  if (target == local_machine_ || peer_ == nullptr) {
    ++local_instantiations_;
    return local_machine_;
  }
  ++forwarded_instantiations_;
  peer_->FulfillForPeer();
  return target;
}

}  // namespace coign
