// Per-interface caching (paper §4.3/§6): "Coign can also selectively enable
// per-interface caching (as appropriate) through COM's semi-custom
// marshaling mechanism."
//
// The InterfaceCache plays the semi-custom marshaling proxy: for *remote*
// calls on methods declared cacheable (pure queries), it remembers replies
// keyed by (instance, interface, method, request bytes) and answers
// repeats locally, eliminating the round trip. It hooks the ObjectSystem
// twice — as the call filter (cache hits) and as an interceptor (filling
// the cache from completed remote calls).

#ifndef COIGN_SRC_RUNTIME_CACHE_H_
#define COIGN_SRC_RUNTIME_CACHE_H_

#include <cstdint>
#include <unordered_map>

#include "src/com/object_system.h"

namespace coign {

class InterfaceCache : public ObjectSystem::Interceptor {
 public:
  // Attaches to the system (filter + interceptor). `max_entries` bounds
  // memory; oldest-inserted entries are evicted beyond it.
  explicit InterfaceCache(ObjectSystem* system, size_t max_entries = 4096);
  ~InterfaceCache() override;

  InterfaceCache(const InterfaceCache&) = delete;
  InterfaceCache& operator=(const InterfaceCache&) = delete;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return entries_.size(); }

  void Clear();

  // --- ObjectSystem::Interceptor -------------------------------------------
  void OnCallEnd(const ObjectSystem::CallEvent& event, const Status& status) override;
  void OnDestroyed(InstanceId id, const ClassId& clsid) override;

 private:
  struct Entry {
    Message reply;
    uint64_t order = 0;  // Insertion order, for eviction.
    InstanceId instance = kNoInstance;
  };

  // Returns false for non-cacheable calls; otherwise sets `key`.
  bool KeyFor(const ObjectSystem::CallEvent& event, uint64_t* key) const;
  bool Lookup(const ObjectSystem::CallEvent& event, Message* out);
  void EvictIfNeeded();

  ObjectSystem* system_;
  size_t max_entries_;
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t next_order_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_RUNTIME_CACHE_H_
