#include "src/runtime/config_record.h"

#include <cstdio>
#include <sstream>

#include "src/support/str_util.h"

namespace coign {

const char* RuntimeModeName(RuntimeMode mode) {
  switch (mode) {
    case RuntimeMode::kProfiling:
      return "profiling";
    case RuntimeMode::kDistributed:
      return "distributed";
  }
  return "?";
}

namespace {

constexpr char kMagic[] = "coign-config v1";

Result<ClassifierKind> ClassifierKindFromIndex(int index) {
  const auto& kinds = AllClassifierKinds();
  if (index < 0 || static_cast<size_t>(index) >= kinds.size()) {
    return InvalidArgumentError("bad classifier kind index");
  }
  return kinds[static_cast<size_t>(index)];
}

int ClassifierKindIndex(ClassifierKind kind) {
  const auto& kinds = AllClassifierKinds();
  for (size_t i = 0; i < kinds.size(); ++i) {
    if (kinds[i] == kind) {
      return static_cast<int>(i);
    }
  }
  return 0;
}

}  // namespace

std::string ConfigurationRecord::Serialize() const {
  std::string out = kMagic;
  out += StrFormat("\nmode %d\nclassifier %d %d\ndefault-machine %d\n",
                   static_cast<int>(mode), ClassifierKindIndex(classifier_kind),
                   classifier_depth, distribution.default_machine);
  for (const auto& [id, machine] : distribution.placement) {
    out += StrFormat("place %u %d\n", id, machine);
  }
  for (const Descriptor& descriptor : classifier_table) {
    out += StrFormat("desc %s %zu", descriptor.clsid.ToString().c_str(),
                     descriptor.tokens.size());
    for (const DescriptorToken& token : descriptor.tokens) {
      out += StrFormat(" %llu:%llu:%llu", static_cast<unsigned long long>(token.tag),
                       static_cast<unsigned long long>(token.a),
                       static_cast<unsigned long long>(token.b));
    }
    out += "\n";
  }
  out += StrFormat("profile %zu\n", profile_text.size());
  out += profile_text;
  return out;
}

Result<ConfigurationRecord> ConfigurationRecord::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return InvalidArgumentError("missing configuration record magic");
  }
  ConfigurationRecord record;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "mode") {
      int mode = 0;
      fields >> mode;
      record.mode = mode == 0 ? RuntimeMode::kProfiling : RuntimeMode::kDistributed;
    } else if (keyword == "classifier") {
      int kind_index = 0;
      fields >> kind_index >> record.classifier_depth;
      Result<ClassifierKind> kind = ClassifierKindFromIndex(kind_index);
      if (!kind.ok()) {
        return kind.status();
      }
      record.classifier_kind = *kind;
    } else if (keyword == "default-machine") {
      fields >> record.distribution.default_machine;
    } else if (keyword == "place") {
      ClassificationId id = kNoClassification;
      MachineId machine = kClientMachine;
      fields >> id >> machine;
      record.distribution.placement[id] = machine;
    } else if (keyword == "desc") {
      Descriptor descriptor;
      std::string guid_text;
      size_t token_count = 0;
      fields >> guid_text >> token_count;
      if (guid_text != "{0000000000000000-0000000000000000}") {
        Result<Guid> clsid = Guid::Parse(guid_text);
        if (!clsid.ok()) {
          return clsid.status();
        }
        descriptor.clsid = *clsid;
      }
      for (size_t i = 0; i < token_count; ++i) {
        std::string token_text;
        fields >> token_text;
        DescriptorToken token;
        unsigned long long tag = 0, a = 0, b = 0;
        if (std::sscanf(token_text.c_str(), "%llu:%llu:%llu", &tag, &a, &b) != 3) {
          return InvalidArgumentError("malformed descriptor token: " + token_text);
        }
        token.tag = tag;
        token.a = a;
        token.b = b;
        descriptor.tokens.push_back(token);
      }
      record.classifier_table.push_back(std::move(descriptor));
    } else if (keyword == "profile") {
      size_t length = 0;
      fields >> length;
      std::string rest((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
      if (rest.size() < length) {
        return InvalidArgumentError("truncated profile payload in config record");
      }
      record.profile_text = rest.substr(0, length);
      return record;
    } else if (!keyword.empty()) {
      return InvalidArgumentError("unknown config keyword: " + keyword);
    }
  }
  return record;
}

}  // namespace coign
