#include "src/runtime/informer.h"

namespace coign {

WireCall ProfilingInformer::Inspect(const InterfaceDesc& iface, MethodIndex method,
                                    const Message& in, const Message& out) {
  return MeasureCall(iface, method, in, out);
}

WireCall DistributionInformer::Inspect(const InterfaceDesc& iface, MethodIndex method,
                                       const Message& in, const Message& out) {
  (void)method;
  WireCall wire;
  wire.remotable = iface.remotable && !in.ContainsOpaque() && !out.ContainsOpaque();
  // "The distribution informer only examines function call parameters
  // enough to identify interface pointers."
  in.CollectInterfaces(&wire.passed_interfaces);
  out.CollectInterfaces(&wire.passed_interfaces);
  return wire;
}

}  // namespace coign
