// Information loggers (paper §3.3).
//
// "Under direction of the RTE, Coign components pass information about
// application events to the information logger. ... Depending on the
// logger's implementation, it may ignore the events, write the events to a
// log file on disk, or accumulate information about the events into
// in-memory data structures."
//
// Three implementations, as in the paper:
//   * ProfilingLogger — summarizes ICC into an IccProfile (exponential
//     size-range histograms) plus the per-instance communication matrix
//     used for classifier evaluation.
//   * EventLogger — keeps the full ordered event trace.
//   * NullLogger — used during distributed execution; ignores everything.

#ifndef COIGN_SRC_RUNTIME_LOGGER_H_
#define COIGN_SRC_RUNTIME_LOGGER_H_

#include <string>
#include <vector>

#include "src/classify/comm_vector.h"
#include "src/profile/event.h"
#include "src/profile/icc_profile.h"

namespace coign {

class InformationLogger {
 public:
  virtual ~InformationLogger() = default;
  virtual std::string name() const = 0;
  virtual void OnEvent(const ProfileEvent& event) = 0;
  virtual void OnCompute(ClassificationId classification, double seconds) {
    (void)classification;
    (void)seconds;
  }
  virtual void OnAllocate(ClassificationId classification, uint64_t bytes) {
    (void)classification;
    (void)bytes;
  }
};

class ProfilingLogger : public InformationLogger {
 public:
  std::string name() const override { return "profiling-logger"; }
  void OnEvent(const ProfileEvent& event) override;
  void OnCompute(ClassificationId classification, double seconds) override;
  void OnAllocate(ClassificationId classification, uint64_t bytes) override;

  // Registers classification metadata (called by the RTE when a new
  // classification appears).
  void RecordClassification(const ClassificationInfo& info) {
    profile_.RecordClassification(info);
  }

  const IccProfile& profile() const { return profile_; }
  // Instance-level communication of the current execution.
  const CommMatrix& comm_matrix() const { return comm_; }

  // Clears per-execution state (the comm matrix) but keeps the summarized
  // profile, which accumulates across scenario runs.
  void BeginExecution() { comm_.Clear(); }

 private:
  IccProfile profile_;
  CommMatrix comm_;
};

class EventLogger : public InformationLogger {
 public:
  // `max_events` bounds memory; 0 = unbounded.
  explicit EventLogger(size_t max_events = 0) : max_events_(max_events) {}

  std::string name() const override { return "event-logger"; }
  void OnEvent(const ProfileEvent& event) override;

  const std::vector<ProfileEvent>& events() const { return events_; }
  uint64_t dropped_events() const { return dropped_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  size_t max_events_;
  std::vector<ProfileEvent> events_;
  uint64_t dropped_ = 0;
};

class NullLogger : public InformationLogger {
 public:
  std::string name() const override { return "null-logger"; }
  void OnEvent(const ProfileEvent& event) override { (void)event; }
};

}  // namespace coign

#endif  // COIGN_SRC_RUNTIME_LOGGER_H_
