// The Coign Runtime Executive (paper §3.1).
//
// "The RTE provides low-level services to other components in the Coign
// runtime": interception of component instantiation requests, interface
// wrapping (here: an interceptor on every routed call), address-space /
// stack management (the ObjectSystem's cross-component call stack), and
// access to the configuration record.
//
// The RTE composes the replaceable runtime components of Figure 2 — an
// interface informer, an information logger, an instance classifier, and a
// pair of component factories — in one of two configurations:
//
//   * kProfiling:  ProfilingInformer + ProfilingLogger; classifies every
//     instantiation and summarizes all inter-component communication.
//   * kDistributed: DistributionInformer + NullLogger; classifies every
//     instantiation and lets the component factories relocate it per the
//     distribution in the configuration record.

#ifndef COIGN_SRC_RUNTIME_RTE_H_
#define COIGN_SRC_RUNTIME_RTE_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "src/com/object_system.h"
#include "src/runtime/binary_rewriter.h"
#include "src/runtime/config_record.h"
#include "src/runtime/drift.h"
#include "src/runtime/factory.h"
#include "src/runtime/informer.h"
#include "src/runtime/logger.h"

namespace coign {

class CoignRuntime : public ObjectSystem::Interceptor {
 public:
  // Configures the runtime from a configuration record, as if the
  // instrumented binary had just loaded it. Attaches on construction.
  CoignRuntime(ObjectSystem* system, const ConfigurationRecord& config);
  ~CoignRuntime() override;

  CoignRuntime(const CoignRuntime&) = delete;
  CoignRuntime& operator=(const CoignRuntime&) = delete;

  // Convenience: loads the configuration record from an instrumented image
  // and attaches. Fails if the image is not instrumented — an
  // uninstrumented binary never loads the runtime.
  static Result<std::unique_ptr<CoignRuntime>> LoadFromImage(ObjectSystem* system,
                                                             const ApplicationImage& image);

  RuntimeMode mode() const { return config_.mode; }
  const ConfigurationRecord& config() const { return config_; }

  InstanceClassifier& classifier() { return *classifier_; }
  InterfaceInformer& informer() { return *informer_; }

  // Non-null only in profiling mode.
  ProfilingLogger* profiling_logger() { return profiling_logger_.get(); }
  const ProfilingLogger* profiling_logger() const { return profiling_logger_.get(); }

  // Attaches an additional logger (e.g. an EventLogger); not owned.
  void AddLogger(InformationLogger* logger) { extra_loggers_.push_back(logger); }

  // Starts a fresh scenario execution: resets per-execution classifier
  // bindings and the per-execution communication matrix.
  void BeginScenario();

  // Replaces the distribution in the configuration record. The component
  // factories hold a live view of it, so subsequent instantiations are
  // placed per the new cut immediately — the adoption half of online
  // repartitioning (already-live instances are the migrator's job).
  void AdoptDistribution(const Distribution& distribution) {
    config_.distribution = distribution;
  }

  // The per-machine factory pair (distributed mode; also available in
  // profiling mode where everything is fulfilled on the client).
  const ComponentFactory& client_factory() const { return client_factory_; }
  const ComponentFactory& server_factory() const { return server_factory_; }

  uint64_t calls_observed() const { return calls_observed_; }
  uint64_t remote_calls_observed() const { return remote_calls_observed_; }
  uint64_t interfaces_wrapped() const { return wrapped_interfaces_.size(); }

  // Lightweight per-pair message counting for usage-drift detection (paper
  // §6: "the lightweight version ... could count messages between
  // components with only slight additional overhead"). Off by default.
  void EnableMessageCounting() { message_counting_ = true; }
  const MessageCounts& message_counts() const { return message_counts_; }
  void ResetMessageCounts() { message_counts_.Clear(); }

  // --- ObjectSystem::Interceptor -------------------------------------------
  void OnInstantiated(const ClassDesc& cls, InstanceId id, InstanceId creator) override;
  void OnDestroyed(InstanceId id, const ClassId& clsid) override;
  void OnCallEnd(const ObjectSystem::CallEvent& event, const Status& status) override;
  void OnCompute(InstanceId instance, double seconds) override;
  void OnAllocate(InstanceId instance, uint64_t bytes) override;

 private:
  void Attach();
  void Detach();

  // Classification for an instance, classifying now if needed (profiling
  // mode classifies in OnInstantiated; distributed mode classified already
  // in the placement hook).
  ClassificationId EnsureClassified(const ClassDesc& cls, InstanceId id);

  // Emits interface-instantiation events the first time a (instance, iid)
  // pair is seen crossing a boundary — the moment the RTE would wrap the
  // interface pointer.
  void WrapInterface(const ObjectRef& ref, uint64_t* sequence);

  void EmitEvent(const ProfileEvent& event);

  ObjectSystem* system_;
  ConfigurationRecord config_;
  std::unique_ptr<InstanceClassifier> classifier_;
  std::unique_ptr<InterfaceInformer> informer_;
  std::unique_ptr<ProfilingLogger> profiling_logger_;  // Profiling mode only.
  std::unique_ptr<NullLogger> null_logger_;            // Distributed mode.
  std::vector<InformationLogger*> extra_loggers_;
  ComponentFactory client_factory_;
  ComponentFactory server_factory_;
  std::unordered_set<uint64_t> known_classifications_;
  std::unordered_set<uint64_t> wrapped_interfaces_;
  uint64_t event_sequence_ = 0;
  uint64_t calls_observed_ = 0;
  uint64_t remote_calls_observed_ = 0;
  bool attached_ = false;
  bool message_counting_ = false;
  MessageCounts message_counts_;
};

}  // namespace coign

#endif  // COIGN_SRC_RUNTIME_RTE_H_
