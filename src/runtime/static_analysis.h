// Static binary analysis (paper §2): "For client-server distributions, the
// analysis engine performs static analysis on component binaries to
// determine which Windows APIs are called by each component. Components
// that access a set of known GUI or storage APIs are placed on the client
// or server respectively."
//
// Here a component's "binary" declares the API entry points it references
// (the information an import-table scan recovers); this module maps those
// names to ApiUsage flags.

#ifndef COIGN_SRC_RUNTIME_STATIC_ANALYSIS_H_
#define COIGN_SRC_RUNTIME_STATIC_ANALYSIS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/com/class_registry.h"

namespace coign {

// ApiUsage flag for one imported entry point; kApiNone for APIs with no
// placement significance.
uint32_t ClassifyApiName(std::string_view api_name);

// Scans a full import list (what the rewriter sees in a component binary).
uint32_t AnalyzeImports(const std::vector<std::string>& imported_apis);

// Human-readable rendering of an ApiUsage bitmask, e.g. "gui|storage".
std::string ApiUsageString(uint32_t usage);

}  // namespace coign

#endif  // COIGN_SRC_RUNTIME_STATIC_ANALYSIS_H_
