#include "src/support/log.h"

#include <atomic>
#include <cstdio>

namespace coign {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  std::fprintf(stderr, "[%s] %.*s\n", LevelName(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace coign
