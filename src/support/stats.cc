#include "src/support/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace coign {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit FitLinear(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const size_t n = xs.size();
  if (n == 0) {
    return fit;
  }
  double sum_x = 0.0, sum_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
  }
  const double mean_x = sum_x / static_cast<double>(n);
  const double mean_y = sum_y / static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (n < 2 || sxx == 0.0) {
    fit.intercept = mean_y;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  if (syy > 0.0) {
    fit.r_squared = (sxy * sxy) / (sxx * syy);
  } else {
    fit.r_squared = 1.0;  // ys constant and perfectly predicted.
  }
  return fit;
}

double DotProductCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 && nb == 0.0) {
    return 1.0;  // Both silent: equivalent behaviour.
  }
  if (na == 0.0 || nb == 0.0) {
    return 0.0;
  }
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace coign
