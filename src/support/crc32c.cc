#include "src/support/crc32c.h"

#include <array>

namespace coign {
namespace {

// Table for the reflected Castagnoli polynomial. Built once via a magic
// static so concurrent first calls (the fleet worker pool) are safe.
// 0x82F63B78 is 0x1EDC6F41 bit-reversed.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

uint32_t Update(uint32_t state, const unsigned char* bytes, size_t size) {
  const std::array<uint32_t, 256>& table = Crc32cTable();
  for (size_t i = 0; i < size; ++i) {
    state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size) {
  const uint32_t state =
      Update(0xFFFFFFFFu, static_cast<const unsigned char*>(data), size);
  return state ^ 0xFFFFFFFFu;
}

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const uint32_t state = Update(crc ^ 0xFFFFFFFFu,
                                static_cast<const unsigned char*>(data), size);
  return state ^ 0xFFFFFFFFu;
}

}  // namespace coign
