// Minimal leveled logging to stderr. Verbosity is a process-global knob so
// benchmarks and tests can silence the library.

#ifndef COIGN_SRC_SUPPORT_LOG_H_
#define COIGN_SRC_SUPPORT_LOG_H_

#include <string_view>

namespace coign {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits "[LEVEL] message\n" to stderr when level >= the global threshold.
void LogMessage(LogLevel level, std::string_view message);

}  // namespace coign

#define COIGN_LOG(level, ...)                                               \
  do {                                                                      \
    if (static_cast<int>(::coign::LogLevel::level) >=                       \
        static_cast<int>(::coign::GetLogLevel())) {                         \
      ::coign::LogMessage(::coign::LogLevel::level,                         \
                          ::coign::StrFormat(__VA_ARGS__));                 \
    }                                                                       \
  } while (false)

#endif  // COIGN_SRC_SUPPORT_LOG_H_
