// Lightweight Status / Result<T> error handling used across all Coign libraries.
//
// Library code does not throw across API boundaries; fallible operations return
// Status (no payload) or Result<T> (payload or error). Both carry a StatusCode
// and a human-readable message.

#ifndef COIGN_SRC_SUPPORT_STATUS_H_
#define COIGN_SRC_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace coign {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

// Returns a stable, human-readable name like "INVALID_ARGUMENT".
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);

// A value-or-error holder. Accessing value() on an error is a programming
// bug and aborts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {     // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagates errors upward: RETURN_IF_ERROR(DoThing());
#define COIGN_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::coign::Status coign_status__ = (expr);   \
    if (!coign_status__.ok()) {                \
      return coign_status__;                   \
    }                                          \
  } while (false)

}  // namespace coign

#endif  // COIGN_SRC_SUPPORT_STATUS_H_
