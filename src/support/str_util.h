// printf-style string formatting and joining helpers.

#ifndef COIGN_SRC_SUPPORT_STR_UTIL_H_
#define COIGN_SRC_SUPPORT_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace coign {

// printf into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> SplitString(std::string_view text, char sep);

bool StartsWith(std::string_view text, std::string_view prefix);

// Human-readable byte counts: "512 B", "4.0 KB", "3.2 MB".
std::string FormatBytes(uint64_t bytes);

}  // namespace coign

#endif  // COIGN_SRC_SUPPORT_STR_UTIL_H_
