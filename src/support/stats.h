// Statistics helpers used by the network profiler (linear fits of message
// time vs size), the classifier evaluation (communication-vector
// correlation, Section 4.2 of the paper), and the benchmarks.

#ifndef COIGN_SRC_SUPPORT_STATS_H_
#define COIGN_SRC_SUPPORT_STATS_H_

#include <cstddef>
#include <vector>

namespace coign {

// Streaming mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance (n - 1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Least-squares fit y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;

  double Evaluate(double x) const { return intercept + slope * x; }
};

// Requires xs.size() == ys.size() >= 2 and non-constant xs; otherwise the
// slope is 0 and the intercept the mean of ys.
LinearFit FitLinear(const std::vector<double>& xs, const std::vector<double>& ys);

// Normalized dot product of two equal-length vectors, the paper's
// instance-communication-vector correlation: 1 means equivalent
// communication behaviour, 0 means none shared. Zero vectors correlate 1
// with zero vectors and 0 with anything else.
double DotProductCorrelation(const std::vector<double>& a, const std::vector<double>& b);

// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& values);

// p in [0, 1]; linear interpolation between order statistics.
double Percentile(std::vector<double> values, double p);

}  // namespace coign

#endif  // COIGN_SRC_SUPPORT_STATS_H_
