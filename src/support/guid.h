// 128-bit globally unique identifiers, the identity primitive of the
// component model (interface IDs, class IDs). Deterministic name-derived
// GUIDs keep every run reproducible without a central allocator, mirroring
// how COM IIDs/CLSIDs are fixed at compile time.

#ifndef COIGN_SRC_SUPPORT_GUID_H_
#define COIGN_SRC_SUPPORT_GUID_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/support/status.h"

namespace coign {

struct Guid {
  uint64_t hi = 0;
  uint64_t lo = 0;

  constexpr bool IsNull() const { return hi == 0 && lo == 0; }

  // Derives a GUID from a name via a 128-bit FNV-1a style hash. The same
  // name always produces the same GUID.
  static Guid FromName(std::string_view name);

  // "{0123456789abcdef-0123456789abcdef}".
  std::string ToString() const;
  static Result<Guid> Parse(std::string_view text);

  friend constexpr bool operator==(const Guid& a, const Guid& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend constexpr auto operator<=>(const Guid& a, const Guid& b) = default;
};

struct GuidHash {
  size_t operator()(const Guid& g) const {
    // hi and lo are already well-mixed hash output; fold them.
    return static_cast<size_t>(g.hi ^ (g.lo * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace coign

template <>
struct std::hash<coign::Guid> {
  size_t operator()(const coign::Guid& g) const { return coign::GuidHash{}(g); }
};

#endif  // COIGN_SRC_SUPPORT_GUID_H_
