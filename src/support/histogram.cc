#include "src/support/histogram.h"

#include <algorithm>
#include <bit>

#include "src/support/str_util.h"

namespace coign {

int ExponentialHistogram::BucketFor(uint64_t bytes) {
  if (bytes <= 1) {
    return 0;
  }
  const int bucket = 63 - std::countl_zero(bytes);
  return std::min(bucket, kMaxBucket);
}

uint64_t ExponentialHistogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) {
    return 0;
  }
  return uint64_t{1} << bucket;
}

ExponentialHistogram::Bucket& ExponentialHistogram::FindOrInsert(int bucket) {
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), bucket,
      [](const auto& entry, int b) { return entry.first < b; });
  if (it == buckets_.end() || it->first != bucket) {
    it = buckets_.insert(it, {bucket, Bucket{}});
  }
  return it->second;
}

const ExponentialHistogram::Bucket* ExponentialHistogram::Find(int bucket) const {
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), bucket,
      [](const auto& entry, int b) { return entry.first < b; });
  if (it == buckets_.end() || it->first != bucket) {
    return nullptr;
  }
  return &it->second;
}

void ExponentialHistogram::Add(uint64_t bytes) {
  Bucket& b = FindOrInsert(BucketFor(bytes));
  b.count += 1;
  b.bytes += bytes;
  total_count_ += 1;
  total_bytes_ += bytes;
}

void ExponentialHistogram::AddBucket(int bucket, uint64_t count, uint64_t bytes) {
  Bucket& b = FindOrInsert(bucket);
  b.count += count;
  b.bytes += bytes;
  total_count_ += count;
  total_bytes_ += bytes;
}

void ExponentialHistogram::Merge(const ExponentialHistogram& other) {
  for (const auto& [index, bucket] : other.buckets_) {
    Bucket& mine = FindOrInsert(index);
    mine.count += bucket.count;
    mine.bytes += bucket.bytes;
  }
  total_count_ += other.total_count_;
  total_bytes_ += other.total_bytes_;
}

uint64_t ExponentialHistogram::CountAt(int bucket) const {
  const Bucket* b = Find(bucket);
  return b != nullptr ? b->count : 0;
}

uint64_t ExponentialHistogram::BytesAt(int bucket) const {
  const Bucket* b = Find(bucket);
  return b != nullptr ? b->bytes : 0;
}

double ExponentialHistogram::MeanSizeAt(int bucket) const {
  const Bucket* b = Find(bucket);
  if (b == nullptr || b->count == 0) {
    return 0.0;
  }
  return static_cast<double>(b->bytes) / static_cast<double>(b->count);
}

std::vector<int> ExponentialHistogram::NonEmptyBuckets() const {
  std::vector<int> out;
  out.reserve(buckets_.size());
  for (const auto& [index, bucket] : buckets_) {
    if (bucket.count > 0) {
      out.push_back(index);
    }
  }
  return out;
}

std::string ExponentialHistogram::ToString() const {
  std::string out = StrFormat("hist{n=%llu, bytes=%llu",
                              static_cast<unsigned long long>(total_count_),
                              static_cast<unsigned long long>(total_bytes_));
  for (const auto& [index, bucket] : buckets_) {
    out += StrFormat(", [%llu+)=%llu",
                     static_cast<unsigned long long>(BucketLowerBound(index)),
                     static_cast<unsigned long long>(bucket.count));
  }
  out += "}";
  return out;
}

}  // namespace coign
