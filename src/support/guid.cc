#include "src/support/guid.h"

#include <cstdio>

namespace coign {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t Fnv1a(std::string_view data, uint64_t seed) {
  uint64_t h = kFnvOffset ^ seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  // Final avalanche (splitmix64 finalizer) to spread low-entropy names.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

Result<uint64_t> ParseHex64(std::string_view text) {
  if (text.size() != 16) {
    return InvalidArgumentError("expected 16 hex digits");
  }
  uint64_t value = 0;
  for (char c : text) {
    int digit = HexValue(c);
    if (digit < 0) {
      return InvalidArgumentError("invalid hex digit in GUID");
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

}  // namespace

Guid Guid::FromName(std::string_view name) {
  Guid g;
  g.hi = Fnv1a(name, /*seed=*/0);
  g.lo = Fnv1a(name, /*seed=*/0x5bd1e995u);
  if (g.IsNull()) {
    g.lo = 1;  // Never collide with the null GUID.
  }
  return g;
}

std::string Guid::ToString() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "{%016llx-%016llx}",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Result<Guid> Guid::Parse(std::string_view text) {
  // Format: {16 hex}-{16 hex} inside braces, 35 chars total.
  if (text.size() != 35 || text.front() != '{' || text.back() != '}' ||
      text[17] != '-') {
    return InvalidArgumentError("malformed GUID literal");
  }
  Result<uint64_t> hi = ParseHex64(text.substr(1, 16));
  if (!hi.ok()) {
    return hi.status();
  }
  Result<uint64_t> lo = ParseHex64(text.substr(18, 16));
  if (!lo.ok()) {
    return lo.status();
  }
  return Guid{*hi, *lo};
}

}  // namespace coign
