// Exponential size-range histogram, the paper's profiling-logger data
// structure (Section 3.3): message sizes are summarized in ranges whose
// widths grow exponentially, so storage does not grow with execution time
// while the summary stays network-independent.

#ifndef COIGN_SRC_SUPPORT_HISTOGRAM_H_
#define COIGN_SRC_SUPPORT_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace coign {

// Bucket b holds sizes in [2^b, 2^(b+1)) bytes; bucket 0 also holds size 0.
class ExponentialHistogram {
 public:
  static constexpr int kMaxBucket = 40;  // Up to a terabyte per message.

  // Bucket index for a byte count.
  static int BucketFor(uint64_t bytes);
  // Inclusive lower bound of a bucket.
  static uint64_t BucketLowerBound(int bucket);

  void Add(uint64_t bytes);
  // Adds pre-summarized data directly into a bucket (profile log loading).
  void AddBucket(int bucket, uint64_t count, uint64_t bytes);
  void Merge(const ExponentialHistogram& other);

  uint64_t total_count() const { return total_count_; }
  uint64_t total_bytes() const { return total_bytes_; }

  // Count of messages recorded in the given bucket.
  uint64_t CountAt(int bucket) const;
  // Exact accumulated bytes of the messages in the bucket (we keep the sum,
  // not just the count, so summarization loses no total-byte accuracy).
  uint64_t BytesAt(int bucket) const;
  // Mean message size within the bucket; 0 if the bucket is empty.
  double MeanSizeAt(int bucket) const;

  // Indices of non-empty buckets, ascending.
  std::vector<int> NonEmptyBuckets() const;

  bool empty() const { return total_count_ == 0; }

  std::string ToString() const;

  friend bool operator==(const ExponentialHistogram& a,
                         const ExponentialHistogram& b) = default;

 private:
  struct Bucket {
    uint64_t count = 0;
    uint64_t bytes = 0;
    friend bool operator==(const Bucket&, const Bucket&) = default;
  };

  // Sparse storage: most (pair, method) histograms touch a handful of
  // buckets. Sorted by index.
  std::vector<std::pair<int, Bucket>> buckets_;
  uint64_t total_count_ = 0;
  uint64_t total_bytes_ = 0;

  Bucket& FindOrInsert(int bucket);
  const Bucket* Find(int bucket) const;
};

}  // namespace coign

#endif  // COIGN_SRC_SUPPORT_HISTOGRAM_H_
