// Deterministic pseudo-random number generation. Every stochastic element of
// the system — scenario scripts, network jitter, the network profiler's
// statistical sampling — draws from an explicitly seeded Rng so that whole
// experiments replay bit-for-bit.

#ifndef COIGN_SRC_SUPPORT_RNG_H_
#define COIGN_SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace coign {

// xoshiro256** seeded via splitmix64. Small, fast, and good enough for
// simulation workloads; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextUint64();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Normal(mean, stddev) via Box-Muller.
  double Normal(double mean, double stddev);

  // Exponential with the given mean (mean = 1/lambda). mean must be > 0.
  double Exponential(double mean);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Forks an independent stream; children of distinct indices are
  // decorrelated from each other and from the parent.
  Rng Fork(uint64_t stream_index);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace coign

#endif  // COIGN_SRC_SUPPORT_RNG_H_
