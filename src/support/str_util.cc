#include "src/support/str_util.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace coign {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string FormatBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) {
    return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  }
  return StrFormat("%.1f %s", value, kUnits[unit]);
}

}  // namespace coign
