#include "src/support/rng.h"

#include <cassert>
#include <cmath>

namespace coign {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % range);
  uint64_t draw;
  do {
    draw = NextUint64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::UniformDouble() {
  // 53 bits of mantissa.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

Rng Rng::Fork(uint64_t stream_index) {
  // Derive a child seed from the parent stream plus the index; the splitmix
  // finalizer in the constructor decorrelates neighbouring indices.
  const uint64_t child_seed =
      NextUint64() ^ (stream_index * 0x9e3779b97f4a7c15ull + 0x632be59bd9b4e019ull);
  return Rng(child_seed);
}

}  // namespace coign
