// CRC32C (Castagnoli, polynomial 0x1EDC6F41) used by the wire-integrity
// envelope and the checksummed persistence formats (plan cache v4,
// migration journal v2). Software table implementation — no hardware
// intrinsics, so checksums are identical on every build host, which the
// byte-determinism CI gates depend on.

#ifndef COIGN_SRC_SUPPORT_CRC32C_H_
#define COIGN_SRC_SUPPORT_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace coign {

// CRC32C of `size` bytes starting at `data`.
uint32_t Crc32c(const void* data, size_t size);

inline uint32_t Crc32c(std::string_view text) {
  return Crc32c(text.data(), text.size());
}

// Extends a running CRC with more bytes: Crc32cExtend(Crc32c(a), b) ==
// Crc32c(a + b). `crc` is a finalized CRC as returned by Crc32c.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

}  // namespace coign

#endif  // COIGN_SRC_SUPPORT_CRC32C_H_
