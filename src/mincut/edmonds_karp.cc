#include "src/mincut/edmonds_karp.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <vector>

namespace coign {

CutResult MinCutEdmondsKarp(const FlowNetwork& original, int source, int sink) {
  assert(source != sink);
  // Augmentation mutates only this per-call copy; see the header's
  // re-entrancy contract.
  FlowNetwork network = original;
  CapUnits total_flow = 0;
  const int n = network.node_count();

  while (true) {
    // BFS for the shortest augmenting path.
    std::vector<int> parent_node(static_cast<size_t>(n), -1);
    std::vector<size_t> parent_arc(static_cast<size_t>(n), 0);
    std::deque<int> queue = {source};
    parent_node[static_cast<size_t>(source)] = source;
    while (!queue.empty() && parent_node[static_cast<size_t>(sink)] < 0) {
      const int u = queue.front();
      queue.pop_front();
      auto& arcs = network.ArcsFrom(u);
      for (size_t i = 0; i < arcs.size(); ++i) {
        const FlowArc& arc = arcs[i];
        if (arc.Residual() > 0 && parent_node[static_cast<size_t>(arc.to)] < 0) {
          parent_node[static_cast<size_t>(arc.to)] = u;
          parent_arc[static_cast<size_t>(arc.to)] = i;
          queue.push_back(arc.to);
        }
      }
    }
    if (parent_node[static_cast<size_t>(sink)] < 0) {
      break;  // No augmenting path remains.
    }

    // Bottleneck along the path. A path of all-sentinel arcs bottlenecks
    // at kInfiniteCapacity itself; the augment below then saturates those
    // arcs exactly, so the loop still terminates on infeasible inputs.
    CapUnits bottleneck = kInfiniteCapacity;
    for (int v = sink; v != source; v = parent_node[static_cast<size_t>(v)]) {
      const int u = parent_node[static_cast<size_t>(v)];
      const FlowArc& arc = network.ArcsFrom(u)[parent_arc[static_cast<size_t>(v)]];
      bottleneck = std::min(bottleneck, arc.Residual());
    }
    assert(bottleneck > 0);

    // Augment. Per-arc updates are exact (flow + bottleneck <= capacity on
    // the bottleneck arc, and every arc's flow stays within its capacity);
    // only the running total can saturate, which is the desired sentinel.
    for (int v = sink; v != source; v = parent_node[static_cast<size_t>(v)]) {
      const int u = parent_node[static_cast<size_t>(v)];
      FlowArc& arc = network.ArcsFrom(u)[parent_arc[static_cast<size_t>(v)]];
      arc.flow = SatAdd(arc.flow, bottleneck);
      FlowArc& reverse = network.ArcsFrom(arc.to)[arc.reverse_index];
      reverse.flow = SatSub(reverse.flow, bottleneck);
    }
    total_flow = SatAdd(total_flow, bottleneck);
  }

  return ExtractCut(network, source, total_flow);
}

}  // namespace coign
