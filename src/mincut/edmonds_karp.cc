#include "src/mincut/edmonds_karp.h"

#include <cassert>
#include <deque>
#include <limits>
#include <vector>

namespace coign {

CutResult MinCutEdmondsKarp(const FlowNetwork& original, int source, int sink) {
  assert(source != sink);
  constexpr double kEps = 1e-12;
  // Augmentation mutates only this per-call copy; see the header's
  // re-entrancy contract.
  FlowNetwork network = original;
  double total_flow = 0.0;
  const int n = network.node_count();

  while (true) {
    // BFS for the shortest augmenting path.
    std::vector<int> parent_node(static_cast<size_t>(n), -1);
    std::vector<size_t> parent_arc(static_cast<size_t>(n), 0);
    std::deque<int> queue = {source};
    parent_node[static_cast<size_t>(source)] = source;
    while (!queue.empty() && parent_node[static_cast<size_t>(sink)] < 0) {
      const int u = queue.front();
      queue.pop_front();
      auto& arcs = network.ArcsFrom(u);
      for (size_t i = 0; i < arcs.size(); ++i) {
        const FlowArc& arc = arcs[i];
        if (arc.Residual() > kEps && parent_node[static_cast<size_t>(arc.to)] < 0) {
          parent_node[static_cast<size_t>(arc.to)] = u;
          parent_arc[static_cast<size_t>(arc.to)] = i;
          queue.push_back(arc.to);
        }
      }
    }
    if (parent_node[static_cast<size_t>(sink)] < 0) {
      break;  // No augmenting path remains.
    }

    // Bottleneck along the path.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (int v = sink; v != source; v = parent_node[static_cast<size_t>(v)]) {
      const int u = parent_node[static_cast<size_t>(v)];
      const FlowArc& arc = network.ArcsFrom(u)[parent_arc[static_cast<size_t>(v)]];
      bottleneck = std::min(bottleneck, arc.Residual());
    }

    // Augment.
    for (int v = sink; v != source; v = parent_node[static_cast<size_t>(v)]) {
      const int u = parent_node[static_cast<size_t>(v)];
      FlowArc& arc = network.ArcsFrom(u)[parent_arc[static_cast<size_t>(v)]];
      arc.flow += bottleneck;
      network.ArcsFrom(arc.to)[arc.reverse_index].flow -= bottleneck;
    }
    total_flow += bottleneck;
  }

  return ExtractCut(network, source, total_flow);
}

}  // namespace coign
