#include "src/mincut/compact_flow_network.h"

#include <cassert>

namespace coign {

CompactFlowNetwork::CompactFlowNetwork(int node_count) : node_count_(node_count) {
  assert(node_count >= 0);
}

int CompactFlowNetwork::AddPair(int from, int to, CapUnits capacity, CapUnits reverse_capacity,
                                bool directed) {
  assert(!finalized_);
  assert(from >= 0 && from < node_count_);
  assert(to >= 0 && to < node_count_);
  assert(capacity >= 0);
  assert(reverse_capacity >= 0);
  StagedEdge edge;
  edge.from = from;
  edge.to = to;
  edge.capacity = capacity;
  edge.reverse_capacity = reverse_capacity;
  edge.directed = directed;
  edges_.push_back(edge);
  return static_cast<int>(edges_.size()) - 1;
}

int CompactFlowNetwork::AddArc(int from, int to, CapUnits capacity) {
  return AddPair(from, to, capacity, 0, /*directed=*/true);
}

int CompactFlowNetwork::AddEdge(int a, int b, CapUnits capacity) {
  return AddPair(a, b, capacity, capacity, /*directed=*/false);
}

void CompactFlowNetwork::Finalize() {
  if (finalized_) {
    return;
  }
  finalized_ = true;
  const size_t n = static_cast<size_t>(node_count_);
  first_out_.assign(n + 1, 0);
  // Each staged edge contributes one arc at its tail and one at its head.
  // Placing them by a stable counting sort over the staged order yields
  // the same per-node arc order FlowNetwork's AddArc/AddEdge appends
  // produce, which keeps cut_edges extraction byte-identical.
  for (const StagedEdge& edge : edges_) {
    ++first_out_[static_cast<size_t>(edge.from) + 1];
    ++first_out_[static_cast<size_t>(edge.to) + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    first_out_[v + 1] += first_out_[v];
  }
  arcs_.assign(edges_.size() * 2, CompactArc{});
  edge_forward_.assign(edges_.size(), 0);
  std::vector<int> next_slot(first_out_.begin(), first_out_.end() - 1);
  for (size_t i = 0; i < edges_.size(); ++i) {
    const StagedEdge& edge = edges_[i];
    const int forward = next_slot[static_cast<size_t>(edge.from)]++;
    const int backward = next_slot[static_cast<size_t>(edge.to)]++;
    arcs_[static_cast<size_t>(forward)].to = edge.to;
    arcs_[static_cast<size_t>(forward)].reverse = backward;
    arcs_[static_cast<size_t>(forward)].capacity = edge.capacity;
    arcs_[static_cast<size_t>(backward)].to = edge.from;
    arcs_[static_cast<size_t>(backward)].reverse = forward;
    arcs_[static_cast<size_t>(backward)].capacity = edge.reverse_capacity;
    edge_forward_[i] = forward;
  }
}

CompactFlowNetwork CompactFlowNetwork::FromFlowNetwork(const FlowNetwork& network) {
  // FlowNetwork appends each arc pair atomically (forward at `from`,
  // partner at `to`), so every node's slot order is the restriction of
  // one global edge-insertion order. Rebuilding any linear extension of
  // the per-node slot orders reproduces identical per-node CSR order.
  // (A naive (node, slot) sweep is NOT such an extension: a pair first
  // seen via its low-numbered head can jump ahead of a pair that precedes
  // it at the shared tail.) Replay with per-node cursors instead: a pair
  // is ready only when it is the next unconsumed slot at *both*
  // endpoints; staging ready pairs until none remain is a valid
  // extension, and one always exists because the original insertion
  // sequence is one.
  const int n = network.node_count();
  CompactFlowNetwork compact(n);
  std::vector<size_t> cursor(static_cast<size_t>(n), 0);
  size_t total_pairs = 0;
  for (int v = 0; v < n; ++v) {
    total_pairs += network.ArcsFrom(v).size();
  }
  total_pairs /= 2;

  std::vector<int> stack;
  stack.reserve(static_cast<size_t>(n));
  for (int v = n - 1; v >= 0; --v) {
    stack.push_back(v);
  }
  size_t staged = 0;
  auto stage_pair = [&](int v, const FlowArc& arc, const FlowArc& partner) {
    // Direction is recoverable from capacities: an AddArc partner is a
    // zero-capacity stub, an AddEdge partner matches the forward
    // capacity. Equal (incl. both-zero) pairs are behaviorally symmetric
    // either way; an asymmetric nonzero pair (only possible if capacities
    // were edited post-build) is staged verbatim via AddPair.
    if (partner.capacity == arc.capacity) {
      compact.AddPair(v, arc.to, arc.capacity, partner.capacity, /*directed=*/false);
    } else if (partner.capacity == 0) {
      compact.AddPair(v, arc.to, arc.capacity, 0, /*directed=*/true);
    } else if (arc.capacity == 0) {
      compact.AddPair(arc.to, v, partner.capacity, 0, /*directed=*/true);
    } else {
      compact.AddPair(v, arc.to, arc.capacity, partner.capacity, /*directed=*/true);
    }
  };
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    while (cursor[static_cast<size_t>(v)] < network.ArcsFrom(v).size()) {
      const FlowArc& arc = network.ArcsFrom(v)[cursor[static_cast<size_t>(v)]];
      const int w = arc.to;
      if (w == v) {
        // Self-loop pair occupies two consecutive slots at v.
        const FlowArc& partner = network.ArcsFrom(v)[arc.reverse_index];
        stage_pair(v, arc, partner);
        cursor[static_cast<size_t>(v)] += 2;
        ++staged;
        continue;
      }
      if (cursor[static_cast<size_t>(w)] != arc.reverse_index) {
        break;  // Partner is not next at its node yet; revisit later.
      }
      const FlowArc& partner = network.ArcsFrom(w)[arc.reverse_index];
      assert(partner.to == v);
      stage_pair(v, arc, partner);
      ++cursor[static_cast<size_t>(v)];
      ++cursor[static_cast<size_t>(w)];
      ++staged;
      stack.push_back(w);  // w's next slot may have become ready.
    }
  }
  assert(staged == total_pairs);
  (void)total_pairs;
  compact.Finalize();
  return compact;
}

void CompactFlowNetwork::SetEdgeCapacity(int edge_id, CapUnits capacity) {
  assert(finalized_);
  assert(edge_id >= 0 && edge_id < edge_count());
  assert(capacity >= 0);
  StagedEdge& edge = edges_[static_cast<size_t>(edge_id)];
  edge.capacity = capacity;
  CompactArc& forward = arcs_[static_cast<size_t>(edge_forward_[static_cast<size_t>(edge_id)])];
  forward.capacity = capacity;
  if (!edge.directed) {
    edge.reverse_capacity = capacity;
    arcs_[static_cast<size_t>(forward.reverse)].capacity = capacity;
  }
}

CapUnits CompactFlowNetwork::EdgeCapacity(int edge_id) const {
  assert(edge_id >= 0 && edge_id < edge_count());
  return edges_[static_cast<size_t>(edge_id)].capacity;
}

void CompactFlowNetwork::ResetFlow() {
  for (CompactArc& arc : arcs_) {
    arc.flow = 0;
  }
}

uint64_t CompactFlowNetwork::TopologySignature() const {
  // FNV-1a, matching the style of fleet::ProfileFingerprint. Capacities
  // are deliberately excluded: equal signatures mean a session can apply
  // the new capacities as deltas instead of rebuilding.
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(node_count_));
  for (const StagedEdge& edge : edges_) {
    mix(static_cast<uint64_t>(edge.from));
    mix(static_cast<uint64_t>(edge.to));
    mix(edge.directed ? 1u : 0u);
  }
  return hash;
}

CutResult CompactFlowNetwork::ExtractCut(int source, CapUnits flow_value) const {
  assert(finalized_);
  CutResult result;
  result.cut_value = flow_value;
  result.in_source_side.assign(static_cast<size_t>(node_count_), false);
  std::vector<int> stack = {source};
  result.in_source_side[static_cast<size_t>(source)] = true;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    const int end = first_out(node + 1);
    for (int a = first_out(node); a < end; ++a) {
      const CompactArc& arc = arcs_[static_cast<size_t>(a)];
      if (arc.Residual() > 0 && !result.in_source_side[static_cast<size_t>(arc.to)]) {
        result.in_source_side[static_cast<size_t>(arc.to)] = true;
        stack.push_back(arc.to);
      }
    }
  }
  bool sentinel_crossing = false;
  for (int node = 0; node < node_count_; ++node) {
    if (!result.in_source_side[static_cast<size_t>(node)]) {
      continue;
    }
    const int end = first_out(node + 1);
    for (int a = first_out(node); a < end; ++a) {
      const CompactArc& arc = arcs_[static_cast<size_t>(a)];
      if (arc.capacity > 0 && !result.in_source_side[static_cast<size_t>(arc.to)]) {
        result.cut_edges.emplace_back(node, arc.to);
        if (arc.capacity == kInfiniteCapacity) {
          sentinel_crossing = true;
        }
      }
    }
  }
  // Same sentinel promotion rule as ExtractCut(FlowNetwork...).
  if (sentinel_crossing) {
    result.cut_value = kInfiniteCapacity;
  }
  return result;
}

}  // namespace coign
