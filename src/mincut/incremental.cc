#include "src/mincut/incremental.h"

#include <algorithm>
#include <cassert>

namespace coign {

void IncrementalMinCut::Reset(CompactFlowNetwork network, int source, int sink) {
  assert(network.finalized());
  assert(source != sink);
  assert(source >= 0 && source < network.node_count());
  assert(sink >= 0 && sink < network.node_count());
  network_ = std::move(network);
  network_.ResetFlow();
  source_ = source;
  sink_ = sink;
  has_network_ = true;
  has_flow_ = false;
  last_infeasible_ = false;
  dirty_edges_.clear();
}

void IncrementalMinCut::SetEdgeCapacity(int edge_id, CapUnits capacity) {
  assert(has_network_);
  if (network_.EdgeCapacity(edge_id) == capacity) {
    return;
  }
  network_.SetEdgeCapacity(edge_id, capacity);
  dirty_edges_.push_back(edge_id);
}

bool IncrementalMinCut::RepairFlow() {
  // Saturated flow values make derived excess unreliable (SatAdd can have
  // absorbed units); only possible on sentinel-capacity graphs. Punt.
  const int arc_count = network_.arc_count();
  for (int a = 0; a < arc_count; ++a) {
    const CapUnits flow = network_.arc(a).flow;
    if (flow == kInfiniteCapacity || flow == -kInfiniteCapacity) {
      return false;
    }
  }

  // Clip over-capacity flow on the decreased arcs. Antisymmetry means at
  // most one direction of a pair carries positive flow, and all values
  // here are strictly inside the finite range, so plain arithmetic is
  // exact.
  bool clipped = false;
  for (const int edge_id : dirty_edges_) {
    const int forward = network_.EdgeForwardArc(edge_id);
    const int indices[2] = {forward, network_.arc(forward).reverse};
    for (const int index : indices) {
      CompactArc& arc = network_.arc(index);
      if (arc.flow > arc.capacity) {
        network_.arc(arc.reverse).flow = -arc.capacity;
        arc.flow = arc.capacity;
        clipped = true;
      }
    }
  }
  if (!clipped) {
    return true;  // Pure increases: the retained flow is still feasible.
  }

  // Derived per-node balance (inflow minus outflow). For the retained
  // maximum flow this was 0 at every non-terminal node; clipping d units
  // off an arc leaves +d at its tail (ordinary preflow excess, fine) and
  // -d at its head (a deficit that must be cancelled before the solver
  // can resume).
  const int n = network_.node_count();
  balance_.assign(static_cast<size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    const int end = network_.first_out(v + 1);
    CapUnits balance = 0;
    for (int a = network_.first_out(v); a < end; ++a) {
      balance -= network_.arc(a).flow;  // Exact: guard above bounds |flow|.
    }
    balance_[static_cast<size_t>(v)] = balance;
  }

  deficit_queue_.clear();
  for (int v = 0; v < n; ++v) {
    if (v != source_ && v != sink_ && balance_[static_cast<size_t>(v)] < 0) {
      deficit_queue_.push_back(v);
    }
  }

  // Cancel each deficit by draining the node's own positive-flow
  // out-arcs: the node forwarded units it no longer receives, so its
  // outflow exceeds its inflow by exactly the deficit and enough
  // drainable flow always exists. Draining may move the deficit one hop
  // downstream (re-queued); terminals absorb imbalance. A deficit chased
  // around a positive-flow cycle shrinks the cycle's flow every lap, so
  // this terminates — but laps can be numerous on adversarial inputs, so
  // a generous operation budget bounds the walk and overruns fall back
  // to a cold solve (performance lost, exactness kept).
  size_t budget = 4 * static_cast<size_t>(arc_count) + 64 * dirty_edges_.size() + 256;
  while (!deficit_queue_.empty()) {
    const int v = deficit_queue_.back();
    deficit_queue_.pop_back();
    CapUnits deficit = -balance_[static_cast<size_t>(v)];
    if (deficit <= 0) {
      continue;
    }
    const int begin = network_.first_out(v);
    const int end = network_.first_out(v + 1);
    for (int a = begin; a < end && deficit > 0; ++a) {
      CompactArc& arc = network_.arc(a);
      if (arc.flow <= 0 || arc.to == v) {
        continue;  // Draining a self-loop cannot move the balance.
      }
      if (budget-- == 0) {
        return false;
      }
      const CapUnits amount = std::min(deficit, arc.flow);
      arc.flow -= amount;
      network_.arc(arc.reverse).flow += amount;
      deficit -= amount;
      balance_[static_cast<size_t>(v)] += amount;
      CapUnits& downstream = balance_[static_cast<size_t>(arc.to)];
      const bool was_deficit = downstream < 0;
      downstream -= amount;
      if (!was_deficit && downstream < 0 && arc.to != source_ && arc.to != sink_) {
        deficit_queue_.push_back(arc.to);
      }
    }
    if (deficit > 0) {
      // Outflow ran out before the deficit did — impossible for a flow
      // that was consistent before clipping; treat defensively.
      return false;
    }
  }
  return true;
}

CutResult IncrementalMinCut::Solve() {
  assert(has_network_);
  last_stats_ = MinCutSolveStats{};
  bool warm = has_flow_ && !last_infeasible_;
  if (warm) {
    warm = RepairFlow();
  }
  if (!warm) {
    // Cold solve (first cut, or repair declined). Also wipes any partial
    // repair state.
    network_.ResetFlow();
  } else {
    ++last_stats_.warm_start_hits;
    // Sink inflow surviving the repair — flow the warm start did not
    // have to recompute.
    CapUnits inflow = 0;
    const int end = network_.first_out(sink_ + 1);
    for (int a = network_.first_out(sink_); a < end; ++a) {
      inflow = SatSub(inflow, network_.arc(a).flow);
    }
    if (inflow > 0) {
      last_stats_.flow_reused_units = inflow;
    }
  }
  dirty_edges_.clear();

  const CapUnits flow = solver_.Solve(network_, source_, sink_);
  const MinCutSolveStats& solve = solver_.last_stats();
  last_stats_.pushes += solve.pushes;
  last_stats_.relabels += solve.relabels;
  last_stats_.global_relabels += solve.global_relabels;
  last_stats_.gap_relabels += solve.gap_relabels;
  total_stats_.Accumulate(last_stats_);

  CutResult cut = network_.ExtractCut(source_, flow);
  has_flow_ = true;
  last_infeasible_ = cut.cut_value == kInfiniteCapacity;
  return cut;
}

}  // namespace coign
