// Flow networks for minimum-cut computation, in exact fixed-point units.
//
// The analysis engine reduces "choose a two-machine distribution of minimal
// communication time" to s-t minimum cut on the concrete ICC graph: client
// and server are the terminals, every classification is a node, and edge
// capacities are predicted communication time. Location constraints become
// sentinel (un-cuttable) capacities.
//
// Capacities and flows are CapUnits: 64-bit integers at picosecond scale.
// All residual arithmetic is exact, so Edmonds-Karp and relabel-to-front
// compute the *same* maximum-flow value on every input — no epsilons, no
// float absorption (the 1e30-capacity era had a real non-termination where
// 1e30 - 1e-3 == 1e30 manufactured excess forever). The only lossy step in
// the whole pipeline is the single quantization boundary in the analysis
// engine, where predicted seconds are rounded to units once (see
// SecondsToCapUnits below for the rounding rule and error bound).
//
// Re-entrancy contract: FlowNetwork is a plain value type with no shared
// or global state, and the min-cut entry points take it by const reference
// and run on per-call working copies. The fleet partitioning service
// relies on this to drive many cuts concurrently from a worker pool.

#ifndef COIGN_SRC_MINCUT_FLOW_NETWORK_H_
#define COIGN_SRC_MINCUT_FLOW_NETWORK_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace coign {

// Fixed-point capacity/flow unit. One unit is one picosecond of predicted
// communication time: fine enough that quantization can never flip a real
// placement decision (network costs are microseconds and up), coarse
// enough that ~107 days of total communication fit in the finite range.
using CapUnits = int64_t;

// Units per second at the quantization boundary (1 unit = 1 ps).
inline constexpr double kCapUnitsPerSecond = 1e12;

// Sentinel for an un-cuttable (location-constraint) edge. This is a true
// sentinel, not a big number folded into ordinary arithmetic: residual
// arithmetic saturates at it (SatAdd/SatSub below), and any cut forced to
// cross a sentinel arc reports exactly kInfiniteCapacity so callers can
// test for unsatisfiable constraints with ==.
inline constexpr CapUnits kInfiniteCapacity = std::numeric_limits<int64_t>::max();

// Largest representable finite capacity. Quantization clamps here;
// arithmetic that exceeds it saturates to the sentinel.
inline constexpr CapUnits kMaxFiniteCapacity = kInfiniteCapacity - 1;

// Saturating arithmetic over [-kInfiniteCapacity, kInfiniteCapacity].
// The symmetric range (INT64_MIN is never produced) keeps negation safe.
inline CapUnits SatAdd(CapUnits a, CapUnits b) {
  CapUnits out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return b > 0 ? kInfiniteCapacity : -kInfiniteCapacity;
  }
  return out < -kInfiniteCapacity ? -kInfiniteCapacity : out;
}

inline CapUnits SatSub(CapUnits a, CapUnits b) {
  CapUnits out = 0;
  if (__builtin_sub_overflow(a, b, &out)) {
    return b < 0 ? kInfiniteCapacity : -kInfiniteCapacity;
  }
  return out < -kInfiniteCapacity ? -kInfiniteCapacity : out;
}

// The quantization boundary: predicted seconds -> units, applied exactly
// once per edge when the analysis engine populates a FlowNetwork.
//
// Rounding rule: round half away from zero (llround). Error bound: for
// per-edge times up to 2^53 ps (~2.5 hours — the analysis domain is
// microseconds to minutes, far inside), each edge is off by at most 1 unit
// (1 ps): <= 0.5 from rounding to integer units plus <= 0.5 from
// representing the scaled product in double. A cut crossing E edges is
// therefore off by at most E units from the unquantized value, so any two
// cuts whose true values differ by more than 2E picoseconds keep their
// order — no realistic ICC graph comes near that. Negative and NaN inputs
// clamp to 0; values beyond the finite range clamp to kMaxFiniteCapacity.
inline CapUnits SecondsToCapUnits(double seconds) {
  if (!(seconds > 0.0)) {
    return 0;  // Also catches NaN.
  }
  const double scaled = seconds * kCapUnitsPerSecond;
  if (scaled >= static_cast<double>(kMaxFiniteCapacity)) {
    return kMaxFiniteCapacity;
  }
  return static_cast<CapUnits>(std::llround(scaled));
}

// Units -> seconds, for the report/display layer. The sentinel has no
// finite time; callers must test for it before converting.
inline double CapUnitsToSeconds(CapUnits units) {
  return static_cast<double>(units) / kCapUnitsPerSecond;
}

struct FlowArc {
  int to = 0;
  CapUnits capacity = 0;
  CapUnits flow = 0;
  size_t reverse_index = 0;  // Index of the reverse arc in adjacency[to].

  // Overflow-checked: a sentinel-capacity arc carrying finite flow (or a
  // reverse arc owing sentinel-scale flow) saturates instead of wrapping.
  CapUnits Residual() const { return SatSub(capacity, flow); }
};

class FlowNetwork {
 public:
  explicit FlowNetwork(int node_count);

  int node_count() const { return static_cast<int>(adjacency_.size()); }

  // Adds a directed arc with a zero-capacity reverse arc.
  void AddArc(int from, int to, CapUnits capacity);
  // Undirected edge: capacity in both directions (the usual form for
  // communication graphs — a byte costs the same whichever way it flows).
  void AddEdge(int a, int b, CapUnits capacity);

  std::vector<FlowArc>& ArcsFrom(int node) { return adjacency_[node]; }
  const std::vector<FlowArc>& ArcsFrom(int node) const { return adjacency_[node]; }

  void ResetFlow();

  // Nodes reachable from `source` through positive-residual arcs — the
  // source side of a minimum cut once a maximum flow is in place.
  std::vector<bool> ResidualReachable(int source) const;

 private:
  std::vector<std::vector<FlowArc>> adjacency_;
};

// A two-way partition produced by a min-cut algorithm.
struct CutResult {
  // == max flow value, exactly. kInfiniteCapacity when the cut crosses a
  // sentinel arc (constraints unsatisfiable) or the value saturated.
  CapUnits cut_value = 0;
  std::vector<bool> in_source_side;    // Per node.
  // Saturated edges crossing the cut, as (from, to) with from on the
  // source side.
  std::vector<std::pair<int, int>> cut_edges;

  int SourceSideCount() const;
};

// Derives the partition and cut edges after a max flow has been computed.
// If a sentinel-capacity arc crosses the partition, cut_value is promoted
// to exactly kInfiniteCapacity (both algorithms report unsatisfiable
// constraint sets identically).
CutResult ExtractCut(const FlowNetwork& network, int source, CapUnits flow_value);

}  // namespace coign

#endif  // COIGN_SRC_MINCUT_FLOW_NETWORK_H_
