// Flow networks for minimum-cut computation.
//
// The analysis engine reduces "choose a two-machine distribution of minimal
// communication time" to s-t minimum cut on the concrete ICC graph: client
// and server are the terminals, every classification is a node, and edge
// capacities are predicted communication seconds. Location constraints
// become effectively-infinite capacities.
//
// Re-entrancy contract: FlowNetwork is a plain value type with no shared
// or global state, and the min-cut entry points take it by const reference
// and run on per-call working copies. The fleet partitioning service
// relies on this to drive many cuts concurrently from a worker pool.

#ifndef COIGN_SRC_MINCUT_FLOW_NETWORK_H_
#define COIGN_SRC_MINCUT_FLOW_NETWORK_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace coign {

// Large finite stand-in for an un-cuttable edge; finite so residual
// arithmetic stays well-defined. Any real cut is astronomically cheaper.
inline constexpr double kInfiniteCapacity = 1e30;

struct FlowArc {
  int to = 0;
  double capacity = 0.0;
  double flow = 0.0;
  size_t reverse_index = 0;  // Index of the reverse arc in adjacency[to].

  double Residual() const { return capacity - flow; }
};

class FlowNetwork {
 public:
  explicit FlowNetwork(int node_count);

  int node_count() const { return static_cast<int>(adjacency_.size()); }

  // Adds a directed arc with a zero-capacity reverse arc.
  void AddArc(int from, int to, double capacity);
  // Undirected edge: capacity in both directions (the usual form for
  // communication graphs — a byte costs the same whichever way it flows).
  void AddEdge(int a, int b, double capacity);

  std::vector<FlowArc>& ArcsFrom(int node) { return adjacency_[node]; }
  const std::vector<FlowArc>& ArcsFrom(int node) const { return adjacency_[node]; }

  void ResetFlow();

  // Nodes reachable from `source` through positive-residual arcs — the
  // source side of a minimum cut once a maximum flow is in place.
  std::vector<bool> ResidualReachable(int source) const;

 private:
  std::vector<std::vector<FlowArc>> adjacency_;
};

// A two-way partition produced by a min-cut algorithm.
struct CutResult {
  double cut_value = 0.0;              // == max flow value.
  std::vector<bool> in_source_side;    // Per node.
  // Saturated edges crossing the cut, as (from, to) with from on the
  // source side.
  std::vector<std::pair<int, int>> cut_edges;

  int SourceSideCount() const;
};

// Derives the partition and cut edges after a max flow has been computed.
CutResult ExtractCut(const FlowNetwork& network, int source, double flow_value);

}  // namespace coign

#endif  // COIGN_SRC_MINCUT_FLOW_NETWORK_H_
