#include "src/mincut/relabel_to_front.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace coign {
namespace {

// CLRS lift-to-front push-relabel, in exact CapUnits arithmetic.
//
// The float era needed a capacity clamp here: saturating a constraint pin
// in the initial preflow gave a node excess 1e30, and any later push of a
// small finite amount was absorbed outright (1e30 - 1e-3 == 1e30), which
// manufactured excess from nothing and could keep Discharge busy forever.
// Integer arithmetic removes the failure mode at the root — every push
// moves exactly `amount` units out of the sender — so the clamp is gone
// and sentinel capacities flow through the algorithm unmodified.
//
// Stored excess uses SatAdd, which can lose excess at a node fed by two
// sentinel arcs (kInf + kInf saturates to kInf). That is benign for the
// result: the sink's excess — the returned flow value — only saturates
// when the true max flow itself reaches the sentinel (an all-sentinel s-t
// path), which is exactly the infeasibility answer we want; excess lost
// elsewhere is surplus that could only have drained back to the source.
// Termination is unaffected: the relabel bound (heights < 2n, O(V^2)
// relabels) and the saturating/nonsaturating push bounds are height
// arguments that do not depend on excess values being conserved.
class RelabelToFront {
 public:
  RelabelToFront(FlowNetwork& network, int source, int sink)
      : network_(network),
        source_(source),
        sink_(sink),
        n_(network.node_count()),
        height_(static_cast<size_t>(n_), 0),
        excess_(static_cast<size_t>(n_), 0),
        current_arc_(static_cast<size_t>(n_), 0) {}

  CapUnits Run() {
    InitializePreflow();
    // The discharge list: all vertices except source and sink, initially
    // in ascending order. Intrusive array-backed doubly-linked list (node
    // id -> prev/next), so building and reordering it performs no
    // per-node heap allocations — this runs once per cut, and the fleet
    // service runs thousands of cuts per plan.
    std::vector<int> next(static_cast<size_t>(n_), -1);
    std::vector<int> prev(static_cast<size_t>(n_), -1);
    int head = -1;
    int tail = -1;
    for (int v = 0; v < n_; ++v) {
      if (v == source_ || v == sink_) {
        continue;
      }
      if (head == -1) {
        head = v;
      } else {
        next[static_cast<size_t>(tail)] = v;
        prev[static_cast<size_t>(v)] = tail;
      }
      tail = v;
    }
    int it = head;
    while (it != -1) {
      const int u = it;
      const int old_height = height_[static_cast<size_t>(u)];
      Discharge(u);
      if (height_[static_cast<size_t>(u)] > old_height && u != head) {
        // Lift-to-front: a relabeled vertex moves to the head of the list
        // and the scan restarts from it. (Identical visit order to the
        // former std::list erase/push_front/begin sequence; a vertex
        // already at the head stays put either way.)
        const int p = prev[static_cast<size_t>(u)];
        const int q = next[static_cast<size_t>(u)];
        next[static_cast<size_t>(p)] = q;
        if (q != -1) {
          prev[static_cast<size_t>(q)] = p;
        } else {
          tail = p;
        }
        prev[static_cast<size_t>(u)] = -1;
        next[static_cast<size_t>(u)] = head;
        prev[static_cast<size_t>(head)] = u;
        head = u;
      }
      it = next[static_cast<size_t>(u)];
    }
    return excess_[static_cast<size_t>(sink_)];
  }

 private:
  void InitializePreflow() {
    height_[static_cast<size_t>(source_)] = n_;
    for (FlowArc& arc : network_.ArcsFrom(source_)) {
      const CapUnits amount = arc.Residual();
      if (amount <= 0) {
        continue;
      }
      arc.flow = SatAdd(arc.flow, amount);
      FlowArc& reverse = network_.ArcsFrom(arc.to)[arc.reverse_index];
      reverse.flow = SatSub(reverse.flow, amount);
      excess_[static_cast<size_t>(arc.to)] =
          SatAdd(excess_[static_cast<size_t>(arc.to)], amount);
      excess_[static_cast<size_t>(source_)] =
          SatSub(excess_[static_cast<size_t>(source_)], amount);
    }
  }

  void Push(int u, FlowArc& arc) {
    const CapUnits amount = std::min(excess_[static_cast<size_t>(u)], arc.Residual());
    arc.flow = SatAdd(arc.flow, amount);
    FlowArc& reverse = network_.ArcsFrom(arc.to)[arc.reverse_index];
    reverse.flow = SatSub(reverse.flow, amount);
    excess_[static_cast<size_t>(u)] -= amount;  // Exact: amount <= excess.
    excess_[static_cast<size_t>(arc.to)] =
        SatAdd(excess_[static_cast<size_t>(arc.to)], amount);
  }

  void Lift(int u) {
    int min_height = 2 * n_;
    for (const FlowArc& arc : network_.ArcsFrom(u)) {
      if (arc.Residual() > 0) {
        min_height = std::min(min_height, height_[static_cast<size_t>(arc.to)]);
      }
    }
    height_[static_cast<size_t>(u)] = min_height + 1;
  }

  void Discharge(int u) {
    while (excess_[static_cast<size_t>(u)] > 0) {
      auto& arcs = network_.ArcsFrom(u);
      if (current_arc_[static_cast<size_t>(u)] >= arcs.size()) {
        Lift(u);
        current_arc_[static_cast<size_t>(u)] = 0;
        continue;
      }
      FlowArc& arc = arcs[current_arc_[static_cast<size_t>(u)]];
      if (arc.Residual() > 0 &&
          height_[static_cast<size_t>(u)] == height_[static_cast<size_t>(arc.to)] + 1) {
        Push(u, arc);
      } else {
        ++current_arc_[static_cast<size_t>(u)];
      }
    }
  }

  FlowNetwork& network_;
  const int source_;
  const int sink_;
  const int n_;
  std::vector<int> height_;
  std::vector<CapUnits> excess_;
  std::vector<size_t> current_arc_;
};

}  // namespace

CutResult MinCutRelabelToFront(const FlowNetwork& original, int source, int sink) {
  assert(source != sink);
  assert(source >= 0 && source < original.node_count());
  assert(sink >= 0 && sink < original.node_count());

  // All mutation — preflow and relabeling — happens on this per-call
  // copy, which is what makes the entry point safe to call from many
  // worker threads at once.
  FlowNetwork network = original;
  RelabelToFront algorithm(network, source, sink);
  const CapUnits flow = algorithm.Run();
  return ExtractCut(network, source, flow);
}

}  // namespace coign
