#include "src/mincut/relabel_to_front.h"

#include <cassert>
#include <list>
#include <vector>

namespace coign {
namespace {

class RelabelToFront {
 public:
  RelabelToFront(FlowNetwork& network, int source, int sink)
      : network_(network),
        source_(source),
        sink_(sink),
        n_(network.node_count()),
        height_(static_cast<size_t>(n_), 0),
        excess_(static_cast<size_t>(n_), 0.0),
        current_arc_(static_cast<size_t>(n_), 0) {}

  double Run() {
    InitializePreflow();
    // The discharge list: all vertices except source and sink, any order.
    std::list<int> vertices;
    for (int v = 0; v < n_; ++v) {
      if (v != source_ && v != sink_) {
        vertices.push_back(v);
      }
    }
    auto it = vertices.begin();
    while (it != vertices.end()) {
      const int u = *it;
      const int old_height = height_[static_cast<size_t>(u)];
      Discharge(u);
      if (height_[static_cast<size_t>(u)] > old_height) {
        // Lift-to-front: a relabeled vertex moves to the head of the list
        // and the scan restarts from it.
        vertices.erase(it);
        vertices.push_front(u);
        it = vertices.begin();
      }
      ++it;
    }
    return excess_[static_cast<size_t>(sink_)];
  }

 private:
  void InitializePreflow() {
    height_[static_cast<size_t>(source_)] = n_;
    for (FlowArc& arc : network_.ArcsFrom(source_)) {
      const double amount = arc.Residual();
      if (amount <= 0.0) {
        continue;
      }
      arc.flow += amount;
      network_.ArcsFrom(arc.to)[arc.reverse_index].flow -= amount;
      excess_[static_cast<size_t>(arc.to)] += amount;
      excess_[static_cast<size_t>(source_)] -= amount;
    }
  }

  void Push(int u, FlowArc& arc) {
    const double amount = std::min(excess_[static_cast<size_t>(u)], arc.Residual());
    arc.flow += amount;
    network_.ArcsFrom(arc.to)[arc.reverse_index].flow -= amount;
    excess_[static_cast<size_t>(u)] -= amount;
    excess_[static_cast<size_t>(arc.to)] += amount;
  }

  void Lift(int u) {
    int min_height = 2 * n_;
    for (const FlowArc& arc : network_.ArcsFrom(u)) {
      if (arc.Residual() > kEps) {
        min_height = std::min(min_height, height_[static_cast<size_t>(arc.to)]);
      }
    }
    height_[static_cast<size_t>(u)] = min_height + 1;
  }

  void Discharge(int u) {
    while (excess_[static_cast<size_t>(u)] > kEps) {
      auto& arcs = network_.ArcsFrom(u);
      if (current_arc_[static_cast<size_t>(u)] >= arcs.size()) {
        Lift(u);
        current_arc_[static_cast<size_t>(u)] = 0;
        continue;
      }
      FlowArc& arc = arcs[current_arc_[static_cast<size_t>(u)]];
      if (arc.Residual() > kEps &&
          height_[static_cast<size_t>(u)] == height_[static_cast<size_t>(arc.to)] + 1) {
        Push(u, arc);
      } else {
        ++current_arc_[static_cast<size_t>(u)];
      }
    }
  }

  static constexpr double kEps = 1e-12;

  FlowNetwork& network_;
  const int source_;
  const int sink_;
  const int n_;
  std::vector<int> height_;
  std::vector<double> excess_;
  std::vector<size_t> current_arc_;
};

}  // namespace

CutResult MinCutRelabelToFront(const FlowNetwork& original, int source, int sink) {
  assert(source != sink);
  assert(source >= 0 && source < original.node_count());
  assert(sink >= 0 && sink < original.node_count());

  // All mutation — preflow, relabeling, and the capacity clamp below —
  // happens on this per-call copy, which is what makes the entry point
  // safe to call from many worker threads at once.
  FlowNetwork network = original;

  // Push-relabel accumulates per-node excess, and the initial preflow
  // saturates every source arc — so a constraint pin on the source gives
  // its node an excess of kInfiniteCapacity. Any subsequent push across a
  // small finite arc is then absorbed outright in double arithmetic
  // (1e30 - 1e-3 == 1e30), which manufactures excess from nothing and can
  // keep Discharge busy forever. Clamping effectively-infinite capacities
  // to just above the total finite capacity keeps all excess at one
  // floating-point scale and preserves every minimum cut: a cut either
  // avoids infinite arcs (value below the clamp, unchanged) or contains
  // one (value above any finite cut either way).
  double finite_total = 0.0;
  for (int node = 0; node < network.node_count(); ++node) {
    for (const FlowArc& arc : network.ArcsFrom(node)) {
      if (arc.capacity < kInfiniteCapacity / 2) {
        finite_total += arc.capacity;
      }
    }
  }
  const double clamp = finite_total + 1.0;
  struct ClampedArc {
    int node;
    size_t index;
    double original;
  };
  std::vector<ClampedArc> clamped;
  for (int node = 0; node < network.node_count(); ++node) {
    auto& arcs = network.ArcsFrom(node);
    for (size_t i = 0; i < arcs.size(); ++i) {
      if (arcs[i].capacity >= kInfiniteCapacity / 2) {
        clamped.push_back({node, i, arcs[i].capacity});
        arcs[i].capacity = clamp;
      }
    }
  }

  RelabelToFront algorithm(network, source, sink);
  const double flow = algorithm.Run();
  // Extract while the clamp is in place: a saturated clamped arc must
  // block residual reachability, or an infinite cut would flood through.
  CutResult cut = ExtractCut(network, source, flow);

  bool infinite_arc_cut = false;
  for (const ClampedArc& entry : clamped) {
    FlowArc& arc = network.ArcsFrom(entry.node)[entry.index];
    arc.capacity = entry.original;
    if (cut.in_source_side[static_cast<size_t>(entry.node)] &&
        !cut.in_source_side[static_cast<size_t>(arc.to)]) {
      infinite_arc_cut = true;
    }
  }
  if (infinite_arc_cut) {
    // Constraints are infeasible (every cut severs a pin). Report the real
    // crossing capacity so callers' infinite-cut sentinels still fire.
    double real_value = 0.0;
    for (int node = 0; node < network.node_count(); ++node) {
      if (!cut.in_source_side[static_cast<size_t>(node)]) {
        continue;
      }
      for (const FlowArc& arc : network.ArcsFrom(node)) {
        if (!cut.in_source_side[static_cast<size_t>(arc.to)]) {
          real_value += arc.capacity;
        }
      }
    }
    cut.cut_value = real_value;
  }
  return cut;
}

}  // namespace coign
