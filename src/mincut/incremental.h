// Warm-start incremental min-cut session.
//
// The online repartitioner and the fleet service cut long series of
// graphs that differ only by capacity drift. IncrementalMinCut owns a
// CompactFlowNetwork plus the last maximum flow computed on it; a batch
// of capacity deltas is absorbed by *repairing* that flow instead of
// resolving from zero:
//
//  * Capacity increase: nothing to repair — existing flow stays feasible,
//    the new residual headroom is picked up when the solver re-saturates
//    the source's out-arcs and resumes discharging.
//  * Capacity decrease: any arc now carrying flow above its capacity is
//    clipped to the new capacity. Clipping d units off arc (u, v) leaves
//    +d surplus at u (it sent d units that no longer leave) and a -d
//    deficit at v (it forwarded d units it no longer receives). Surplus
//    is ordinary preflow excess; deficits are cancelled by draining the
//    deficit node's own positive-flow out-arcs until its balance is
//    restored — each drain may move the deficit one hop downstream, and
//    the walk terminates because a deficit node's outflow exceeds its
//    inflow by exactly the deficit, and the terminals absorb imbalance.
//
// After repair the flow is capacity-feasible with non-negative excess at
// every non-terminal node — precisely the PushRelabelSolver warm-start
// precondition — so the solver resumes discharging and only re-routes
// the displaced units. Exactness is preserved because the solver still
// runs to a full maximum flow, and every maximum flow yields the same
// unique minimal source side (the residual-reachable set), so warm and
// cold solves return identical partitions, not just equal values.
//
// Safety valve: if the retained flow has saturated (any |flow| at the
// sentinel — possible only on sentinel-capacity graphs) or the previous
// solve was infeasible, delta repair is unsound and the session silently
// falls back to a cold solve. Exactness over speed.

#ifndef COIGN_SRC_MINCUT_INCREMENTAL_H_
#define COIGN_SRC_MINCUT_INCREMENTAL_H_

#include <vector>

#include "src/mincut/compact_flow_network.h"
#include "src/mincut/push_relabel.h"

namespace coign {

class IncrementalMinCut {
 public:
  IncrementalMinCut() = default;

  // Installs a finalized network (flows are reset). Solver scratch is
  // kept, so re-seating a session on a new graph of similar size does not
  // reallocate.
  void Reset(CompactFlowNetwork network, int source, int sink);

  bool has_network() const { return has_network_; }
  const CompactFlowNetwork& network() const { return network_; }
  int source() const { return source_; }
  int sink() const { return sink_; }

  // Stages a capacity change for an edge id returned by the network's
  // AddArc/AddEdge. Takes effect at the next Solve().
  void SetEdgeCapacity(int edge_id, CapUnits capacity);

  // Computes the min cut for the current capacities: cold on the first
  // call (or after Reset / fallback), warm-repair + resume otherwise.
  CutResult Solve();

  // Counters for the most recent Solve() (solver work + warm-start
  // accounting) and accumulated across the session's lifetime.
  const MinCutSolveStats& last_stats() const { return last_stats_; }
  const MinCutSolveStats& total_stats() const { return total_stats_; }

 private:
  // Clips over-capacity flow and cancels the resulting deficits. Returns
  // false if the retained flow cannot be soundly repaired (saturated
  // values) — caller cold-solves instead.
  bool RepairFlow();

  CompactFlowNetwork network_;
  PushRelabelSolver solver_;
  MinCutSolveStats last_stats_;
  MinCutSolveStats total_stats_;
  std::vector<int> dirty_edges_;
  std::vector<CapUnits> balance_;     // Scratch: derived excess per node.
  std::vector<int> deficit_queue_;    // Scratch: deficit-cancel worklist.
  int source_ = 0;
  int sink_ = 1;
  bool has_network_ = false;
  bool has_flow_ = false;             // A prior solve's flow is retained.
  bool last_infeasible_ = false;
};

}  // namespace coign

#endif  // COIGN_SRC_MINCUT_INCREMENTAL_H_
