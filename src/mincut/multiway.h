// Multiway cut via the isolation heuristic — the paper's future-work
// direction ("the problem of partitioning applications across three or more
// machines is provably NP-hard [13]; numerous heuristic algorithms exist").
//
// Dahlhaus et al.'s classic 2(1-1/k)-approximation: compute an isolating
// minimum cut for each terminal (terminal vs all other terminals merged
// into a super-sink), discard the most expensive one, and take the union of
// the rest. Nodes claimed by no isolating cut stay with the discarded
// terminal.

#ifndef COIGN_SRC_MINCUT_MULTIWAY_H_
#define COIGN_SRC_MINCUT_MULTIWAY_H_

#include <functional>
#include <vector>

#include "src/mincut/flow_network.h"

namespace coign {

struct MultiwayCutResult {
  // Exact sum (saturating at kInfiniteCapacity) of crossing edge weights.
  CapUnits total_weight = 0;
  // assignment[node] = index into `terminals` of the side the node landed on.
  std::vector<int> assignment;
};

// Undirected weighted edges (a, b, weight) in CapUnits.
using EdgeList = std::vector<std::tuple<int, int, CapUnits>>;

// Partitions `node_count` nodes among the terminals. `edges` are undirected
// (a, b, weight). Each terminal must be a distinct valid node.
MultiwayCutResult MultiwayCutIsolation(int node_count, const EdgeList& edges,
                                       const std::vector<int>& terminals);

}  // namespace coign

#endif  // COIGN_SRC_MINCUT_MULTIWAY_H_
