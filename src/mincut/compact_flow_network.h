// Flat CSR representation of a flow network, for the hot solve path.
//
// FlowNetwork stores adjacency as vector<vector<FlowArc>> — one heap
// allocation per node, pointer-chasing per arc scan, and a full deep copy
// per cut (MinCutRelabelToFront copies the whole network every call). The
// repartitioner and the fleet service cut long series of near-identical
// graphs, so the representation cost dominates on small windows.
//
// CompactFlowNetwork packs every arc into one contiguous array in CSR
// order: arcs out of node v occupy [first_out(v), first_out(v+1)), and
// each arc stores the *global* index of its paired reverse arc. Building
// is a stable counting sort over the staged edge list, so the per-node arc
// order is exactly the order FlowNetwork::AddArc/AddEdge would have
// produced — cut extraction (which reports cut_edges in per-node arc
// order) is byte-identical between the two representations.
//
// Every staged edge keeps an id (its insertion index). The warm-start
// session uses ids to apply capacity deltas in O(1) without re-building.

#ifndef COIGN_SRC_MINCUT_COMPACT_FLOW_NETWORK_H_
#define COIGN_SRC_MINCUT_COMPACT_FLOW_NETWORK_H_

#include <cstdint>
#include <vector>

#include "src/mincut/flow_network.h"

namespace coign {

struct CompactArc {
  int32_t to = 0;
  int32_t reverse = 0;  // Global index of the paired reverse arc.
  CapUnits capacity = 0;
  CapUnits flow = 0;

  CapUnits Residual() const { return SatSub(capacity, flow); }
};

class CompactFlowNetwork {
 public:
  CompactFlowNetwork() = default;
  explicit CompactFlowNetwork(int node_count);

  // Staging interface, valid before Finalize(). Returns the edge id.
  // Semantics match FlowNetwork: AddArc gives the reverse direction a
  // zero-capacity residual stub, AddEdge gives symmetric capacity.
  int AddArc(int from, int to, CapUnits capacity);
  int AddEdge(int a, int b, CapUnits capacity);
  // General form: explicit reverse-direction capacity (used by
  // FromFlowNetwork to reproduce post-build capacity edits verbatim).
  int AddPair(int from, int to, CapUnits capacity, CapUnits reverse_capacity, bool directed);

  // Builds the CSR arrays. Idempotent; staging calls are invalid after.
  void Finalize();

  // A finalized network with the same nodes, edges, arc order, and
  // capacities as `network` (flows start at zero).
  static CompactFlowNetwork FromFlowNetwork(const FlowNetwork& network);

  bool finalized() const { return finalized_; }
  int node_count() const { return node_count_; }
  int arc_count() const { return static_cast<int>(arcs_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }

  // CSR accessors (finalized only). Arcs out of `node` are
  // arcs()[first_out(node) .. first_out(node + 1)).
  int first_out(int node) const { return first_out_[static_cast<size_t>(node)]; }
  CompactArc& arc(int index) { return arcs_[static_cast<size_t>(index)]; }
  const CompactArc& arc(int index) const { return arcs_[static_cast<size_t>(index)]; }

  // Capacity update by edge id: both directions for AddEdge edges, the
  // forward direction for AddArc edges (the residual stub stays zero).
  // Flows are left untouched — repairing them is the session's job.
  void SetEdgeCapacity(int edge_id, CapUnits capacity);
  CapUnits EdgeCapacity(int edge_id) const;
  // Global index of the forward arc for an edge id.
  int EdgeForwardArc(int edge_id) const { return edge_forward_[static_cast<size_t>(edge_id)]; }

  void ResetFlow();

  // FNV-1a over node count and edge endpoints/directedness — capacities
  // excluded, so two graphs with equal signatures differ only by
  // capacities and a session can warm-start across them via deltas.
  uint64_t TopologySignature() const;

  // Same partition semantics as ExtractCut(FlowNetwork...): source side =
  // residual-reachable set, cut_edges in ascending-node then arc order,
  // sentinel promotion on a crossing sentinel arc.
  CutResult ExtractCut(int source, CapUnits flow_value) const;

 private:
  struct StagedEdge {
    int32_t from = 0;
    int32_t to = 0;
    CapUnits capacity = 0;
    CapUnits reverse_capacity = 0;
    bool directed = false;
  };

  int node_count_ = 0;
  bool finalized_ = false;
  std::vector<StagedEdge> edges_;
  std::vector<int> first_out_;      // node_count_ + 1 entries.
  std::vector<CompactArc> arcs_;    // 2 * edges_.size() entries.
  std::vector<int> edge_forward_;   // edge id -> global forward arc index.
};

}  // namespace coign

#endif  // COIGN_SRC_MINCUT_COMPACT_FLOW_NETWORK_H_
