#include "src/mincut/flow_network.h"

#include <cassert>

namespace coign {

FlowNetwork::FlowNetwork(int node_count) : adjacency_(static_cast<size_t>(node_count)) {
  assert(node_count >= 0);
}

void FlowNetwork::AddArc(int from, int to, CapUnits capacity) {
  assert(from >= 0 && from < node_count());
  assert(to >= 0 && to < node_count());
  assert(capacity >= 0);
  FlowArc forward;
  forward.to = to;
  forward.capacity = capacity;
  forward.reverse_index = adjacency_[to].size();
  FlowArc backward;
  backward.to = from;
  backward.capacity = 0;
  backward.reverse_index = adjacency_[from].size();
  adjacency_[from].push_back(forward);
  adjacency_[to].push_back(backward);
}

void FlowNetwork::AddEdge(int a, int b, CapUnits capacity) {
  assert(a >= 0 && a < node_count());
  assert(b >= 0 && b < node_count());
  assert(capacity >= 0);
  FlowArc forward;
  forward.to = b;
  forward.capacity = capacity;
  forward.reverse_index = adjacency_[b].size();
  FlowArc backward;
  backward.to = a;
  backward.capacity = capacity;  // Symmetric capacity, not a residual stub.
  backward.reverse_index = adjacency_[a].size();
  adjacency_[a].push_back(forward);
  adjacency_[b].push_back(backward);
}

void FlowNetwork::ResetFlow() {
  for (auto& arcs : adjacency_) {
    for (FlowArc& arc : arcs) {
      arc.flow = 0;
    }
  }
}

std::vector<bool> FlowNetwork::ResidualReachable(int source) const {
  std::vector<bool> visited(adjacency_.size(), false);
  std::vector<int> queue = {source};
  visited[static_cast<size_t>(source)] = true;
  while (!queue.empty()) {
    const int node = queue.back();
    queue.pop_back();
    for (const FlowArc& arc : adjacency_[static_cast<size_t>(node)]) {
      if (arc.Residual() > 0 && !visited[static_cast<size_t>(arc.to)]) {
        visited[static_cast<size_t>(arc.to)] = true;
        queue.push_back(arc.to);
      }
    }
  }
  return visited;
}

int CutResult::SourceSideCount() const {
  int count = 0;
  for (bool b : in_source_side) {
    count += b ? 1 : 0;
  }
  return count;
}

CutResult ExtractCut(const FlowNetwork& network, int source, CapUnits flow_value) {
  CutResult result;
  result.cut_value = flow_value;
  result.in_source_side = network.ResidualReachable(source);
  bool sentinel_crossing = false;
  for (int node = 0; node < network.node_count(); ++node) {
    if (!result.in_source_side[static_cast<size_t>(node)]) {
      continue;
    }
    for (const FlowArc& arc : network.ArcsFrom(node)) {
      if (arc.capacity > 0 && !result.in_source_side[static_cast<size_t>(arc.to)]) {
        result.cut_edges.emplace_back(node, arc.to);
        if (arc.capacity == kInfiniteCapacity) {
          sentinel_crossing = true;
        }
      }
    }
  }
  // A sentinel arc crossing the partition means the constraint set is
  // infeasible: every s-t cut severs a pin. Promote to the sentinel
  // exactly, so both algorithms report infeasibility identically. (A
  // sentinel arc can only be saturated — and thus end up crossing — when
  // the max flow itself reached the sentinel, so this is a no-op except
  // on infeasible inputs or genuinely saturated flows.)
  if (sentinel_crossing) {
    result.cut_value = kInfiniteCapacity;
  }
  return result;
}

}  // namespace coign
