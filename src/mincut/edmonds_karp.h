// Edmonds-Karp maximum flow — the verification baseline for the
// relabel-to-front implementation. Both must find identical cut values on
// every graph (the cut itself may differ when several minimum cuts exist).

#ifndef COIGN_SRC_MINCUT_EDMONDS_KARP_H_
#define COIGN_SRC_MINCUT_EDMONDS_KARP_H_

#include "src/mincut/flow_network.h"

namespace coign {

// The input network is not modified (flow accumulates on a per-call
// working copy), so concurrent cuts are safe.
CutResult MinCutEdmondsKarp(const FlowNetwork& network, int source, int sink);

}  // namespace coign

#endif  // COIGN_SRC_MINCUT_EDMONDS_KARP_H_
