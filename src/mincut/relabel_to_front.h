// The lift-to-front (relabel-to-front) minimum-cut algorithm.
//
// "Coign employs the lift-to-front minimum-cut graph-cutting algorithm [9]
// to choose a distribution with minimal communication time." Reference [9]
// is Cormen, Leiserson & Rivest, whose push-relabel variant discharges
// vertices from a topologically maintained list, moving relabeled vertices
// to the front. O(V^3), exact.

#ifndef COIGN_SRC_MINCUT_RELABEL_TO_FRONT_H_
#define COIGN_SRC_MINCUT_RELABEL_TO_FRONT_H_

#include "src/mincut/flow_network.h"

namespace coign {

// Computes a maximum s-t flow with relabel-to-front push-relabel and
// returns the induced minimum cut. Arithmetic is exact (CapUnits), so the
// cut value always equals MinCutEdmondsKarp's on the same input. The input
// network is not modified: all flow happens on a per-call working copy, so
// concurrent cuts — even over the same FlowNetwork — are safe.
// source != sink.
CutResult MinCutRelabelToFront(const FlowNetwork& network, int source, int sink);

}  // namespace coign

#endif  // COIGN_SRC_MINCUT_RELABEL_TO_FRONT_H_
