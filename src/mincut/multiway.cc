#include "src/mincut/multiway.h"

#include <algorithm>
#include <cassert>

#include "src/mincut/relabel_to_front.h"

namespace coign {

MultiwayCutResult MultiwayCutIsolation(int node_count, const EdgeList& edges,
                                       const std::vector<int>& terminals) {
  const size_t k = terminals.size();
  assert(k >= 2);

  // Isolating cut for each terminal: terminal as source, a super-sink wired
  // to every other terminal with infinite capacity.
  struct Isolating {
    CapUnits value = 0;
    std::vector<bool> side;  // True = with the terminal.
  };
  std::vector<Isolating> cuts(k);

  for (size_t t = 0; t < k; ++t) {
    FlowNetwork network(node_count + 1);
    const int super_sink = node_count;
    for (const auto& [a, b, weight] : edges) {
      network.AddEdge(a, b, weight);
    }
    for (size_t other = 0; other < k; ++other) {
      if (other != t) {
        network.AddArc(terminals[other], super_sink, kInfiniteCapacity);
      }
    }
    const CutResult cut = MinCutRelabelToFront(network, terminals[t], super_sink);
    cuts[t].value = cut.cut_value;
    cuts[t].side = cut.in_source_side;
    cuts[t].side.resize(static_cast<size_t>(node_count));  // Drop the super-sink.
  }

  // Discard the heaviest isolating cut; its terminal keeps the leftovers.
  size_t discarded = 0;
  for (size_t t = 1; t < k; ++t) {
    if (cuts[t].value > cuts[discarded].value) {
      discarded = t;
    }
  }

  MultiwayCutResult result;
  result.assignment.assign(static_cast<size_t>(node_count), static_cast<int>(discarded));
  for (size_t t = 0; t < k; ++t) {
    if (t == discarded) {
      continue;
    }
    for (int node = 0; node < node_count; ++node) {
      if (cuts[t].side[static_cast<size_t>(node)]) {
        result.assignment[static_cast<size_t>(node)] = static_cast<int>(t);
      }
    }
  }
  // Terminals always belong to themselves (isolating cuts guarantee this,
  // but be explicit for the discarded terminal).
  for (size_t t = 0; t < k; ++t) {
    result.assignment[static_cast<size_t>(terminals[t])] = static_cast<int>(t);
  }

  // Total weight of edges whose endpoints ended up apart. Saturating: a
  // crossing sentinel edge pins the total at exactly kInfiniteCapacity.
  for (const auto& [a, b, weight] : edges) {
    if (result.assignment[static_cast<size_t>(a)] != result.assignment[static_cast<size_t>(b)]) {
      result.total_weight = SatAdd(result.total_weight, weight);
    }
  }
  return result;
}

}  // namespace coign
