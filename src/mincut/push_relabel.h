// Highest-label push-relabel max-flow on CompactFlowNetwork.
//
// This is the production solver behind CutAlgorithm::kPushRelabel; the
// CLRS relabel-to-front and Edmonds-Karp implementations stay as
// differential oracles (see tests/mincut_equivalence_test.cc). Two
// heuristics make it fast on the repeated-cut workloads:
//
//  * Gap relabeling: when no node remains at height h < n, every node at
//    height h < height < n is unreachable from the sink in the residual
//    graph and is lifted straight to n + 1 (drain-back territory),
//    skipping its doomed one-step relabels.
//  * Periodic global relabeling: an exact backward BFS recomputes every
//    height as the true residual distance to the sink (or n + distance to
//    the source for sink-disconnected nodes), repairing the label decay
//    that plain push-relabel suffers on long runs.
//
// The solver runs the combined two-phase form: it keeps discharging until
// no non-terminal node holds excess, so the final flow is a genuine
// maximum *flow* (conservation everywhere), not just a saturated preflow.
// That is what makes partitions byte-identical across solvers: for a
// maximum flow the set of source-residual-reachable nodes is the same
// unique minimal min cut regardless of which algorithm produced the flow.
//
// All arithmetic is the same exact CapUnits/saturating-sentinel scheme as
// relabel_to_front.cc (see the excess-saturation note there — the height
// argument for termination does not depend on excess conservation).
//
// The solver accepts a network whose arcs already carry a feasible flow
// with non-negative derived excess at every non-terminal node, and
// resumes from it — that is the warm-start entry used by
// IncrementalMinCut. A zero flow state degenerates to the classic cold
// solve. Scratch buffers persist across Solve() calls, so a long-lived
// solver performs no per-cut allocations once warmed up.

#ifndef COIGN_SRC_MINCUT_PUSH_RELABEL_H_
#define COIGN_SRC_MINCUT_PUSH_RELABEL_H_

#include <cstdint>
#include <vector>

#include "src/mincut/compact_flow_network.h"
#include "src/mincut/flow_network.h"

namespace coign {

// Work counters for one or more solves. Drives the mincut.* metrics.
struct MinCutSolveStats {
  uint64_t pushes = 0;
  uint64_t relabels = 0;
  uint64_t global_relabels = 0;
  uint64_t gap_relabels = 0;        // Nodes lifted by the gap heuristic.
  uint64_t warm_start_hits = 0;     // Solves resumed from a prior flow.
  CapUnits flow_reused_units = 0;   // Sink inflow already present at warm start.

  void Accumulate(const MinCutSolveStats& other);
};

class PushRelabelSolver {
 public:
  PushRelabelSolver() = default;

  // Augments the network's current flow to a maximum flow and returns its
  // value (the sink's derived excess). Precondition: the current flow is
  // capacity-feasible and antisymmetric, and every non-terminal node's
  // derived excess (inflow minus outflow) is >= 0. Zero flow trivially
  // qualifies.
  CapUnits Solve(CompactFlowNetwork& net, int source, int sink);

  // Counters for the most recent Solve() call.
  const MinCutSolveStats& last_stats() const { return last_stats_; }

 private:
  void ComputeExcess(const CompactFlowNetwork& net);
  void GlobalRelabel(const CompactFlowNetwork& net, int source, int sink);
  void Activate(int node);
  int PopHighestActive();

  MinCutSolveStats last_stats_;

  // Scratch, sized on demand and reused across solves.
  std::vector<int> height_;
  std::vector<CapUnits> excess_;
  std::vector<int> current_arc_;
  std::vector<int> height_count_;   // Non-terminal nodes per height.
  std::vector<int> bucket_head_;    // Active-node buckets by height.
  std::vector<int> bucket_next_;
  std::vector<bool> in_bucket_;
  std::vector<int> bfs_queue_;
  int highest_active_ = 0;
  int n_ = 0;
};

// Cold-solve convenience entry with the same signature as
// MinCutRelabelToFront / MinCutEdmondsKarp, for the differential oracles
// and the parameterized algorithm tests. Converts to CSR per call.
CutResult MinCutPushRelabel(const FlowNetwork& network, int source, int sink);

}  // namespace coign

#endif  // COIGN_SRC_MINCUT_PUSH_RELABEL_H_
