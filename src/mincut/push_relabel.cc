#include "src/mincut/push_relabel.h"

#include <algorithm>
#include <cassert>

namespace coign {

void MinCutSolveStats::Accumulate(const MinCutSolveStats& other) {
  pushes += other.pushes;
  relabels += other.relabels;
  global_relabels += other.global_relabels;
  gap_relabels += other.gap_relabels;
  warm_start_hits += other.warm_start_hits;
  flow_reused_units = SatAdd(flow_reused_units, other.flow_reused_units);
}

namespace {

// Heights live in [0, 2n + 1] for a conserving preflow; a little headroom
// absorbs the saturation-anomaly cases (see the excess note in
// relabel_to_front.cc) without out-of-bounds bucket access.
int HeightLimit(int n) { return 2 * n + 4; }

}  // namespace

void PushRelabelSolver::ComputeExcess(const CompactFlowNetwork& net) {
  excess_.assign(static_cast<size_t>(n_), 0);
  for (int v = 0; v < n_; ++v) {
    const int end = net.first_out(v + 1);
    CapUnits excess = 0;
    for (int a = net.first_out(v); a < end; ++a) {
      // excess(v) = inflow - outflow = -sum of signed flow on out-arcs
      // (an inbound unit shows up as negative flow on v's reverse arc).
      excess = SatSub(excess, net.arc(a).flow);
    }
    excess_[static_cast<size_t>(v)] = excess;
  }
}

void PushRelabelSolver::Activate(int node) {
  if (in_bucket_[static_cast<size_t>(node)]) {
    return;
  }
  const int h = height_[static_cast<size_t>(node)];
  in_bucket_[static_cast<size_t>(node)] = true;
  bucket_next_[static_cast<size_t>(node)] = bucket_head_[static_cast<size_t>(h)];
  bucket_head_[static_cast<size_t>(h)] = node;
  highest_active_ = std::max(highest_active_, h);
}

int PushRelabelSolver::PopHighestActive() {
  while (highest_active_ >= 0) {
    const int node = bucket_head_[static_cast<size_t>(highest_active_)];
    if (node < 0) {
      --highest_active_;
      continue;
    }
    bucket_head_[static_cast<size_t>(highest_active_)] = bucket_next_[static_cast<size_t>(node)];
    in_bucket_[static_cast<size_t>(node)] = false;
    // A gap lift may have moved the node since it was bucketed; the entry
    // is lazily revalidated here instead of eagerly re-linked.
    if (height_[static_cast<size_t>(node)] != highest_active_) {
      if (excess_[static_cast<size_t>(node)] > 0) {
        Activate(node);
      }
      continue;
    }
    if (excess_[static_cast<size_t>(node)] <= 0) {
      continue;
    }
    return node;
  }
  return -1;
}

void PushRelabelSolver::GlobalRelabel(const CompactFlowNetwork& net, int source, int sink) {
  ++last_stats_.global_relabels;
  const int limit = HeightLimit(n_);
  height_.assign(static_cast<size_t>(n_), limit);
  bfs_queue_.clear();

  // Pass 1: exact residual distance to the sink. A node u is one step
  // closer than w when the arc u -> w has residual — scanning w's
  // out-arcs, that is the residual of the paired reverse arc.
  height_[static_cast<size_t>(sink)] = 0;
  bfs_queue_.push_back(sink);
  for (size_t head = 0; head < bfs_queue_.size(); ++head) {
    const int w = bfs_queue_[head];
    const int d = height_[static_cast<size_t>(w)];
    const int end = net.first_out(w + 1);
    for (int a = net.first_out(w); a < end; ++a) {
      const int u = net.arc(a).to;
      if (u == source || height_[static_cast<size_t>(u)] != limit) {
        continue;
      }
      if (net.arc(net.arc(a).reverse).Residual() > 0) {
        height_[static_cast<size_t>(u)] = d + 1;
        bfs_queue_.push_back(u);
      }
    }
  }

  // Pass 2: sink-disconnected nodes drain back to the source; their
  // height is n plus the exact residual distance to the source.
  height_[static_cast<size_t>(source)] = n_;
  bfs_queue_.clear();
  bfs_queue_.push_back(source);
  for (size_t head = 0; head < bfs_queue_.size(); ++head) {
    const int w = bfs_queue_[head];
    const int d = height_[static_cast<size_t>(w)];
    const int end = net.first_out(w + 1);
    for (int a = net.first_out(w); a < end; ++a) {
      const int u = net.arc(a).to;
      if (height_[static_cast<size_t>(u)] != limit) {
        continue;
      }
      if (net.arc(net.arc(a).reverse).Residual() > 0) {
        height_[static_cast<size_t>(u)] = d + 1;
        bfs_queue_.push_back(u);
      }
    }
  }
  // Nodes unreached by both passes keep `limit`: they are residually
  // disconnected from both terminals, carry no excess (an excess-holding
  // node always has a positive-residual out-arc chain), and stay idle.

  // Heights changed wholesale: rebuild the per-height census, the active
  // buckets, and the current-arc pointers.
  height_count_.assign(static_cast<size_t>(limit) + 1, 0);
  bucket_head_.assign(static_cast<size_t>(limit) + 1, -1);
  in_bucket_.assign(static_cast<size_t>(n_), false);
  bucket_next_.assign(static_cast<size_t>(n_), -1);
  highest_active_ = 0;
  for (int v = 0; v < n_; ++v) {
    current_arc_[static_cast<size_t>(v)] = net.first_out(v);
    if (v == source || v == sink) {
      continue;
    }
    ++height_count_[static_cast<size_t>(height_[static_cast<size_t>(v)])];
    if (excess_[static_cast<size_t>(v)] > 0) {
      Activate(v);
    }
  }
}

CapUnits PushRelabelSolver::Solve(CompactFlowNetwork& net, int source, int sink) {
  assert(net.finalized());
  assert(source != sink);
  assert(source >= 0 && source < net.node_count());
  assert(sink >= 0 && sink < net.node_count());
  n_ = net.node_count();
  last_stats_ = MinCutSolveStats{};
  current_arc_.assign(static_cast<size_t>(n_), 0);

  ComputeExcess(net);
#ifndef NDEBUG
  for (int v = 0; v < n_; ++v) {
    assert(v == source || v == sink || excess_[static_cast<size_t>(v)] >= 0);
  }
#endif
  // Saturate the source's out-arcs (for a warm start, only the residual
  // left by capacity increases — flow already on them is kept). This must
  // happen *before* the global relabel: saturation creates residual arcs
  // back to the source, and heights are only valid if the distance BFS
  // saw them.
  {
    const int end = net.first_out(source + 1);
    for (int a = net.first_out(source); a < end; ++a) {
      CompactArc& arc = net.arc(a);
      const CapUnits amount = arc.Residual();
      if (amount <= 0) {
        continue;
      }
      ++last_stats_.pushes;
      arc.flow = SatAdd(arc.flow, amount);
      CompactArc& reverse = net.arc(arc.reverse);
      reverse.flow = SatSub(reverse.flow, amount);
      excess_[static_cast<size_t>(arc.to)] = SatAdd(excess_[static_cast<size_t>(arc.to)], amount);
      excess_[static_cast<size_t>(source)] =
          SatSub(excess_[static_cast<size_t>(source)], amount);
    }
  }

  // Exact initial heights + active buckets (built from current excess).
  GlobalRelabel(net, source, sink);

  const int limit = HeightLimit(n_);
  // One global relabel per ~n relabels keeps labels near-exact without
  // dominating the push work.
  const uint64_t global_interval = static_cast<uint64_t>(std::max(n_, 32));
  uint64_t relabels_since_global = 0;

  int u;
  while ((u = PopHighestActive()) != -1) {
    // Discharge u: push along admissible current arcs, relabel when the
    // arc list is exhausted, until its excess is gone.
    bool rebucketed = false;
    while (excess_[static_cast<size_t>(u)] > 0) {
      const int arcs_end = net.first_out(u + 1);
      if (current_arc_[static_cast<size_t>(u)] >= arcs_end) {
        // Relabel: one above the lowest residual neighbor.
        int min_height = limit;
        for (int a = net.first_out(u); a < arcs_end; ++a) {
          if (net.arc(a).Residual() > 0) {
            min_height = std::min(min_height, height_[static_cast<size_t>(net.arc(a).to)]);
          }
        }
        const int old_height = height_[static_cast<size_t>(u)];
        if (min_height + 1 == old_height) {
          // An admissible arc exists after all — the current-arc pointer
          // went stale across a gap lift of a neighbor. Rescan instead
          // of a no-op relabel.
          current_arc_[static_cast<size_t>(u)] = net.first_out(u);
          continue;
        }
        assert(min_height + 1 > old_height);
        assert(min_height < limit);
        ++last_stats_.relabels;
        ++relabels_since_global;
        const int new_height = min_height + 1;
        --height_count_[static_cast<size_t>(old_height)];
        ++height_count_[static_cast<size_t>(new_height)];
        height_[static_cast<size_t>(u)] = new_height;
        current_arc_[static_cast<size_t>(u)] = net.first_out(u);
        if (height_count_[static_cast<size_t>(old_height)] == 0 && old_height < n_) {
          // Gap: no node left at old_height, so nothing between
          // old_height and n can reach the sink in the residual graph.
          // Lift the whole band to n + 1 (drain-back territory).
          for (int v = 0; v < n_; ++v) {
            if (v == source || v == sink) {
              continue;
            }
            const int h = height_[static_cast<size_t>(v)];
            if (h > old_height && h < n_) {
              --height_count_[static_cast<size_t>(h)];
              ++height_count_[static_cast<size_t>(n_) + 1];
              height_[static_cast<size_t>(v)] = n_ + 1;
              current_arc_[static_cast<size_t>(v)] = net.first_out(v);
              ++last_stats_.gap_relabels;
            }
          }
          if (height_[static_cast<size_t>(u)] != new_height) {
            // u itself was in the lifted band; re-enter the bucket loop
            // so highest-label selection stays honest.
            Activate(u);
            rebucketed = true;
            break;
          }
        }
        if (relabels_since_global >= global_interval) {
          relabels_since_global = 0;
          GlobalRelabel(net, source, sink);
          // Buckets were rebuilt (u included, if still in excess).
          rebucketed = true;
          break;
        }
        continue;
      }
      CompactArc& arc = net.arc(current_arc_[static_cast<size_t>(u)]);
      if (arc.Residual() > 0 &&
          height_[static_cast<size_t>(u)] == height_[static_cast<size_t>(arc.to)] + 1) {
        const CapUnits amount = std::min(excess_[static_cast<size_t>(u)], arc.Residual());
        ++last_stats_.pushes;
        arc.flow = SatAdd(arc.flow, amount);
        CompactArc& reverse = net.arc(arc.reverse);
        reverse.flow = SatSub(reverse.flow, amount);
        excess_[static_cast<size_t>(u)] -= amount;  // Exact: amount <= excess.
        excess_[static_cast<size_t>(arc.to)] =
            SatAdd(excess_[static_cast<size_t>(arc.to)], amount);
        if (arc.to != source && arc.to != sink && excess_[static_cast<size_t>(arc.to)] > 0) {
          Activate(arc.to);
        }
      } else {
        ++current_arc_[static_cast<size_t>(u)];
      }
    }
    if (!rebucketed && excess_[static_cast<size_t>(u)] > 0) {
      Activate(u);
    }
  }
  // No non-terminal node holds excess: the preflow is a maximum flow, and
  // the sink's derived excess is its value.
  return excess_[static_cast<size_t>(sink)];
}

CutResult MinCutPushRelabel(const FlowNetwork& network, int source, int sink) {
  CompactFlowNetwork compact = CompactFlowNetwork::FromFlowNetwork(network);
  compact.ResetFlow();
  PushRelabelSolver solver;
  const CapUnits flow = solver.Solve(compact, source, sink);
  return compact.ExtractCut(source, flow);
}

}  // namespace coign
