// CRC32C-framed message envelope for transport payloads.
//
// Wire format, little-endian:
//   magic "CoEv" (4 bytes) | payload length (4 bytes) | crc32c(payload)
//   (4 bytes) | payload bytes
//
// The simulation does not carry real payload contents — only sizes — so
// the hardened transport models the integrity check through
// EnvelopeCatchesBitFlip: it frames a deterministic stand-in payload,
// flips one bit at a fault-chosen position, and reports whether
// OpenEnvelope rejects the damage. CRC32C catches every single-bit flip,
// so the answer is always "yes" — but the decision to reject a corrupted
// attempt runs through the same open path real framing would, keeping the
// model honest instead of hard-coding the verdict.

#ifndef COIGN_SRC_NET_ENVELOPE_H_
#define COIGN_SRC_NET_ENVELOPE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/support/status.h"

namespace coign {

// Bytes the envelope adds in front of the payload (magic + length + crc).
inline constexpr uint64_t kEnvelopeHeaderBytes = 12;

// Wraps `payload` in a framed envelope.
std::string FrameEnvelope(std::string_view payload);

// Verifies and strips the envelope. Errors on short input, bad magic, a
// length that disagrees with the buffer, or a checksum mismatch.
Result<std::string> OpenEnvelope(std::string_view framed);

// Models one corrupted delivery of a `payload_bytes`-sized message: frames
// a deterministic pattern payload (capped at 64 bytes — CRC behavior is
// length-independent for single flips), flips the bit selected by `unit`
// in [0, 1) anywhere in the framed buffer (header included), and returns
// true when OpenEnvelope rejects the damaged frame.
bool EnvelopeCatchesBitFlip(uint64_t payload_bytes, double unit);

}  // namespace coign

#endif  // COIGN_SRC_NET_ENVELOPE_H_
