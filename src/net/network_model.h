// Parameterized network models.
//
// The paper's experiments run over an isolated 10BaseT Ethernet between two
// 200 MHz Pentiums; §1 motivates re-partitioning as the network changes
// "from ISDN to 100BaseT to ATM to SAN". These presets span that range so
// experiments can show distributions shifting with the environment.

#ifndef COIGN_SRC_NET_NETWORK_MODEL_H_
#define COIGN_SRC_NET_NETWORK_MODEL_H_

#include <cstdint>
#include <string>

namespace coign {

struct NetworkModel {
  std::string name;
  // One-way fixed cost per message, seconds. Covers protocol processing,
  // interrupt handling, and wire latency — dominated by software in the
  // DCOM era.
  double per_message_seconds = 0.0;
  // Sustained payload bandwidth, bytes/second.
  double bytes_per_second = 1.0;
  // Multiplicative jitter applied when messages are *sampled* (the network
  // profiler sees this noise; the deterministic expectation does not).
  double jitter_fraction = 0.0;

  // Expected one-way time for a message of `bytes` payload.
  double ExpectedMessageSeconds(uint64_t bytes) const {
    return per_message_seconds + static_cast<double>(bytes) / bytes_per_second;
  }

  // A copy of this model with latency multiplied by `latency_scale` and
  // bandwidth multiplied by `bandwidth_scale` — how fleet simulation derives
  // one client's measured link from an archetype preset.
  NetworkModel Scaled(double latency_scale, double bandwidth_scale) const;

  // --- Presets -------------------------------------------------------------
  // The paper's testbed: isolated 10 Mb/s Ethernet, mid-90s protocol stacks.
  static NetworkModel TenBaseT();
  static NetworkModel HundredBaseT();
  static NetworkModel Isdn();
  static NetworkModel Atm155();
  // A near-zero-latency, very-high-bandwidth system-area network.
  static NetworkModel San();
};

}  // namespace coign

#endif  // COIGN_SRC_NET_NETWORK_MODEL_H_
