// Simulated transport between machines.
//
// Carries DCOM-style request/reply round trips over a NetworkModel. Two
// faces: a deterministic expectation (used when predicting and when
// accounting simulated communication time) and a sampled path with jitter
// (what the network profiler measures, and what "measured" experiment runs
// experience).

#ifndef COIGN_SRC_NET_TRANSPORT_H_
#define COIGN_SRC_NET_TRANSPORT_H_

#include <cstdint>

#include "src/net/network_model.h"
#include "src/support/rng.h"

namespace coign {

class Transport {
 public:
  explicit Transport(NetworkModel model) : model_(model) {}

  const NetworkModel& model() const { return model_; }

  // Expected (noise-free) time of one synchronous round trip.
  double ExpectedRoundTripSeconds(uint64_t request_bytes, uint64_t reply_bytes) const {
    return model_.ExpectedMessageSeconds(request_bytes) +
           model_.ExpectedMessageSeconds(reply_bytes);
  }

  // One sampled round trip with multiplicative jitter; always >= 0.
  double SampleRoundTripSeconds(uint64_t request_bytes, uint64_t reply_bytes, Rng& rng) const;

  // Accumulated clock helpers, for simulations that track elapsed wire time.
  void Charge(double seconds) { elapsed_seconds_ += seconds; }
  double elapsed_seconds() const { return elapsed_seconds_; }
  void ResetClock() { elapsed_seconds_ = 0.0; }

 private:
  NetworkModel model_;
  double elapsed_seconds_ = 0.0;
};

}  // namespace coign

#endif  // COIGN_SRC_NET_TRANSPORT_H_
