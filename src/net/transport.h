// Simulated transport between machines.
//
// Carries DCOM-style request/reply round trips over a NetworkModel. Two
// faces: a deterministic expectation (used when predicting and when
// accounting simulated communication time) and a sampled path with jitter
// (what the network profiler measures, and what "measured" experiment runs
// experience).
//
// The transport can additionally be hardened against an attached fault
// model (src/fault implements one): ReliableRoundTrip() retries failed
// delivery attempts under a RetryPolicy — per-attempt timeout, capped
// exponential backoff with jitter, and a bounded retry budget — charging
// every second of timeout and backoff to modeled time. Without a fault
// model the hardened path degenerates to a single clean attempt.

#ifndef COIGN_SRC_NET_TRANSPORT_H_
#define COIGN_SRC_NET_TRANSPORT_H_

#include <cstdint>

#include "src/com/types.h"
#include "src/net/network_model.h"
#include "src/obs/obs.h"
#include "src/support/rng.h"

namespace coign {

// How the hardened transport retries undelivered round trips.
struct RetryPolicy {
  // Modeled seconds lost waiting for a reply that never comes.
  double timeout_seconds = 0.25;
  // Total delivery attempts per call (1 = no retries). The retry budget:
  // attempts never exceed this, no matter what the network does.
  int max_attempts = 4;
  // Exponential backoff between attempts: wait backoff_initial_seconds
  // after the first failure, multiplied per failure, capped at
  // backoff_max_seconds, with +/- backoff_jitter fractional jitter.
  double backoff_initial_seconds = 0.02;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 0.5;
  double backoff_jitter = 0.2;
};

// What an attached fault model does to one delivery attempt.
struct AttemptPlan {
  bool delivered = true;
  // Only meaningful when !delivered: the request crossed the wire and the
  // receiver executed it, but the reply was lost. The sender still times
  // out and retries; the retry is a duplicate the receiver's idempotency
  // token must suppress.
  bool request_reached = false;
  // The wire carried a duplicate of the request (receiver discards it,
  // but the bytes and the message time are real).
  bool duplicated = false;
  // Delivery happened out of order; the synchronous caller observes it as
  // one extra message latency before the reply is recognized.
  bool reordered = false;
  // >= 1 during latency/bandwidth fault episodes; multiply the per-message
  // and per-byte time terms respectively.
  double latency_scale = 1.0;
  double bandwidth_scale = 1.0;
  // One-off extra seconds (e.g. a machine's post-crash restart penalty).
  double extra_seconds = 0.0;
  // The wire delivered the message but a fault flipped payload bits in it.
  // With checksummed framing the damaged leg is detected and rejected
  // (receiver side for the request, sender side for the reply) and the
  // attempt retries under the same budget; without, the damage is silently
  // consumed as truth. Only meaningful when delivered.
  bool corrupt_request = false;
  bool corrupt_reply = false;

  bool clean() const {
    return delivered && !duplicated && !reordered && !corrupt_request &&
           !corrupt_reply && latency_scale == 1.0 && bandwidth_scale == 1.0 &&
           extra_seconds == 0.0;
  }
};

// The hook a fault-injection layer implements. The transport consults it
// once per delivery attempt and keeps it abreast of modeled time (faults
// are scheduled in simulated seconds). Deterministic: a fault model seeded
// identically must answer identically given the same call sequence.
class TransportFaultModel {
 public:
  virtual ~TransportFaultModel() = default;
  // Decides the fate of one delivery attempt between two machines.
  // `expected_seconds` is the attempt's expected (unscaled) round-trip
  // time, so models can void deliveries that a crash episode starting
  // mid-flight would have interrupted.
  virtual AttemptPlan OnAttempt(MachineId src, MachineId dst, uint64_t request_bytes,
                                uint64_t reply_bytes, double expected_seconds) = 0;
  // Advances the fault clock by consumed modeled seconds (communication,
  // timeouts, backoff, and compute all count).
  virtual void AdvanceClock(double seconds) = 0;
  // Uniform [0, 1) source for backoff jitter, drawn from the model's own
  // seeded stream so hardened runs replay bit-for-bit.
  virtual double JitterUnit() = 0;
};

// Outcome of one hardened round trip. `seconds` decomposes into a
// latency share (per-message overhead, timeouts, backoff, reorder and
// restart penalties) and a payload share (bytes over the wire) so a live
// network estimator can refit both cost terms independently.
struct DeliveryReceipt {
  double seconds = 0.0;  // Total modeled time, including timeouts/backoff.
  double latency_seconds = 0.0;
  double payload_seconds = 0.0;
  int attempts = 1;      // Delivery attempts consumed (<= retry budget).
  bool delivered = true; // False: retry budget exhausted, call timed out.
  bool faulted = false;  // Any attempt was touched by a fault.
  uint64_t duplicate_messages = 0;
  // Requests the receiver discarded by idempotency token: wire duplicates
  // plus retransmissions of a request whose reply was lost. At-most-once
  // delivery — the call's side effects executed exactly once.
  uint64_t duplicates_suppressed = 0;
  // Attempts whose payload arrived bit-flipped and was rejected by the
  // envelope checksum; each one retried under the same budget.
  uint64_t corrupt_rejected = 0;
  // Bit-flipped payloads silently consumed because checksums were off —
  // the caller got garbage and does not know (the naive baseline the
  // resilience bench quantifies).
  uint64_t corrupt_consumed = 0;
};

// Cumulative transport-level health counters, as exposed by the network
// accountant. The online layer diffs snapshots to detect fault episodes
// and to estimate live network cost (migration traffic is excluded so the
// adaptive loop cannot mistake its own state transfers for a slow wire).
struct TransportHealth {
  uint64_t calls = 0;            // Remote round trips charged.
  uint64_t attempts = 0;         // Delivery attempts (>= calls when hardened).
  uint64_t retries = 0;          // Attempts beyond the first.
  uint64_t undelivered = 0;      // Calls that exhausted the retry budget.
  uint64_t faulted_calls = 0;    // Calls touched by any fault.
  uint64_t wire_bytes = 0;       // Call payload bytes (no migration traffic).
  double wire_seconds = 0.0;     // Call communication time (no migration).
  // Decomposition of wire_seconds: message-count-proportional time
  // (latency, timeouts, backoff, penalties) vs byte-proportional time.
  double wire_latency_seconds = 0.0;
  double wire_payload_seconds = 0.0;
  uint64_t duplicates_suppressed = 0;  // Receiver-side dedup events.
  uint64_t corrupt_rejected = 0;       // Checksum-rejected attempts.
  uint64_t corrupt_consumed = 0;       // Poison consumed (checksums off).
};

class Transport {
 public:
  explicit Transport(NetworkModel model) : model_(model) {}

  const NetworkModel& model() const { return model_; }

  // Expected (noise-free) time of one synchronous round trip.
  double ExpectedRoundTripSeconds(uint64_t request_bytes, uint64_t reply_bytes) const {
    return model_.ExpectedMessageSeconds(request_bytes) +
           model_.ExpectedMessageSeconds(reply_bytes);
  }

  // One sampled round trip with multiplicative jitter; always >= 0.
  double SampleRoundTripSeconds(uint64_t request_bytes, uint64_t reply_bytes, Rng& rng) const;

  // Latency/payload decomposition of one round trip (jitter, when
  // sampled, is distributed proportionally across both terms).
  struct RoundTripSplit {
    double latency = 0.0;
    double payload = 0.0;
    double total() const { return latency + payload; }
  };

  // Round trip under fault-episode scaling of the latency and bandwidth
  // terms; samples jitter when `jitter_rng` is non-null.
  RoundTripSplit ScaledRoundTripSplit(uint64_t request_bytes, uint64_t reply_bytes,
                                      double latency_scale, double bandwidth_scale,
                                      Rng* jitter_rng) const;
  double ScaledRoundTripSeconds(uint64_t request_bytes, uint64_t reply_bytes,
                                double latency_scale, double bandwidth_scale,
                                Rng* jitter_rng) const {
    return ScaledRoundTripSplit(request_bytes, reply_bytes, latency_scale,
                                bandwidth_scale, jitter_rng)
        .total();
  }

  // --- Hardened path --------------------------------------------------------
  // Fault model is not owned and must outlive the transport (and every
  // copy of it — the accountant copies transports by value).
  void AttachFaults(TransportFaultModel* faults) { faults_ = faults; }
  bool has_faults() const { return faults_ != nullptr; }
  void SetRetryPolicy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Integrity envelope: on by default. With checksums a corrupted attempt
  // is rejected and retried (the rejection still pays for the bytes that
  // crossed the wire, but never for a timeout — detection is active);
  // without, the poisoned payload is consumed as a normal delivery. The
  // naive mode exists so the resilience bench can price what checksums buy.
  void SetChecksums(bool enabled) { checksums_ = enabled; }
  bool checksums_enabled() const { return checksums_; }

  // Advances the attached fault model's clock (no-op without one). Used by
  // callers charging non-transport time (compute) so fault episodes keyed
  // to simulated seconds stay aligned with the run.
  void AdvanceFaultClock(double seconds) {
    if (faults_ != nullptr && seconds > 0.0) {
      faults_->AdvanceClock(seconds);
    }
  }

  // One round trip under the attached fault model and the retry policy.
  // Every failed attempt costs a timeout plus capped exponential backoff
  // with jitter; the retry budget bounds attempts. Charges the transport's
  // own clock and advances the fault clock as time passes.
  DeliveryReceipt ReliableRoundTrip(MachineId src, MachineId dst, uint64_t request_bytes,
                                    uint64_t reply_bytes, Rng* jitter_rng);

  // Accumulated clock helpers, for simulations that track elapsed wire time.
  void Charge(double seconds) { elapsed_seconds_ += seconds; }
  double elapsed_seconds() const { return elapsed_seconds_; }
  void ResetClock() { elapsed_seconds_ = 0.0; }

  // --- Observability --------------------------------------------------------
  // Opt-in per transport instance; `obs` is not owned and must outlive the
  // transport and its copies. Instrument pointers are resolved here once so
  // the round-trip hot path never takes the registry lock. Attaching reads
  // receipts only — it never draws randomness or changes modeled time, so
  // traced and untraced runs follow identical schedules.
  void SetObservability(Observability* obs);
  Observability* observability() const { return obs_; }

 private:
  struct Instruments {
    MetricCounter* calls = nullptr;
    MetricCounter* attempts = nullptr;
    MetricCounter* retries = nullptr;
    MetricCounter* undelivered = nullptr;
    MetricCounter* faulted_calls = nullptr;
    MetricCounter* duplicates_suppressed = nullptr;
    MetricCounter* duplicate_wire_messages = nullptr;
    MetricCounter* corrupt_rejected = nullptr;
    MetricCounter* corrupt_consumed = nullptr;
    MetricHistogram* rtt_seconds = nullptr;
    MetricHistogram* retry_wait_seconds = nullptr;
  };

  void RecordReceipt(MachineId src, MachineId dst, uint64_t request_bytes,
                     uint64_t reply_bytes, double wait_seconds,
                     const DeliveryReceipt& receipt);

  NetworkModel model_;
  RetryPolicy retry_;
  bool checksums_ = true;
  TransportFaultModel* faults_ = nullptr;  // Not owned.
  Observability* obs_ = nullptr;           // Not owned.
  Instruments instruments_;
  double elapsed_seconds_ = 0.0;
  // Idempotency tokens: one per ReliableRoundTrip call. The receiver keys
  // its dedup table on them; in the simulation the per-call bookkeeping in
  // ReliableRoundTrip plays that table's role.
  uint64_t next_idempotency_token_ = 1;
};

}  // namespace coign

#endif  // COIGN_SRC_NET_TRANSPORT_H_
