#include "src/net/network_model.h"

namespace coign {

NetworkModel NetworkModel::Scaled(double latency_scale, double bandwidth_scale) const {
  NetworkModel scaled = *this;
  scaled.per_message_seconds *= latency_scale;
  scaled.bytes_per_second *= bandwidth_scale;
  return scaled;
}

NetworkModel NetworkModel::TenBaseT() {
  return NetworkModel{
      .name = "10BaseT",
      // A DCOM null call on period hardware cost on the order of a
      // millisecond round trip; half of that per direction.
      .per_message_seconds = 650e-6,
      .bytes_per_second = 1.05e6,  // ~8.4 Mb/s effective of 10 Mb/s.
      .jitter_fraction = 0.08,
  };
}

NetworkModel NetworkModel::HundredBaseT() {
  return NetworkModel{
      .name = "100BaseT",
      .per_message_seconds = 250e-6,
      .bytes_per_second = 10.5e6,
      .jitter_fraction = 0.08,
  };
}

NetworkModel NetworkModel::Isdn() {
  return NetworkModel{
      .name = "ISDN",
      .per_message_seconds = 15e-3,
      .bytes_per_second = 14e3,  // 128 kb/s line, protocol overhead removed.
      .jitter_fraction = 0.05,
  };
}

NetworkModel NetworkModel::Atm155() {
  return NetworkModel{
      .name = "ATM-155",
      .per_message_seconds = 180e-6,
      .bytes_per_second = 16e6,
      .jitter_fraction = 0.06,
  };
}

NetworkModel NetworkModel::San() {
  return NetworkModel{
      .name = "SAN",
      .per_message_seconds = 20e-6,
      .bytes_per_second = 80e6,
      .jitter_fraction = 0.03,
  };
}

}  // namespace coign
