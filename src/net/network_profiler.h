// The network profiler (paper §2): "creates a network profile through
// statistical sampling of communication time for a representative set of
// DCOM messages."
//
// We sample round trips of geometrically spaced payload sizes over the
// (jittered) transport and fit time = intercept + slope * bytes by least
// squares. The resulting NetworkProfile converts the abstract ICC graph's
// byte counts into the concrete graph's seconds.

#ifndef COIGN_SRC_NET_NETWORK_PROFILER_H_
#define COIGN_SRC_NET_NETWORK_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/transport.h"
#include "src/support/rng.h"
#include "src/support/stats.h"

namespace coign {

// Fitted cost model of one one-way message as a function of payload bytes.
struct NetworkProfile {
  std::string network_name;
  double per_message_seconds = 0.0;  // Fitted intercept (per direction).
  double seconds_per_byte = 0.0;     // Fitted slope.
  double fit_r_squared = 0.0;
  size_t sample_count = 0;

  double MessageSeconds(double bytes) const {
    return per_message_seconds + seconds_per_byte * bytes;
  }
  // Synchronous call: request message out, reply message back.
  double CallSeconds(double request_bytes, double reply_bytes) const {
    return MessageSeconds(request_bytes) + MessageSeconds(reply_bytes);
  }

  // A profile built directly from the model's true parameters (no sampling
  // noise) — useful as a fixture and to bound profiler error in tests.
  static NetworkProfile Exact(const NetworkModel& model);
};

struct NetworkProfilerOptions {
  // Representative payload sizes are geometrically spaced over
  // [min_bytes, max_bytes].
  uint64_t min_bytes = 16;
  uint64_t max_bytes = 256 * 1024;
  int size_points = 24;
  int samples_per_size = 32;
};

class NetworkProfiler {
 public:
  explicit NetworkProfiler(NetworkProfilerOptions options = {}) : options_(options) {}

  // Samples the transport and fits the profile.
  NetworkProfile Profile(const Transport& transport, Rng& rng) const;

 private:
  NetworkProfilerOptions options_;
};

}  // namespace coign

#endif  // COIGN_SRC_NET_NETWORK_PROFILER_H_
