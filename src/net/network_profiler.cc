#include "src/net/network_profiler.h"

#include <cmath>

namespace coign {

NetworkProfile NetworkProfile::Exact(const NetworkModel& model) {
  NetworkProfile profile;
  profile.network_name = model.name;
  profile.per_message_seconds = model.per_message_seconds;
  profile.seconds_per_byte = 1.0 / model.bytes_per_second;
  profile.fit_r_squared = 1.0;
  return profile;
}

NetworkProfile NetworkProfiler::Profile(const Transport& transport, Rng& rng) const {
  std::vector<double> xs;
  std::vector<double> ys;
  const double log_min = std::log(static_cast<double>(options_.min_bytes));
  const double log_max = std::log(static_cast<double>(options_.max_bytes));
  for (int p = 0; p < options_.size_points; ++p) {
    const double t = options_.size_points > 1
                         ? static_cast<double>(p) / (options_.size_points - 1)
                         : 0.0;
    const uint64_t bytes =
        static_cast<uint64_t>(std::llround(std::exp(log_min + t * (log_max - log_min))));
    for (int s = 0; s < options_.samples_per_size; ++s) {
      // One-way message time is half of a symmetric round trip of twice the
      // payload; sampling the round trip mirrors how a real profiler pings.
      const double rtt = transport.SampleRoundTripSeconds(bytes, bytes, rng);
      xs.push_back(static_cast<double>(bytes));
      ys.push_back(rtt / 2.0);
    }
  }
  const LinearFit fit = FitLinear(xs, ys);

  NetworkProfile profile;
  profile.network_name = transport.model().name;
  profile.per_message_seconds = fit.intercept;
  profile.seconds_per_byte = fit.slope;
  profile.fit_r_squared = fit.r_squared;
  profile.sample_count = xs.size();
  return profile;
}

}  // namespace coign
