#include "src/net/envelope.h"

#include <algorithm>
#include <cstddef>

#include "src/support/crc32c.h"

namespace coign {
namespace {

constexpr char kMagic[4] = {'C', 'o', 'E', 'v'};

void PutUint32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFFu));
  out->push_back(static_cast<char>((value >> 8) & 0xFFu));
  out->push_back(static_cast<char>((value >> 16) & 0xFFu));
  out->push_back(static_cast<char>((value >> 24) & 0xFFu));
}

uint32_t GetUint32(std::string_view bytes, size_t offset) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + 3])) << 24;
}

}  // namespace

std::string FrameEnvelope(std::string_view payload) {
  std::string framed;
  framed.reserve(kEnvelopeHeaderBytes + payload.size());
  framed.append(kMagic, sizeof(kMagic));
  PutUint32(&framed, static_cast<uint32_t>(payload.size()));
  PutUint32(&framed, Crc32c(payload));
  framed.append(payload);
  return framed;
}

Result<std::string> OpenEnvelope(std::string_view framed) {
  if (framed.size() < kEnvelopeHeaderBytes) {
    return InvalidArgumentError("envelope: short frame (" +
                                std::to_string(framed.size()) + " bytes)");
  }
  if (framed.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError("envelope: bad magic");
  }
  const uint32_t length = GetUint32(framed, 4);
  if (framed.size() != kEnvelopeHeaderBytes + length) {
    return InvalidArgumentError("envelope: length field says " +
                                std::to_string(length) + ", frame carries " +
                                std::to_string(framed.size() - kEnvelopeHeaderBytes));
  }
  const std::string_view payload = framed.substr(kEnvelopeHeaderBytes);
  const uint32_t expected = GetUint32(framed, 8);
  const uint32_t actual = Crc32c(payload);
  if (expected != actual) {
    return InvalidArgumentError("envelope: checksum mismatch");
  }
  return std::string(payload);
}

bool EnvelopeCatchesBitFlip(uint64_t payload_bytes, double unit) {
  const size_t size = static_cast<size_t>(std::min<uint64_t>(payload_bytes, 64));
  std::string payload(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<char>(0xA5u ^ (i & 0xFFu));
  }
  std::string framed = FrameEnvelope(payload);
  const uint64_t bits = static_cast<uint64_t>(framed.size()) * 8;
  uint64_t bit = static_cast<uint64_t>(unit * static_cast<double>(bits));
  bit = std::min(bit, bits - 1);
  framed[bit / 8] = static_cast<char>(framed[bit / 8] ^ (1u << (bit % 8)));
  return !OpenEnvelope(framed).ok();
}

}  // namespace coign
