#include "src/net/transport.h"

#include <algorithm>

namespace coign {

double Transport::SampleRoundTripSeconds(uint64_t request_bytes, uint64_t reply_bytes,
                                         Rng& rng) const {
  const double expected = ExpectedRoundTripSeconds(request_bytes, reply_bytes);
  if (model_.jitter_fraction <= 0.0) {
    return expected;
  }
  const double noisy = rng.Normal(expected, expected * model_.jitter_fraction);
  return std::max(noisy, expected * 0.25);
}

}  // namespace coign
