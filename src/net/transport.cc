#include "src/net/transport.h"

#include <algorithm>
#include <vector>

#include "src/net/envelope.h"

namespace coign {

namespace {

// RTT buckets: 100us to 3s in half-decade steps, covering clean LAN round
// trips through multi-retry timeout stacks.
const std::vector<double> kRttBounds = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
                                        3e-2, 1e-1, 3e-1, 1.0,  3.0};
// Retry-wait buckets: timeout+backoff time burned per retried call.
const std::vector<double> kRetryWaitBounds = {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0};

}  // namespace

void Transport::SetObservability(Observability* obs) {
  obs_ = obs;
  instruments_ = Instruments();
  if (obs_ == nullptr) {
    return;
  }
  MetricsRegistry& metrics = obs_->metrics();
  instruments_.calls = metrics.GetCounter("transport.calls");
  instruments_.attempts = metrics.GetCounter("transport.attempts");
  instruments_.retries = metrics.GetCounter("transport.retries");
  instruments_.undelivered = metrics.GetCounter("transport.undelivered");
  instruments_.faulted_calls = metrics.GetCounter("transport.faulted_calls");
  instruments_.duplicates_suppressed =
      metrics.GetCounter("transport.duplicates_suppressed");
  instruments_.duplicate_wire_messages =
      metrics.GetCounter("transport.duplicate_wire_messages");
  instruments_.corrupt_rejected = metrics.GetCounter("transport.corrupt_rejected");
  instruments_.corrupt_consumed = metrics.GetCounter("transport.corrupt_consumed");
  instruments_.rtt_seconds =
      metrics.GetHistogram("transport.rtt_seconds", kRttBounds);
  instruments_.retry_wait_seconds =
      metrics.GetHistogram("transport.retry_wait_seconds", kRetryWaitBounds);
}

void Transport::RecordReceipt(MachineId src, MachineId dst, uint64_t request_bytes,
                              uint64_t reply_bytes, double wait_seconds,
                              const DeliveryReceipt& receipt) {
  instruments_.calls->Add();
  instruments_.attempts->Add(static_cast<uint64_t>(receipt.attempts));
  if (receipt.attempts > 1) {
    instruments_.retries->Add(static_cast<uint64_t>(receipt.attempts - 1));
    instruments_.retry_wait_seconds->Observe(wait_seconds);
  }
  if (!receipt.delivered) {
    instruments_.undelivered->Add();
  }
  if (receipt.faulted) {
    instruments_.faulted_calls->Add();
  }
  if (receipt.duplicates_suppressed > 0) {
    instruments_.duplicates_suppressed->Add(receipt.duplicates_suppressed);
  }
  if (receipt.duplicate_messages > 0) {
    instruments_.duplicate_wire_messages->Add(receipt.duplicate_messages);
  }
  if (receipt.corrupt_rejected > 0) {
    instruments_.corrupt_rejected->Add(receipt.corrupt_rejected);
  }
  if (receipt.corrupt_consumed > 0) {
    instruments_.corrupt_consumed->Add(receipt.corrupt_consumed);
  }
  instruments_.rtt_seconds->Observe(receipt.seconds);
  // One complete span per round trip. The sim clock only advances once the
  // caller charges the receipt, so the span's duration is the modeled time
  // appended to the current clock reading.
  Tracer& tracer = obs_->tracer();
  const double start = tracer.Now();
  std::vector<std::pair<std::string, std::string>> args;
  args.emplace_back("src", Tracer::ArgInt(static_cast<int64_t>(src)));
  args.emplace_back("dst", Tracer::ArgInt(static_cast<int64_t>(dst)));
  args.emplace_back("req_bytes", Tracer::ArgUint(request_bytes));
  args.emplace_back("reply_bytes", Tracer::ArgUint(reply_bytes));
  args.emplace_back("attempts", Tracer::ArgInt(receipt.attempts));
  if (!receipt.delivered) {
    args.emplace_back("delivered", "false");
  }
  if (receipt.faulted) {
    args.emplace_back("faulted", "true");
  }
  if (receipt.corrupt_rejected > 0) {
    args.emplace_back("corrupt_rejected", Tracer::ArgUint(receipt.corrupt_rejected));
  }
  if (receipt.corrupt_consumed > 0) {
    args.emplace_back("corrupt_consumed", Tracer::ArgUint(receipt.corrupt_consumed));
  }
  tracer.Complete("rpc", "net", kTrackTransport, start, start + receipt.seconds,
                  std::move(args));
}

double Transport::SampleRoundTripSeconds(uint64_t request_bytes, uint64_t reply_bytes,
                                         Rng& rng) const {
  const double expected = ExpectedRoundTripSeconds(request_bytes, reply_bytes);
  if (model_.jitter_fraction <= 0.0) {
    return expected;
  }
  const double noisy = rng.Normal(expected, expected * model_.jitter_fraction);
  return std::max(noisy, expected * 0.25);
}

Transport::RoundTripSplit Transport::ScaledRoundTripSplit(uint64_t request_bytes,
                                                          uint64_t reply_bytes,
                                                          double latency_scale,
                                                          double bandwidth_scale,
                                                          Rng* jitter_rng) const {
  RoundTripSplit split;
  split.latency = 2.0 * model_.per_message_seconds * latency_scale;
  split.payload = static_cast<double>(request_bytes + reply_bytes) /
                  model_.bytes_per_second * bandwidth_scale;
  const double expected = split.total();
  if (jitter_rng == nullptr || model_.jitter_fraction <= 0.0 || expected <= 0.0) {
    return split;
  }
  const double noisy = jitter_rng->Normal(expected, expected * model_.jitter_fraction);
  const double factor = std::max(noisy, expected * 0.25) / expected;
  split.latency *= factor;
  split.payload *= factor;
  return split;
}

DeliveryReceipt Transport::ReliableRoundTrip(MachineId src, MachineId dst,
                                             uint64_t request_bytes, uint64_t reply_bytes,
                                             Rng* jitter_rng) {
  DeliveryReceipt receipt;
  receipt.attempts = 0;
  receipt.delivered = false;
  const int budget = std::max(1, retry_.max_attempts);
  const double expected = ExpectedRoundTripSeconds(request_bytes, reply_bytes);
  // At-most-once delivery: the call carries one idempotency token; the
  // receiver executes the first request it sees under that token and
  // discards (re-acking) every later arrival — retransmissions after a
  // lost reply and wire duplicates alike.
  (void)next_idempotency_token_++;
  bool receiver_executed = false;
  double backoff = retry_.backoff_initial_seconds;
  double wait_seconds = 0.0;  // Timeout + backoff time, for observability.
  for (int attempt = 0; attempt < budget; ++attempt) {
    ++receipt.attempts;
    AttemptPlan plan;
    if (faults_ != nullptr) {
      plan = faults_->OnAttempt(src, dst, request_bytes, reply_bytes, expected);
    }
    if (!plan.clean()) {
      receipt.faulted = true;
    }
    const bool corrupted = plan.delivered && (plan.corrupt_request || plan.corrupt_reply);
    if (corrupted && checksums_) {
      // The damaged leg's envelope fails to open: model the check against
      // real framing by flipping the fault-chosen bit in a framed stand-in
      // and letting OpenEnvelope render the verdict. CRC32C catches every
      // single-bit flip, so the attempt is rejected — but if the open path
      // ever accepted the damage, the poison would flow through below.
      const double unit =
          faults_ != nullptr ? faults_->JitterUnit()
                             : (jitter_rng != nullptr ? jitter_rng->UniformDouble() : 0.5);
      const bool caught = EnvelopeCatchesBitFlip(
          plan.corrupt_request ? request_bytes : reply_bytes, unit);
      if (caught) {
        ++receipt.corrupt_rejected;
        if (plan.corrupt_reply) {
          // The request executed before its reply was damaged: the
          // idempotency token is spent, so the retransmission below is a
          // duplicate the receiver suppresses.
          if (receiver_executed) {
            ++receipt.duplicates_suppressed;
          }
          receiver_executed = true;
        }
        // Pay for the bytes that actually crossed. A corrupted request is
        // rejected receiver-side and NACKed back (request payload + two
        // message latencies); a corrupted reply costs the full round trip.
        // Detection is active — no timeout, retransmit immediately.
        RoundTripSplit split = ScaledRoundTripSplit(
            request_bytes, plan.corrupt_reply ? reply_bytes : 0,
            plan.latency_scale, plan.bandwidth_scale, jitter_rng);
        split.latency += plan.extra_seconds;
        receipt.latency_seconds += split.latency;
        receipt.payload_seconds += split.payload;
        AdvanceFaultClock(split.total());
        continue;
      }
    }
    if (!plan.delivered) {
      if (plan.request_reached) {
        // Reply lost after the receiver executed: the token is now spent,
        // so any later arrival of this request is a duplicate.
        if (receiver_executed) {
          ++receipt.duplicates_suppressed;
        }
        receiver_executed = true;
      }
      receipt.latency_seconds += retry_.timeout_seconds;
      wait_seconds += retry_.timeout_seconds;
      AdvanceFaultClock(retry_.timeout_seconds);
      if (attempt + 1 < budget) {
        const double wait = std::min(backoff, retry_.backoff_max_seconds);
        // Jitter desynchronizes retries; the unit draw comes from the fault
        // model's seeded stream so runs replay exactly.
        const double unit =
            faults_ != nullptr ? faults_->JitterUnit()
                               : (jitter_rng != nullptr ? jitter_rng->UniformDouble() : 0.5);
        const double jittered =
            wait * (1.0 + retry_.backoff_jitter * (2.0 * unit - 1.0));
        receipt.latency_seconds += std::max(jittered, 0.0);
        wait_seconds += std::max(jittered, 0.0);
        AdvanceFaultClock(std::max(jittered, 0.0));
        backoff *= retry_.backoff_multiplier;
      }
      continue;
    }
    if (receiver_executed) {
      // A retransmission reaching a spent token: the receiver suppresses
      // the re-execution and just re-acks. Wire time is still real.
      ++receipt.duplicates_suppressed;
    }
    receiver_executed = true;
    RoundTripSplit split = ScaledRoundTripSplit(request_bytes, reply_bytes,
                                                plan.latency_scale, plan.bandwidth_scale,
                                                jitter_rng);
    if (plan.duplicated) {
      // The duplicate request traverses the wire once more; the receiver
      // discards it by token.
      split.latency += model_.per_message_seconds * plan.latency_scale;
      split.payload += static_cast<double>(request_bytes) / model_.bytes_per_second *
                       plan.bandwidth_scale;
      ++receipt.duplicate_messages;
      ++receipt.duplicates_suppressed;
    }
    if (plan.reordered) {
      // The reply is recognized one message-latency late.
      split.latency += model_.per_message_seconds * plan.latency_scale;
    }
    split.latency += plan.extra_seconds;
    receipt.latency_seconds += split.latency;
    receipt.payload_seconds += split.payload;
    AdvanceFaultClock(split.total());
    if (corrupted) {
      // Checksums off (or the check somehow passed): the poisoned payload
      // is consumed as a normal delivery. The caller got garbage.
      ++receipt.corrupt_consumed;
    }
    receipt.delivered = true;
    break;
  }
  receipt.seconds = receipt.latency_seconds + receipt.payload_seconds;
  Charge(receipt.seconds);
  if (obs_ != nullptr) {
    RecordReceipt(src, dst, request_bytes, reply_bytes, wait_seconds, receipt);
  }
  return receipt;
}

}  // namespace coign
