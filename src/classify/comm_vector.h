// Instance communication vectors (paper §4.2).
//
// "An instance communication vector is an ordered tuple of n real numbers
// (one for each component instance in the application). Each number
// quantifies the communication time with another component instance ...
// We compare the correlation between two communication vectors with the
// vector dot product operator."
//
// To compare vectors *across executions* the peer axis is the peer's
// instance classification (stable between runs) rather than its transient
// instance id. Vectors are sparse maps keyed by classification.

#ifndef COIGN_SRC_CLASSIFY_COMM_VECTOR_H_
#define COIGN_SRC_CLASSIFY_COMM_VECTOR_H_

#include <unordered_map>

#include "src/classify/descriptor.h"
#include "src/com/types.h"

namespace coign {

using SparseVector = std::unordered_map<ClassificationId, double>;

// Normalized dot product; 1 for identical direction, 0 for disjoint
// support. Two empty (all-zero) vectors correlate 1.
double SparseCorrelation(const SparseVector& a, const SparseVector& b);

// dst += src * scale.
void AddScaled(SparseVector* dst, const SparseVector& src, double scale);

// Pairwise instance-to-instance communication recorded over one execution.
// Weights are symmetric: communication *with* a peer counts regardless of
// who called whom.
class CommMatrix {
 public:
  void Add(InstanceId a, InstanceId b, double weight);

  // Communication weights of one instance against its peers; empty map for
  // instances that never communicated.
  const std::unordered_map<InstanceId, double>& RowOf(InstanceId instance) const;

  const std::unordered_map<InstanceId, std::unordered_map<InstanceId, double>>& rows() const {
    return rows_;
  }

  void Clear() { rows_.clear(); }

 private:
  std::unordered_map<InstanceId, std::unordered_map<InstanceId, double>> rows_;
};

}  // namespace coign

#endif  // COIGN_SRC_CLASSIFY_COMM_VECTOR_H_
