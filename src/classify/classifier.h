// Instance classifiers (paper §3.4).
//
// "The instance classifier identifies component instances with similar
// communication profiles across separate executions of an application ...
// The classifier groups instances with similar instantiation histories."
//
// A classifier is consulted at every instantiation with the class being
// created and the current cross-component back-trace; it builds a
// Descriptor (Figure 3) and assigns the instance to the classification of
// that descriptor, creating a new classification for never-seen
// descriptors. Classifications persist across program executions — they are
// the keys profile analysis uses to map profiling-run behaviour onto
// distribution-run instances.

#ifndef COIGN_SRC_CLASSIFY_CLASSIFIER_H_
#define COIGN_SRC_CLASSIFY_CLASSIFIER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/classify/descriptor.h"
#include "src/com/callstack.h"
#include "src/com/class_registry.h"
#include "src/support/status.h"

namespace coign {

// Unlimited stack walk.
constexpr int kCompleteStackWalk = -1;

class InstanceClassifier {
 public:
  virtual ~InstanceClassifier() = default;

  virtual std::string name() const = 0;

  // Classifies a new instance given the back-trace at instantiation time
  // (innermost frame first). Records the instance → classification binding.
  ClassificationId Classify(const ClassDesc& cls, const std::vector<CallFrame>& backtrace,
                            InstanceId new_instance);

  // Classification previously assigned to an instance (this execution).
  Result<ClassificationId> ClassificationOf(InstanceId instance) const;

  // Total distinct classifications discovered so far (all executions).
  size_t classification_count() const { return descriptors_.size(); }

  // Number of instances classified so far (all executions).
  uint64_t instances_classified() const { return instances_classified_; }

  // The descriptor that defines a classification.
  const Descriptor& DescriptorOf(ClassificationId id) const { return descriptors_[id]; }

  // Instances assigned to each classification (all executions).
  uint64_t InstanceCountOf(ClassificationId id) const { return instance_counts_[id]; }

  // Clears per-execution instance bindings but keeps the classification
  // table — the state carried between profiling runs (and into the
  // distributed run) via the configuration record. Overrides must call the
  // base implementation.
  virtual void BeginExecution();

  // Marks the current classification count; classifications created after
  // the mark are "new" (Table 2's bigone column).
  void SetMark() { mark_ = descriptors_.size(); }
  size_t NewClassificationsSinceMark() const { return descriptors_.size() - mark_; }

  // The classification table, for persistence in the configuration record
  // ("the application's ICC graph and component classification data are
  // written into the configuration record", paper §2). Importing restores
  // the id ↔ descriptor mapping so a later execution assigns the same ids.
  std::vector<Descriptor> ExportDescriptors() const { return descriptors_; }
  // Must be called before any instance is classified.
  Status ImportDescriptors(const std::vector<Descriptor>& descriptors);

 protected:
  // Builds the classifier-specific descriptor. `backtrace` is already
  // truncated to the classifier's stack-walk depth.
  virtual Descriptor MakeDescriptor(const ClassDesc& cls,
                                    const std::vector<CallFrame>& backtrace) = 0;

  // Depth limit applied to the back-trace before MakeDescriptor; negative
  // means complete walk.
  virtual int stack_walk_depth() const { return kCompleteStackWalk; }

  // Classification of a back-trace instance, for descriptors that embed
  // instance classifications (IFCB/EPCB/IB). kNoClassification for unknown.
  ClassificationId PeerClassification(InstanceId instance) const;

 private:
  std::unordered_map<Descriptor, ClassificationId, DescriptorHash> table_;
  std::vector<Descriptor> descriptors_;
  std::vector<uint64_t> instance_counts_;
  std::unordered_map<InstanceId, ClassificationId> instance_bindings_;
  uint64_t instances_classified_ = 0;
  size_t mark_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_CLASSIFY_CLASSIFIER_H_
