#include "src/classify/evaluation.h"

namespace coign {

SparseVector ClassifierEvaluator::VectorFor(InstanceId instance, const CommMatrix& comm) const {
  SparseVector vector;
  for (const auto& [peer, weight] : comm.RowOf(instance)) {
    const Result<ClassificationId> peer_class = classifier_->ClassificationOf(peer);
    // Peers outside classification (the scenario driver) share a synthetic
    // dimension so "talks mostly to the driver" is itself a signature.
    const ClassificationId dim = peer_class.ok() ? *peer_class : kNoClassification;
    vector[dim] += weight;
  }
  return vector;
}

void ClassifierEvaluator::AccumulateProfilingRun(const CommMatrix& comm) {
  for (const auto& [instance, row] : comm.rows()) {
    const Result<ClassificationId> cls = classifier_->ClassificationOf(instance);
    if (!cls.ok()) {
      continue;
    }
    const SparseVector vector = VectorFor(instance, comm);
    AddScaled(&profiles_[*cls], vector, 1.0);
  }
}

void ClassifierEvaluator::BeginEvaluationPhase() {
  profiled_classifications_ = classifier_->classification_count();
  profiled_instances_ = classifier_->instances_classified();
  classifier_->SetMark();
}

void ClassifierEvaluator::AccumulateEvaluationRun(const CommMatrix& comm) {
  for (const auto& [instance, row] : comm.rows()) {
    const Result<ClassificationId> cls = classifier_->ClassificationOf(instance);
    if (!cls.ok()) {
      continue;  // The driver pseudo-instance.
    }
    const SparseVector actual = VectorFor(instance, comm);
    auto it = profiles_.find(*cls);
    if (it == profiles_.end()) {
      // Instance fell into a classification never seen while profiling: the
      // chosen profile predicts nothing about it.
      correlations_.Add(0.0);
      continue;
    }
    correlations_.Add(SparseCorrelation(actual, it->second));
  }
}

ClassifierAccuracyRow ClassifierEvaluator::Row() const {
  ClassifierAccuracyRow row;
  row.name = classifier_->name();
  row.profiled_classifications = profiled_classifications_;
  row.new_classifications = classifier_->NewClassificationsSinceMark();
  row.avg_instances_per_classification =
      profiled_classifications_ == 0
          ? 0.0
          : static_cast<double>(profiled_instances_) /
                static_cast<double>(profiled_classifications_);
  row.avg_correlation = correlations_.count() == 0 ? 0.0 : correlations_.mean();
  return row;
}

}  // namespace coign
