// The seven instance classifiers of paper §3.4 / Figure 3.
//
//   Incremental — order of instantiation; the paper's straw man.
//   PCB   — static type + functions (class::method) on the back-trace.
//   ST    — static type only.
//   STCB  — static type + component *classes* on the back-trace.
//   IFCB  — static type + (instance-classification, function) pairs for
//           every frame; the classifier Coign typically uses.
//   EPCB  — like IFCB but only frames that *entered* a component instance.
//   IB    — static type + parent instance-classification
//           (== IFCB with a depth-1 walk).
//
// PCB/STCB/IFCB/EPCB take a stack-walk depth (kCompleteStackWalk walks
// everything) to trade accuracy against overhead (Table 3).

#ifndef COIGN_SRC_CLASSIFY_CLASSIFIERS_H_
#define COIGN_SRC_CLASSIFY_CLASSIFIERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/classify/classifier.h"

namespace coign {

enum class ClassifierKind {
  kIncremental,
  kProcedureCalledBy,
  kStaticType,
  kStaticTypeCalledBy,
  kInternalFunctionCalledBy,
  kEntryPointCalledBy,
  kInstantiatedBy,
};

// All seven kinds, in Table 2 order.
const std::vector<ClassifierKind>& AllClassifierKinds();

std::string ClassifierKindName(ClassifierKind kind);

// Factory. `depth` applies to the called-by classifiers and is ignored by
// Incremental/ST/IB.
std::unique_ptr<InstanceClassifier> MakeClassifier(ClassifierKind kind,
                                                   int depth = kCompleteStackWalk);

class IncrementalClassifier : public InstanceClassifier {
 public:
  std::string name() const override { return "Incremental"; }

  // The sequence restarts with every execution: the n-th instantiation of a
  // run always lands in classification [n], which is exactly why the straw
  // man "is strictly limited by the order of application execution".
  void BeginExecution() override {
    InstanceClassifier::BeginExecution();
    next_sequence_ = 0;
  }

 protected:
  Descriptor MakeDescriptor(const ClassDesc& cls,
                            const std::vector<CallFrame>& backtrace) override;

 private:
  uint64_t next_sequence_ = 0;
};

class ProcedureCalledByClassifier : public InstanceClassifier {
 public:
  explicit ProcedureCalledByClassifier(int depth = kCompleteStackWalk) : depth_(depth) {}
  std::string name() const override { return "Procedure Called-By"; }

 protected:
  Descriptor MakeDescriptor(const ClassDesc& cls,
                            const std::vector<CallFrame>& backtrace) override;
  int stack_walk_depth() const override { return depth_; }

 private:
  int depth_;
};

class StaticTypeClassifier : public InstanceClassifier {
 public:
  std::string name() const override { return "Static-Type"; }

 protected:
  Descriptor MakeDescriptor(const ClassDesc& cls,
                            const std::vector<CallFrame>& backtrace) override;
};

class StaticTypeCalledByClassifier : public InstanceClassifier {
 public:
  explicit StaticTypeCalledByClassifier(int depth = kCompleteStackWalk) : depth_(depth) {}
  std::string name() const override { return "Static-Type Called-By"; }

 protected:
  Descriptor MakeDescriptor(const ClassDesc& cls,
                            const std::vector<CallFrame>& backtrace) override;
  int stack_walk_depth() const override { return depth_; }

 private:
  int depth_;
};

class InternalFunctionCalledByClassifier : public InstanceClassifier {
 public:
  explicit InternalFunctionCalledByClassifier(int depth = kCompleteStackWalk)
      : depth_(depth) {}
  std::string name() const override { return "Internal-Func. Called-By"; }

 protected:
  Descriptor MakeDescriptor(const ClassDesc& cls,
                            const std::vector<CallFrame>& backtrace) override;
  int stack_walk_depth() const override { return depth_; }

 private:
  int depth_;
};

// Keeps only frames where control entered a component instance; the depth
// limit applies to those entry frames.
class EntryPointCalledByClassifier : public InstanceClassifier {
 public:
  explicit EntryPointCalledByClassifier(int depth = kCompleteStackWalk) : depth_(depth) {}
  std::string name() const override { return "Entry-Point Called-By"; }

 protected:
  Descriptor MakeDescriptor(const ClassDesc& cls,
                            const std::vector<CallFrame>& backtrace) override;

 private:
  int depth_;
};

class InstantiatedByClassifier : public InstanceClassifier {
 public:
  std::string name() const override { return "Instantiated-By"; }

 protected:
  Descriptor MakeDescriptor(const ClassDesc& cls,
                            const std::vector<CallFrame>& backtrace) override;
  int stack_walk_depth() const override { return 1; }
};

}  // namespace coign

#endif  // COIGN_SRC_CLASSIFY_CLASSIFIERS_H_
