// Classifier accuracy evaluation — produces Tables 2 and 3.
//
// Protocol (paper §4.2): run the classifier through every profiling
// scenario to build per-classification communication profiles, then run the
// synthesized `bigone` scenario and measure (a) how many classifications
// are new — a good classifier recognizes everything — and (b) how well each
// bigone instance's communication vector correlates with the profile of the
// classification it was assigned to.

#ifndef COIGN_SRC_CLASSIFY_EVALUATION_H_
#define COIGN_SRC_CLASSIFY_EVALUATION_H_

#include <string>
#include <unordered_map>

#include "src/classify/classifier.h"
#include "src/classify/comm_vector.h"
#include "src/support/stats.h"

namespace coign {

// One row of Table 2 / Table 3.
struct ClassifierAccuracyRow {
  std::string name;
  size_t profiled_classifications = 0;
  size_t new_classifications = 0;
  double avg_instances_per_classification = 0.0;
  double avg_correlation = 0.0;
};

class ClassifierEvaluator {
 public:
  // The evaluator observes but does not own the classifier.
  explicit ClassifierEvaluator(InstanceClassifier* classifier) : classifier_(classifier) {}

  // Folds one profiling execution's communication into the per-
  // classification profiles. Call after the execution, before the next
  // BeginExecution() on the classifier.
  void AccumulateProfilingRun(const CommMatrix& comm);

  // Snapshots profiling-phase statistics and marks the classifier; call
  // between the last profiling run and the bigone run.
  void BeginEvaluationPhase();

  // Scores the bigone execution. Call after the execution.
  void AccumulateEvaluationRun(const CommMatrix& comm);

  ClassifierAccuracyRow Row() const;

 private:
  // Instance→sparse vector over peer classifications, using the
  // classifier's current bindings.
  SparseVector VectorFor(InstanceId instance, const CommMatrix& comm) const;

  InstanceClassifier* classifier_;
  std::unordered_map<ClassificationId, SparseVector> profiles_;
  size_t profiled_classifications_ = 0;
  uint64_t profiled_instances_ = 0;
  RunningStats correlations_;
};

}  // namespace coign

#endif  // COIGN_SRC_CLASSIFY_EVALUATION_H_
