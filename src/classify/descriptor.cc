#include "src/classify/descriptor.h"

namespace coign {
namespace {

uint64_t MixInto(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

uint64_t Descriptor::Hash() const {
  uint64_t h = MixInto(clsid.hi, clsid.lo);
  for (const DescriptorToken& token : tokens) {
    h = MixInto(h, token.tag);
    h = MixInto(h, token.a);
    h = MixInto(h, token.b);
  }
  return h;
}

}  // namespace coign
