// Classifier descriptors (paper Figure 3).
//
// Each instance classifier creates a descriptor at instantiation time to
// uniquely identify groups of similar component instances. A descriptor is
// the component's class plus a classifier-specific encoding of the
// instantiation context (stack back-trace tokens). Two instantiations with
// equal descriptors fall into the same instance classification.

#ifndef COIGN_SRC_CLASSIFY_DESCRIPTOR_H_
#define COIGN_SRC_CLASSIFY_DESCRIPTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/com/types.h"

namespace coign {

// Dense id of an instance classification, assigned in discovery order by a
// ClassificationTable. Valid ids start at 0; kNoClassification marks
// unclassified peers (e.g. the scenario driver).
using ClassificationId = uint32_t;
constexpr ClassificationId kNoClassification = ~ClassificationId{0};

// One back-trace element of a descriptor. The meaning of the fields depends
// on the classifier (a function hash for PCB, a class hash for STCB, a
// (classification, function) pair for IFCB/EPCB/IB, a sequence number for
// Incremental); equality and hashing are what matter.
struct DescriptorToken {
  uint64_t tag = 0;
  uint64_t a = 0;
  uint64_t b = 0;

  friend bool operator==(const DescriptorToken&, const DescriptorToken&) = default;
};

struct Descriptor {
  ClassId clsid;            // The class being instantiated.
  std::vector<DescriptorToken> tokens;  // Innermost stack context first.
  std::string debug;        // Human-readable form, e.g. "[D, [c,Z], [b2,Y]]".

  // Stable 64-bit hash over clsid + tokens (debug text excluded).
  uint64_t Hash() const;

  friend bool operator==(const Descriptor& a, const Descriptor& b) {
    return a.clsid == b.clsid && a.tokens == b.tokens;
  }
};

struct DescriptorHash {
  size_t operator()(const Descriptor& d) const { return static_cast<size_t>(d.Hash()); }
};

}  // namespace coign

#endif  // COIGN_SRC_CLASSIFY_DESCRIPTOR_H_
