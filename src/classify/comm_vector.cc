#include "src/classify/comm_vector.h"

#include <cmath>

namespace coign {

double SparseCorrelation(const SparseVector& a, const SparseVector& b) {
  double na = 0.0;
  for (const auto& [dim, v] : a) {
    na += v * v;
  }
  double nb = 0.0;
  for (const auto& [dim, v] : b) {
    nb += v * v;
  }
  if (na == 0.0 && nb == 0.0) {
    return 1.0;
  }
  if (na == 0.0 || nb == 0.0) {
    return 0.0;
  }
  double dot = 0.0;
  const SparseVector& small = a.size() <= b.size() ? a : b;
  const SparseVector& large = a.size() <= b.size() ? b : a;
  for (const auto& [dim, v] : small) {
    auto it = large.find(dim);
    if (it != large.end()) {
      dot += v * it->second;
    }
  }
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void AddScaled(SparseVector* dst, const SparseVector& src, double scale) {
  for (const auto& [dim, v] : src) {
    (*dst)[dim] += v * scale;
  }
}

void CommMatrix::Add(InstanceId a, InstanceId b, double weight) {
  if (a == b) {
    return;  // Intra-instance calls are not communication.
  }
  rows_[a][b] += weight;
  rows_[b][a] += weight;
}

const std::unordered_map<InstanceId, double>& CommMatrix::RowOf(InstanceId instance) const {
  static const std::unordered_map<InstanceId, double> kEmpty;
  auto it = rows_.find(instance);
  return it == rows_.end() ? kEmpty : it->second;
}

}  // namespace coign
