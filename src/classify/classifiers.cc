#include "src/classify/classifiers.h"

#include <cassert>

namespace coign {
namespace {

enum TokenTag : uint64_t {
  kTokSequence = 1,
  kTokFunction = 2,
  kTokClass = 3,
  kTokInstanceFunction = 4,
  kTokParent = 5,
};

uint64_t FunctionHash(const CallFrame& frame) {
  uint64_t h = frame.iid.hi;
  h ^= frame.iid.lo + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= frame.method + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t ClassHash(const ClassId& clsid) { return clsid.hi ^ (clsid.lo * 3); }

}  // namespace

const std::vector<ClassifierKind>& AllClassifierKinds() {
  static const std::vector<ClassifierKind> kKinds = {
      ClassifierKind::kIncremental,
      ClassifierKind::kProcedureCalledBy,
      ClassifierKind::kStaticType,
      ClassifierKind::kStaticTypeCalledBy,
      ClassifierKind::kInternalFunctionCalledBy,
      ClassifierKind::kEntryPointCalledBy,
      ClassifierKind::kInstantiatedBy,
  };
  return kKinds;
}

std::string ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kIncremental:
      return "Incremental";
    case ClassifierKind::kProcedureCalledBy:
      return "Procedure Called-By";
    case ClassifierKind::kStaticType:
      return "Static-Type";
    case ClassifierKind::kStaticTypeCalledBy:
      return "Static-Type Called-By";
    case ClassifierKind::kInternalFunctionCalledBy:
      return "Internal-Func. Called-By";
    case ClassifierKind::kEntryPointCalledBy:
      return "Entry-Point Called-By";
    case ClassifierKind::kInstantiatedBy:
      return "Instantiated-By";
  }
  return "?";
}

std::unique_ptr<InstanceClassifier> MakeClassifier(ClassifierKind kind, int depth) {
  switch (kind) {
    case ClassifierKind::kIncremental:
      return std::make_unique<IncrementalClassifier>();
    case ClassifierKind::kProcedureCalledBy:
      return std::make_unique<ProcedureCalledByClassifier>(depth);
    case ClassifierKind::kStaticType:
      return std::make_unique<StaticTypeClassifier>();
    case ClassifierKind::kStaticTypeCalledBy:
      return std::make_unique<StaticTypeCalledByClassifier>(depth);
    case ClassifierKind::kInternalFunctionCalledBy:
      return std::make_unique<InternalFunctionCalledByClassifier>(depth);
    case ClassifierKind::kEntryPointCalledBy:
      return std::make_unique<EntryPointCalledByClassifier>(depth);
    case ClassifierKind::kInstantiatedBy:
      return std::make_unique<InstantiatedByClassifier>();
  }
  return nullptr;
}

Descriptor IncrementalClassifier::MakeDescriptor(const ClassDesc& cls,
                                                 const std::vector<CallFrame>& backtrace) {
  (void)cls;
  (void)backtrace;
  // Figure 3: "[10] (for 10th call to CoCreateInstance)" — order only, not
  // even the class being created.
  Descriptor d;
  d.tokens.push_back(DescriptorToken{kTokSequence, next_sequence_++, 0});
  return d;
}

Descriptor ProcedureCalledByClassifier::MakeDescriptor(
    const ClassDesc& cls, const std::vector<CallFrame>& backtrace) {
  Descriptor d;
  d.clsid = cls.clsid;
  d.tokens.reserve(backtrace.size());
  for (const CallFrame& frame : backtrace) {
    // Functions only — "the PCB classifier does not differentiate between
    // individual instances of the same component class."
    d.tokens.push_back(DescriptorToken{kTokFunction, FunctionHash(frame), 0});
  }
  return d;
}

Descriptor StaticTypeClassifier::MakeDescriptor(const ClassDesc& cls,
                                                const std::vector<CallFrame>& backtrace) {
  (void)backtrace;
  Descriptor d;
  d.clsid = cls.clsid;
  return d;
}

Descriptor StaticTypeCalledByClassifier::MakeDescriptor(
    const ClassDesc& cls, const std::vector<CallFrame>& backtrace) {
  Descriptor d;
  d.clsid = cls.clsid;
  d.tokens.reserve(backtrace.size());
  for (const CallFrame& frame : backtrace) {
    d.tokens.push_back(DescriptorToken{kTokClass, ClassHash(frame.clsid), 0});
  }
  return d;
}

Descriptor InternalFunctionCalledByClassifier::MakeDescriptor(
    const ClassDesc& cls, const std::vector<CallFrame>& backtrace) {
  Descriptor d;
  d.clsid = cls.clsid;
  d.tokens.reserve(backtrace.size());
  for (const CallFrame& frame : backtrace) {
    d.tokens.push_back(DescriptorToken{kTokInstanceFunction,
                                       PeerClassification(frame.instance),
                                       FunctionHash(frame)});
  }
  return d;
}

Descriptor EntryPointCalledByClassifier::MakeDescriptor(
    const ClassDesc& cls, const std::vector<CallFrame>& backtrace) {
  Descriptor d;
  d.clsid = cls.clsid;
  // Keep only the frame through which control entered each instance on the
  // stack: a frame is an entry point if the frame *below* it (next outer)
  // belongs to a different instance. The back-trace is innermost-first, so
  // the next outer frame is the next element.
  size_t kept = 0;
  for (size_t i = 0; i < backtrace.size(); ++i) {
    const bool entered = i + 1 >= backtrace.size() ||
                         backtrace[i + 1].instance != backtrace[i].instance;
    if (!entered) {
      continue;
    }
    d.tokens.push_back(DescriptorToken{kTokInstanceFunction,
                                       PeerClassification(backtrace[i].instance),
                                       FunctionHash(backtrace[i])});
    if (depth_ >= 0 && ++kept >= static_cast<size_t>(depth_)) {
      break;
    }
  }
  return d;
}

Descriptor InstantiatedByClassifier::MakeDescriptor(const ClassDesc& cls,
                                                    const std::vector<CallFrame>& backtrace) {
  Descriptor d;
  d.clsid = cls.clsid;
  // Parent = the instance executing the instantiation request.
  const ClassificationId parent =
      backtrace.empty() ? kNoClassification : PeerClassification(backtrace.front().instance);
  d.tokens.push_back(DescriptorToken{kTokParent, parent, 0});
  return d;
}

}  // namespace coign
