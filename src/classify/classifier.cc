#include "src/classify/classifier.h"

#include <cassert>

namespace coign {

ClassificationId InstanceClassifier::Classify(const ClassDesc& cls,
                                              const std::vector<CallFrame>& backtrace,
                                              InstanceId new_instance) {
  std::vector<CallFrame> trace = backtrace;
  const int depth = stack_walk_depth();
  if (depth >= 0 && trace.size() > static_cast<size_t>(depth)) {
    trace.resize(static_cast<size_t>(depth));
  }
  Descriptor descriptor = MakeDescriptor(cls, trace);

  ClassificationId id;
  auto it = table_.find(descriptor);
  if (it != table_.end()) {
    id = it->second;
  } else {
    id = static_cast<ClassificationId>(descriptors_.size());
    table_.emplace(descriptor, id);
    descriptors_.push_back(std::move(descriptor));
    instance_counts_.push_back(0);
  }
  instance_counts_[id] += 1;
  ++instances_classified_;
  instance_bindings_[new_instance] = id;
  return id;
}

Result<ClassificationId> InstanceClassifier::ClassificationOf(InstanceId instance) const {
  auto it = instance_bindings_.find(instance);
  if (it == instance_bindings_.end()) {
    return NotFoundError("instance has no classification this execution");
  }
  return it->second;
}

void InstanceClassifier::BeginExecution() { instance_bindings_.clear(); }

Status InstanceClassifier::ImportDescriptors(const std::vector<Descriptor>& descriptors) {
  if (!descriptors_.empty() || instances_classified_ != 0) {
    return FailedPreconditionError("classifier table import after classification began");
  }
  descriptors_ = descriptors;
  instance_counts_.assign(descriptors_.size(), 0);
  for (size_t i = 0; i < descriptors_.size(); ++i) {
    table_.emplace(descriptors_[i], static_cast<ClassificationId>(i));
  }
  return Status::Ok();
}

ClassificationId InstanceClassifier::PeerClassification(InstanceId instance) const {
  auto it = instance_bindings_.find(instance);
  return it == instance_bindings_.end() ? kNoClassification : it->second;
}

}  // namespace coign
