#include "src/profile/event.h"

#include "src/support/str_util.h"

namespace coign {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kComponentInstantiation:
      return "component-instantiation";
    case EventKind::kComponentDestruction:
      return "component-destruction";
    case EventKind::kInterfaceInstantiation:
      return "interface-instantiation";
    case EventKind::kInterfaceDestruction:
      return "interface-destruction";
    case EventKind::kInterfaceCall:
      return "interface-call";
  }
  return "?";
}

std::string ProfileEvent::ToString() const {
  switch (kind) {
    case EventKind::kInterfaceCall:
      return StrFormat("#%llu call %llu->%llu method=%u req=%llu rep=%llu%s",
                       static_cast<unsigned long long>(sequence),
                       static_cast<unsigned long long>(caller),
                       static_cast<unsigned long long>(subject), method,
                       static_cast<unsigned long long>(request_bytes),
                       static_cast<unsigned long long>(reply_bytes),
                       remotable ? "" : " non-remotable");
    default:
      return StrFormat("#%llu %s instance=%llu classification=%u",
                       static_cast<unsigned long long>(sequence), EventKindName(kind),
                       static_cast<unsigned long long>(subject), subject_classification);
  }
}

}  // namespace coign
