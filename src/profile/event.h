// Application events observed during profiling (paper §3.3): component
// instantiations and destructions, interface instantiations and
// destructions, and interface calls. The event logger records these as a
// detailed trace ("a colleague has used logs from the event logger to drive
// detailed application simulations"); the profiling logger summarizes them.

#ifndef COIGN_SRC_PROFILE_EVENT_H_
#define COIGN_SRC_PROFILE_EVENT_H_

#include <cstdint>
#include <string>

#include "src/classify/descriptor.h"
#include "src/com/types.h"

namespace coign {

enum class EventKind : uint8_t {
  kComponentInstantiation,
  kComponentDestruction,
  kInterfaceInstantiation,  // An interface ref first crossed a boundary.
  kInterfaceDestruction,
  kInterfaceCall,
};

const char* EventKindName(EventKind kind);

struct ProfileEvent {
  EventKind kind = EventKind::kInterfaceCall;
  uint64_t sequence = 0;  // Monotone per execution.

  InstanceId subject = kNoInstance;  // The instance the event is about.
  ClassId subject_class;
  ClassificationId subject_classification = kNoClassification;

  // For kInterfaceCall: the calling side.
  InstanceId caller = kNoInstance;
  ClassificationId caller_classification = kNoClassification;

  InterfaceId iid;        // Interface involved (calls and interface events).
  MethodIndex method = 0;
  uint64_t request_bytes = 0;
  uint64_t reply_bytes = 0;
  bool remotable = true;

  std::string ToString() const;
};

}  // namespace coign

#endif  // COIGN_SRC_PROFILE_EVENT_H_
