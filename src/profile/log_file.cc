#include "src/profile/log_file.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/support/str_util.h"

namespace coign {
namespace {

constexpr char kMagic[] = "coign-profile v1";

std::string HistogramFields(const ExponentialHistogram& h) {
  std::string out;
  for (int bucket : h.NonEmptyBuckets()) {
    out += StrFormat(" %d:%llu:%llu", bucket,
                     static_cast<unsigned long long>(h.CountAt(bucket)),
                     static_cast<unsigned long long>(h.BytesAt(bucket)));
  }
  return out;
}

Status ParseHistogramFields(std::istringstream& in, ExponentialHistogram* h) {
  std::string field;
  while (in >> field) {
    if (field == ";") {
      return Status::Ok();
    }
    int bucket = 0;
    unsigned long long count = 0, bytes = 0;
    if (std::sscanf(field.c_str(), "%d:%llu:%llu", &bucket, &count, &bytes) != 3) {
      return InvalidArgumentError("malformed histogram field: " + field);
    }
    h->AddBucket(bucket, count, bytes);
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeProfile(const IccProfile& profile) {
  std::string out = kMagic;
  out += "\n";
  for (ClassificationId id : profile.SortedClassificationIds()) {
    const ClassificationInfo* info = profile.FindClassification(id);
    out += StrFormat("classification %u %s %u %llu %s\n", info->id,
                     info->clsid.ToString().c_str(), info->api_usage,
                     static_cast<unsigned long long>(info->instance_count),
                     info->class_name.c_str());
    if (info->allocation_bytes > 0) {
      out += StrFormat("alloc %u %llu\n", id,
                       static_cast<unsigned long long>(info->allocation_bytes));
    }
    const double compute = profile.ComputeSecondsOf(id);
    if (compute > 0.0) {
      out += StrFormat("compute %u %.9e\n", id, compute);
    }
  }
  for (const auto& [key, summary] : profile.calls()) {
    out += StrFormat("call %u %u %s %u %llu req%s ; rep%s ;\n", key.src, key.dst,
                     key.iid.ToString().c_str(), key.method,
                     static_cast<unsigned long long>(summary.non_remotable_calls),
                     HistogramFields(summary.requests).c_str(),
                     HistogramFields(summary.replies).c_str());
  }
  return out;
}

Result<IccProfile> ParseProfile(const std::string& text) {
  IccProfile profile;
  std::istringstream lines(text);
  std::string line;
  if (!std::getline(lines, line) || line != kMagic) {
    return InvalidArgumentError("missing profile magic header");
  }
  while (std::getline(lines, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream in(line);
    std::string keyword;
    in >> keyword;
    if (keyword == "classification") {
      ClassificationInfo info;
      std::string guid_text;
      unsigned long long count = 0;
      in >> info.id >> guid_text >> info.api_usage >> count;
      info.instance_count = count;
      std::getline(in, info.class_name);
      if (!info.class_name.empty() && info.class_name.front() == ' ') {
        info.class_name.erase(0, 1);
      }
      Result<Guid> clsid = Guid::Parse(guid_text);
      if (!clsid.ok()) {
        return clsid.status();
      }
      info.clsid = *clsid;
      profile.RecordClassification(info);
    } else if (keyword == "alloc") {
      ClassificationId id = kNoClassification;
      unsigned long long bytes = 0;
      in >> id >> bytes;
      profile.RecordAllocation(id, bytes);
    } else if (keyword == "compute") {
      ClassificationId id = kNoClassification;
      double seconds = 0.0;
      in >> id >> seconds;
      profile.RecordCompute(id, seconds);
    } else if (keyword == "call") {
      CallKey key;
      std::string guid_text, marker;
      unsigned long long non_remotable = 0;
      in >> key.src >> key.dst >> guid_text >> key.method >> non_remotable;
      Result<Guid> iid = Guid::Parse(guid_text);
      if (!iid.ok()) {
        return iid.status();
      }
      key.iid = *iid;
      in >> marker;
      if (marker != "req") {
        return InvalidArgumentError("expected 'req' marker");
      }
      ExponentialHistogram requests, replies;
      COIGN_RETURN_IF_ERROR(ParseHistogramFields(in, &requests));
      in >> marker;
      if (marker != "rep") {
        return InvalidArgumentError("expected 'rep' marker");
      }
      COIGN_RETURN_IF_ERROR(ParseHistogramFields(in, &replies));
      profile.InjectCallSummary(key, requests, replies, non_remotable);
    } else {
      return InvalidArgumentError("unknown profile keyword: " + keyword);
    }
  }
  return profile;
}

Status WriteProfileFile(const IccProfile& profile, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("cannot open profile file for writing: " + path);
  }
  out << SerializeProfile(profile);
  if (!out.good()) {
    return InternalError("short write to profile file: " + path);
  }
  return Status::Ok();
}

Result<IccProfile> ReadProfileFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open profile file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseProfile(buffer.str());
}

Result<IccProfile> MergeProfileFiles(const std::vector<std::string>& paths) {
  IccProfile merged;
  for (const std::string& path : paths) {
    Result<IccProfile> one = ReadProfileFile(path);
    if (!one.ok()) {
      return one.status();
    }
    merged.Merge(*one);
  }
  return merged;
}

}  // namespace coign
