#include "src/profile/icc_profile.h"

#include <algorithm>

namespace coign {

void IccProfile::RecordClassification(const ClassificationInfo& info) {
  auto it = classifications_.find(info.id);
  if (it == classifications_.end()) {
    classifications_.emplace(info.id, info);
    return;
  }
  // Merging metadata for a known classification: instance counts and
  // allocation bytes add, API usage unions (a property of the class, so
  // normally identical).
  it->second.api_usage |= info.api_usage;
  it->second.instance_count += info.instance_count;
  it->second.allocation_bytes += info.allocation_bytes;
}

uint64_t ProfiledStateBytes(const ClassificationInfo* info, uint64_t fallback) {
  if (info == nullptr || info->allocation_bytes == 0 || info->instance_count == 0) {
    return fallback;
  }
  return std::max<uint64_t>(1, info->allocation_bytes / info->instance_count);
}

void IccProfile::RecordInstantiation(ClassificationId id) {
  auto it = classifications_.find(id);
  if (it != classifications_.end()) {
    it->second.instance_count += 1;
  }
}

void IccProfile::RecordCall(const CallKey& key, uint64_t request_bytes, uint64_t reply_bytes,
                            bool remotable) {
  CallSummary& summary = calls_[key];
  summary.requests.Add(request_bytes);
  summary.replies.Add(reply_bytes);
  if (!remotable) {
    summary.non_remotable_calls += 1;
  }
  total_calls_ += 1;
  total_bytes_ += request_bytes + reply_bytes;
}

void IccProfile::InjectCallSummary(const CallKey& key, const ExponentialHistogram& requests,
                                   const ExponentialHistogram& replies,
                                   uint64_t non_remotable_calls) {
  CallSummary& summary = calls_[key];
  summary.requests.Merge(requests);
  summary.replies.Merge(replies);
  summary.non_remotable_calls += non_remotable_calls;
  total_calls_ += requests.total_count();
  total_bytes_ += requests.total_bytes() + replies.total_bytes();
}

void IccProfile::RecordAllocation(ClassificationId id, uint64_t bytes) {
  auto it = classifications_.find(id);
  if (it != classifications_.end()) {
    it->second.allocation_bytes += bytes;
  }
}

void IccProfile::RecordCompute(ClassificationId id, double seconds) {
  compute_seconds_[id] += seconds;
  total_compute_seconds_ += seconds;
}

const ClassificationInfo* IccProfile::FindClassification(ClassificationId id) const {
  auto it = classifications_.find(id);
  return it == classifications_.end() ? nullptr : &it->second;
}

double IccProfile::ComputeSecondsOf(ClassificationId id) const {
  auto it = compute_seconds_.find(id);
  return it == compute_seconds_.end() ? 0.0 : it->second;
}

std::vector<ClassificationId> IccProfile::SortedClassificationIds() const {
  std::vector<ClassificationId> ids;
  ids.reserve(classifications_.size());
  for (const auto& [id, info] : classifications_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void IccProfile::Merge(const IccProfile& other) {
  for (const auto& [id, info] : other.classifications_) {
    RecordClassification(info);
  }
  for (const auto& [key, summary] : other.calls_) {
    CallSummary& mine = calls_[key];
    mine.requests.Merge(summary.requests);
    mine.replies.Merge(summary.replies);
    mine.non_remotable_calls += summary.non_remotable_calls;
  }
  for (const auto& [id, seconds] : other.compute_seconds_) {
    compute_seconds_[id] += seconds;
  }
  total_compute_seconds_ += other.total_compute_seconds_;
  total_calls_ += other.total_calls_;
  total_bytes_ += other.total_bytes_;
}

}  // namespace coign
