// The inter-component communication (ICC) profile — what scenario-based
// profiling produces and the analysis engine consumes.
//
// Communication is summarized per (source classification, destination
// classification, interface, method) into exponential size-range histograms
// (paper §3.3), keeping the profile network-independent and bounded in
// size. Per-classification metadata (class, API usage, instance counts)
// feeds the constraint system. Profiles from multiple scenario executions
// merge associatively.

#ifndef COIGN_SRC_PROFILE_ICC_PROFILE_H_
#define COIGN_SRC_PROFILE_ICC_PROFILE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/classify/descriptor.h"
#include "src/com/types.h"
#include "src/support/histogram.h"
#include "src/support/status.h"

namespace coign {

struct ClassificationInfo {
  ClassificationId id = kNoClassification;
  ClassId clsid;
  std::string class_name;
  uint32_t api_usage = 0;       // ApiUsage bitmask of the class.
  uint64_t instance_count = 0;  // Instances seen across profiled executions.
  // State bytes components of this classification allocated across
  // profiled executions (ChargeAllocation during scenarios). Divided by
  // instance_count it yields the mean serialized-state estimate migration
  // pricing uses in place of the flat per-instance constant.
  uint64_t allocation_bytes = 0;
};

// Mean per-instance profiled state size of a classification, or `fallback`
// for classifications never profiled (or never observed allocating).
// Shared by the repartition policy (pricing a prospective migration) and
// the live migrator (billing the actual copies) so both sides of the
// rent-or-buy rule price the same bytes.
uint64_t ProfiledStateBytes(const ClassificationInfo* info, uint64_t fallback);

// Histogram pair for one (src, dst, iid, method) key.
struct CallSummary {
  ExponentialHistogram requests;
  ExponentialHistogram replies;
  uint64_t non_remotable_calls = 0;

  uint64_t call_count() const { return requests.total_count(); }
  uint64_t total_bytes() const { return requests.total_bytes() + replies.total_bytes(); }
};

struct CallKey {
  ClassificationId src = kNoClassification;  // kNoClassification = driver.
  ClassificationId dst = kNoClassification;
  InterfaceId iid;
  MethodIndex method = 0;

  friend bool operator==(const CallKey&, const CallKey&) = default;
};

struct CallKeyHash {
  size_t operator()(const CallKey& k) const {
    uint64_t h = k.src;
    h = h * 0x9e3779b97f4a7c15ull + k.dst;
    h = h * 0x9e3779b97f4a7c15ull + k.iid.hi;
    h = h * 0x9e3779b97f4a7c15ull + k.iid.lo;
    h = h * 0x9e3779b97f4a7c15ull + k.method;
    return static_cast<size_t>(h);
  }
};

class IccProfile {
 public:
  // --- Recording (profiling logger side) ----------------------------------

  void RecordClassification(const ClassificationInfo& info);
  void RecordInstantiation(ClassificationId id);
  void RecordCall(const CallKey& key, uint64_t request_bytes, uint64_t reply_bytes,
                  bool remotable);
  // Local compute observed during profiling, attributed to the callee
  // classification; feeds the execution-time prediction model.
  void RecordCompute(ClassificationId id, double seconds);
  // Component state allocation observed during profiling, attributed to
  // the allocating classification; feeds migration state-size estimates.
  // No-op for unknown classifications (mirrors RecordInstantiation).
  void RecordAllocation(ClassificationId id, uint64_t bytes);
  // Injects pre-summarized histograms for a key (profile log loading).
  void InjectCallSummary(const CallKey& key, const ExponentialHistogram& requests,
                         const ExponentialHistogram& replies, uint64_t non_remotable_calls);

  // --- Queries (analysis side) ---------------------------------------------

  const std::unordered_map<CallKey, CallSummary, CallKeyHash>& calls() const { return calls_; }
  const std::unordered_map<ClassificationId, ClassificationInfo>& classifications() const {
    return classifications_;
  }
  const ClassificationInfo* FindClassification(ClassificationId id) const;

  double total_compute_seconds() const { return total_compute_seconds_; }
  double ComputeSecondsOf(ClassificationId id) const;

  uint64_t total_calls() const { return total_calls_; }
  uint64_t total_bytes() const { return total_bytes_; }

  // Classifications sorted by id, for deterministic iteration.
  std::vector<ClassificationId> SortedClassificationIds() const;

  // --- Combination ----------------------------------------------------------

  // "Log files from multiple profiling scenarios may be combined and
  // summarized during later analysis."
  void Merge(const IccProfile& other);

  bool empty() const { return calls_.empty() && classifications_.empty(); }

 private:
  std::unordered_map<CallKey, CallSummary, CallKeyHash> calls_;
  std::unordered_map<ClassificationId, ClassificationInfo> classifications_;
  std::unordered_map<ClassificationId, double> compute_seconds_;
  double total_compute_seconds_ = 0.0;
  uint64_t total_calls_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_PROFILE_ICC_PROFILE_H_
