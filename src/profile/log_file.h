// Profile log files.
//
// "At the end of a profiling execution, Coign writes the inter-component
// communication profiles to a file for later analysis ... Log files from
// multiple profiling scenarios may be combined and summarized during later
// analysis." (paper §2)
//
// A line-oriented text format; loads merge naturally because IccProfile
// merges associatively.

#ifndef COIGN_SRC_PROFILE_LOG_FILE_H_
#define COIGN_SRC_PROFILE_LOG_FILE_H_

#include <string>

#include "src/profile/icc_profile.h"
#include "src/support/status.h"

namespace coign {

// Serializes a profile to the log format.
std::string SerializeProfile(const IccProfile& profile);

// Parses a serialized profile.
Result<IccProfile> ParseProfile(const std::string& text);

// File convenience wrappers.
Status WriteProfileFile(const IccProfile& profile, const std::string& path);
Result<IccProfile> ReadProfileFile(const std::string& path);

// Loads every path and merges them into one profile.
Result<IccProfile> MergeProfileFiles(const std::vector<std::string>& paths);

}  // namespace coign

#endif  // COIGN_SRC_PROFILE_LOG_FILE_H_
