// Deterministic span tracer with flight-recorder retention.
//
// Every timestamp comes from a caller-supplied clock — the simulation's
// modeled execution clock for online runs, a logical sequence clock when no
// clock is attached (fleet planning has no simulated time) — never from wall
// time. Same seed therefore means byte-identical exported traces, which is
// what lets CI diff two runs and what makes a trace attachable to a bug
// report as a reproducible artifact.
//
// Retention is a fixed-capacity ring: when full, the oldest event is
// evicted and counted, so tracing an arbitrarily long run costs bounded
// memory and the tail — the part that explains a quarantine or an abandoned
// migration — is always what survives. Export is Chrome trace_event JSON
// (load in chrome://tracing or Perfetto).

#ifndef COIGN_SRC_OBS_TRACE_H_
#define COIGN_SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace coign {

// One recorded event. `args` values are pre-rendered JSON fragments
// (numbers or quoted strings), formatted deterministically at record time.
struct TraceEvent {
  enum class Phase {
    kComplete,  // Span with start + duration ("X").
    kInstant,   // Point event ("i").
    kCounter,   // Sampled value ("C").
  };

  Phase phase = Phase::kInstant;
  std::string name;
  std::string category;
  int track = 0;               // Rendered as the Chrome tid.
  double start_seconds = 0.0;  // Simulated/logical seconds.
  double duration_seconds = 0.0;  // Complete events only.
  uint64_t seq = 0;            // Monotonic record index; stable tiebreak.
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  using ClockFn = std::function<double()>;

  explicit Tracer(size_t capacity = kDefaultCapacity);

  // Timestamp source in simulated seconds. With no clock (or after
  // SetClock(nullptr)) the tracer falls back to a logical clock: each call
  // to Now() returns the next tick, scaled so one tick exports as 1us.
  void SetClock(ClockFn clock);

  // Current time: clock() if attached, else the next logical tick.
  double Now();

  void Instant(std::string name, std::string category, int track,
               std::vector<std::pair<std::string, std::string>> args = {});
  void Counter(std::string name, int track, double value);
  // Counter sample at an explicit timestamp, so a batch of series sampled
  // together shares one timestamp column instead of consuming one logical
  // tick each.
  void CounterAt(std::string name, int track, double start_seconds, double value);
  void Complete(std::string name, std::string category, int track,
                double start_seconds, double end_seconds,
                std::vector<std::pair<std::string, std::string>> args = {});

  // Deterministic arg-value renderers (valid JSON fragments).
  static std::string ArgString(std::string_view value);
  static std::string ArgDouble(double value);
  static std::string ArgInt(int64_t value);
  static std::string ArgUint(uint64_t value);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t recorded() const;  // Total events ever recorded.
  uint64_t dropped() const;   // Events evicted by the ring.

  // Events currently retained, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  // Chrome trace_event JSON ("ts"/"dur" in microseconds). Byte-stable for
  // identical event sequences.
  std::string ExportChromeTrace() const;
  Status WriteChromeTrace(const std::string& path) const;

  void Clear();

 private:
  static constexpr size_t kDefaultCapacity = 8192;

  void Record(TraceEvent event);

  mutable std::mutex mutex_;
  size_t capacity_;
  ClockFn clock_;
  uint64_t logical_ticks_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
  std::deque<TraceEvent> ring_;
};

// RAII span: records the start time at construction and emits one complete
// event at End() (or destruction). Args added before End() are attached.
class TraceSpan {
 public:
  // `tracer` may be null: every operation becomes a no-op, so call sites
  // need no "is tracing on" branches.
  TraceSpan(Tracer* tracer, std::string name, std::string category, int track);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void AddArg(std::string key, std::string_view value);
  void AddArg(std::string key, double value);
  void AddArg(std::string key, uint64_t value);

  // Ends the span `extra_seconds` past the current clock — used when the
  // modeled duration is known but the clock only advances after the caller
  // returns (e.g. transport round trips billed by the accountant).
  void End(double extra_seconds = 0.0);

 private:
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  int track_;
  double start_seconds_ = 0.0;
  bool ended_;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace coign

#endif  // COIGN_SRC_OBS_TRACE_H_
