#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "src/support/str_util.h"

namespace coign {

namespace {

// Fixed numeric rendering shared by both snapshot formats; part of the
// byte-stability contract.
std::string Num(double value) { return StrFormat("%.9g", value); }

std::string U64(uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

}  // namespace

MetricHistogram::MetricHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

size_t MetricHistogram::BucketFor(double value) const {
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void MetricHistogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[BucketFor(value)];
  ++count_;
  sum_ += value;
}

uint64_t MetricHistogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double MetricHistogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

uint64_t MetricHistogram::CountAt(size_t bucket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bucket < counts_.size() ? counts_[bucket] : 0;
}

double MetricHistogram::UpperBoundAt(size_t bucket) const {
  return bucket < bounds_.size() ? bounds_[bucket]
                                 : std::numeric_limits<double>::infinity();
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<MetricCounter>();
  }
  return slot.get();
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<MetricGauge>();
  }
  return slot.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(
    const std::string& name, std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<MetricHistogram>(std::move(upper_bounds));
  }
  return slot.get();
}

std::vector<std::pair<std::string, double>> MetricsRegistry::NumericSamples()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> samples;
  samples.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, counter] : counters_) {
    samples.emplace_back(name, static_cast<double>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    samples.emplace_back(name, gauge->value());
  }
  return samples;
}

std::string MetricsRegistry::SnapshotText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "# coign-metrics v1\n";
  for (const auto& [name, counter] : counters_) {
    out += "counter " + name + " " + U64(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "gauge " + name + " " + Num(gauge->value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out += "histogram " + name + " count " + U64(hist->count()) + " sum " +
           Num(hist->sum());
    for (size_t b = 0; b < hist->bucket_count(); ++b) {
      const double bound = hist->UpperBoundAt(b);
      out += " le ";
      out += std::isinf(bound) ? "+inf" : Num(bound);
      out += " " + U64(hist->CountAt(b));
    }
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"version\":\"coign-metrics v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + U64(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + Num(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + U64(hist->count()) +
           ",\"sum\":" + Num(hist->sum()) + ",\"buckets\":[";
    for (size_t b = 0; b < hist->bucket_count(); ++b) {
      if (b > 0) out += ",";
      const double bound = hist->UpperBoundAt(b);
      out += "{\"le\":";
      out += std::isinf(bound) ? "\"+inf\"" : Num(bound);
      out += ",\"count\":" + U64(hist->CountAt(b)) + "}";
    }
    out += "]}";
  }
  out += "}}\n";
  return out;
}

Status MetricsRegistry::WriteText(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("metrics: cannot open for write: " + path);
  }
  out << SnapshotText();
  out.flush();
  if (!out) {
    return InternalError("metrics: write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace coign
