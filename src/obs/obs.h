// Observability facade: one object bundling the tracer and the metrics
// registry, threaded by pointer through the subsystems a run wants
// instrumented. A null Observability* (the default everywhere) means the
// instrumented code paths cost one pointer compare — tracing is strictly
// opt-in per Transport/Repartitioner/Service instance, which also keeps
// untraced fleet workers free of shared-state contention.
//
// The facade also owns the flight-recorder dump policy: subsystems call
// Dump(reason) at moments worth a post-mortem (quarantine entry, migration
// abandonment) and, when a dump prefix is configured, the current ring
// contents are written to "<prefix>-<n>-<reason>.json". Dumps are capped so
// a flapping fault schedule cannot flood the disk.

#ifndef COIGN_SRC_OBS_OBS_H_
#define COIGN_SRC_OBS_OBS_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace coign {

// Chrome "tid" lanes, one per instrumented subsystem, so exported traces
// group events by layer.
inline constexpr int kTrackTransport = 1;
inline constexpr int kTrackFault = 2;
inline constexpr int kTrackOnline = 3;
inline constexpr int kTrackMigration = 4;
inline constexpr int kTrackFleet = 5;
// Periodic counter samples ("C" events): one lane for every metric series,
// so viewers plot them as stacked value graphs under the span tracks.
inline constexpr int kTrackCounters = 6;

class Observability {
 public:
  explicit Observability(size_t trace_capacity = 8192)
      : tracer_(trace_capacity) {}

  Tracer& tracer() { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }

  // Enables flight-recorder dumps; empty prefix (the default) disables
  // them while Dump() still counts occurrences.
  void SetDumpPrefix(std::string prefix) { dump_prefix_ = std::move(prefix); }
  void SetDumpLimit(int limit) { dump_limit_ = limit; }

  // Samples every counter and gauge onto the kTrackCounters trace lane as
  // one "C" event per series at the current trace clock. Call at periodic
  // boundaries (the online loop samples per epoch) to get value-over-time
  // graphs next to the spans. Deterministic: emission order is the
  // registry's sorted order, timestamps come from the trace clock.
  void SampleCounters();

  // Snapshots the ring to "<prefix>-<n>-<reason>.json" and records the
  // occurrence as the "obs.dumps" counter plus an instant event.
  void Dump(const std::string& reason);
  int dumps_written() const { return dumps_written_; }

  Status WriteTrace(const std::string& path) const {
    return tracer_.WriteChromeTrace(path);
  }
  Status WriteMetrics(const std::string& path) const {
    return metrics_.WriteText(path);
  }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
  std::string dump_prefix_;
  int dump_limit_ = 8;
  int dumps_written_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_OBS_OBS_H_
