#include "src/obs/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/support/str_util.h"

namespace coign {

namespace {

constexpr double kLogicalTickSeconds = 1e-6;  // One tick exports as 1us.

// JSON string escaping for names/categories/keys. Event names here are
// ASCII identifiers; anything unexpected is escaped numerically.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Microseconds(double seconds) {
  // Fixed precision: 3 decimals of a microsecond (nanosecond grid). The
  // format is part of the determinism contract — same doubles, same bytes.
  return StrFormat("%.3f", seconds * 1e6);
}

void AppendArgs(const std::vector<std::pair<std::string, std::string>>& args,
                std::string* out) {
  if (args.empty()) {
    return;
  }
  out->append(",\"args\":{");
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) {
      out->push_back(',');
    }
    out->push_back('"');
    out->append(JsonEscape(args[i].first));
    out->append("\":");
    out->append(args[i].second);
  }
  out->push_back('}');
}

}  // namespace

Tracer::Tracer(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

void Tracer::SetClock(ClockFn clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

double Tracer::Now() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (clock_) {
    return clock_();
  }
  return kLogicalTickSeconds * static_cast<double>(logical_ticks_++);
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.seq = next_seq_++;
  ring_.push_back(std::move(event));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

void Tracer::Instant(std::string name, std::string category, int track,
                     std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = track;
  event.start_seconds = Now();
  event.args = std::move(args);
  Record(std::move(event));
}

void Tracer::Counter(std::string name, int track, double value) {
  CounterAt(std::move(name), track, Now(), value);
}

void Tracer::CounterAt(std::string name, int track, double start_seconds,
                       double value) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kCounter;
  event.name = std::move(name);
  event.track = track;
  event.start_seconds = start_seconds;
  event.args.emplace_back("value", ArgDouble(value));
  Record(std::move(event));
}

void Tracer::Complete(std::string name, std::string category, int track,
                      double start_seconds, double end_seconds,
                      std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = track;
  event.start_seconds = start_seconds;
  event.duration_seconds = std::max(0.0, end_seconds - start_seconds);
  event.args = std::move(args);
  Record(std::move(event));
}

std::string Tracer::ArgString(std::string_view value) {
  return "\"" + JsonEscape(value) + "\"";
}

std::string Tracer::ArgDouble(double value) { return StrFormat("%.9g", value); }

std::string Tracer::ArgInt(int64_t value) {
  return StrFormat("%lld", static_cast<long long>(value));
}

std::string Tracer::ArgUint(uint64_t value) {
  return StrFormat("%llu", static_cast<unsigned long long>(value));
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<TraceEvent>(ring_.begin(), ring_.end());
}

std::string Tracer::ExportChromeTrace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(128 + ring_.size() * 96);
  out.append("{\"traceEvents\":[\n");
  bool first = true;
  for (const TraceEvent& event : ring_) {
    if (!first) {
      out.append(",\n");
    }
    first = false;
    out.push_back('{');
    out.append("\"name\":\"");
    out.append(JsonEscape(event.name));
    out.append("\"");
    if (!event.category.empty()) {
      out.append(",\"cat\":\"");
      out.append(JsonEscape(event.category));
      out.append("\"");
    }
    switch (event.phase) {
      case TraceEvent::Phase::kComplete:
        out.append(",\"ph\":\"X\",\"ts\":");
        out.append(Microseconds(event.start_seconds));
        out.append(",\"dur\":");
        out.append(Microseconds(event.duration_seconds));
        break;
      case TraceEvent::Phase::kInstant:
        out.append(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        out.append(Microseconds(event.start_seconds));
        break;
      case TraceEvent::Phase::kCounter:
        out.append(",\"ph\":\"C\",\"ts\":");
        out.append(Microseconds(event.start_seconds));
        break;
    }
    out.append(StrFormat(",\"pid\":1,\"tid\":%d", event.track));
    AppendArgs(event.args, &out);
    out.push_back('}');
  }
  out.append("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
  out.append(StrFormat("\"clock\":\"%s\"", clock_ ? "sim" : "logical"));
  out.append(StrFormat(",\"recorded\":\"%llu\",\"dropped\":\"%llu\"",
                       static_cast<unsigned long long>(next_seq_),
                       static_cast<unsigned long long>(dropped_)));
  out.append("}}\n");
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("trace: cannot open for write: " + path);
  }
  out << ExportChromeTrace();
  out.flush();
  if (!out) {
    return InternalError("trace: write failed: " + path);
  }
  return Status::Ok();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  logical_ticks_ = 0;
  next_seq_ = 0;
  dropped_ = 0;
}

TraceSpan::TraceSpan(Tracer* tracer, std::string name, std::string category,
                     int track)
    : tracer_(tracer),
      name_(std::move(name)),
      category_(std::move(category)),
      track_(track),
      ended_(tracer == nullptr) {
  if (tracer_ != nullptr) {
    start_seconds_ = tracer_->Now();
  }
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::AddArg(std::string key, std::string_view value) {
  if (!ended_) {
    args_.emplace_back(std::move(key), Tracer::ArgString(value));
  }
}

void TraceSpan::AddArg(std::string key, double value) {
  if (!ended_) {
    args_.emplace_back(std::move(key), Tracer::ArgDouble(value));
  }
}

void TraceSpan::AddArg(std::string key, uint64_t value) {
  if (!ended_) {
    args_.emplace_back(std::move(key), Tracer::ArgUint(value));
  }
}

void TraceSpan::End(double extra_seconds) {
  if (ended_) {
    return;
  }
  ended_ = true;
  const double end = std::max(start_seconds_, tracer_->Now() + extra_seconds);
  tracer_->Complete(std::move(name_), std::move(category_), track_,
                    start_seconds_, end, std::move(args_));
}

}  // namespace coign
