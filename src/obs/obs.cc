#include "src/obs/obs.h"

#include "src/support/log.h"
#include "src/support/str_util.h"

namespace coign {

void Observability::SampleCounters() {
  // One clock reading for the whole sample so every series aligns on the
  // same timestamp column in the viewer.
  const double now = tracer_.Now();
  for (const auto& [name, value] : metrics_.NumericSamples()) {
    tracer_.CounterAt(name, kTrackCounters, now, value);
  }
}

void Observability::Dump(const std::string& reason) {
  metrics_.GetCounter("obs.dumps")->Add();
  tracer_.Instant("flight-recorder-dump", "obs", kTrackOnline,
                  {{"reason", Tracer::ArgString(reason)}});
  if (dump_prefix_.empty() || dumps_written_ >= dump_limit_) {
    return;
  }
  const std::string path =
      StrFormat("%s-%d-%s.json", dump_prefix_.c_str(), dumps_written_,
                reason.c_str());
  const Status status = tracer_.WriteChromeTrace(path);
  if (status.ok()) {
    ++dumps_written_;
  } else {
    COIGN_LOG(kWarning, "flight-recorder dump failed: %s",
              status.ToString().c_str());
  }
}

}  // namespace coign
