// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with a byte-stable snapshot format.
//
// Determinism contract: a snapshot is a pure function of the sequence of
// metric updates — names are emitted in sorted order and every number is
// formatted with a fixed printf spec — so two same-seed runs produce
// byte-identical snapshots, which CI diffs directly.
//
// Instruments are created on first use and live as long as the registry;
// the returned pointers are stable, so hot paths look a metric up once and
// update it lock-free (counters and gauges are atomics).
//
// FixedHistogram is the observability histogram — explicit, caller-chosen
// bucket bounds for dashboards/snapshots. It is deliberately distinct from
// support/histogram.h's ExponentialHistogram, which is the paper's
// profiling-logger structure with its own serialization.

#ifndef COIGN_SRC_OBS_METRICS_H_
#define COIGN_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace coign {

class MetricCounter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class MetricGauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Histogram over explicit upper bounds. A sample lands in the first bucket
// whose upper bound is >= the sample (bounds are inclusive, Prometheus
// "le" semantics); samples above every bound land in the implicit
// overflow bucket. bucket_count() == bounds.size() + 1.
class MetricHistogram {
 public:
  explicit MetricHistogram(std::vector<double> upper_bounds);

  void Observe(double value);

  // First bucket index whose range contains `value`.
  size_t BucketFor(double value) const;

  uint64_t count() const;
  double sum() const;
  size_t bucket_count() const { return counts_.size(); }
  uint64_t CountAt(size_t bucket) const;
  // Upper bound of a bucket; the final (overflow) bucket has no bound.
  double UpperBoundAt(size_t bucket) const;
  const std::vector<double>& upper_bounds() const { return bounds_; }

 private:
  mutable std::mutex mutex_;
  std::vector<double> bounds_;  // Sorted ascending, deduplicated.
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 (overflow last).
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  // First call with a name creates the instrument; later calls return the
  // same pointer. Histogram bounds are fixed by the first call; a second
  // call with different bounds still returns the original instrument.
  MetricCounter* GetCounter(const std::string& name);
  MetricGauge* GetGauge(const std::string& name);
  MetricHistogram* GetHistogram(const std::string& name,
                                std::vector<double> upper_bounds);

  // Current counter and gauge values as (name, value) pairs — counters
  // first, then gauges, each group name-sorted. Feeds the tracer's
  // periodic counter-sample track; histograms are excluded (a histogram
  // has no single number a counter track could plot).
  std::vector<std::pair<std::string, double>> NumericSamples() const;

  // Stable text snapshot: "# coign-metrics v1" header, then one line per
  // instrument, grouped counter/gauge/histogram, each group name-sorted.
  std::string SnapshotText() const;
  // The same data as a JSON object.
  std::string SnapshotJson() const;

  Status WriteText(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
};

}  // namespace coign

#endif  // COIGN_SRC_OBS_METRICS_H_
