#include "src/online/repartitioner.h"

#include <cassert>

#include "src/support/log.h"
#include "src/support/str_util.h"

namespace coign {

std::string OnlineStats::ToString() const {
  std::string out = StrFormat(
      "online{epochs=%llu, drift=%llu, evals=%llu, repartitions=%llu (lazy %llu), "
      "hysteresis_rej=%llu, cost_rej=%llu, moved=%llu, migration_bytes=%llu, "
      "migration_s=%.4f, fault_episodes=%llu, quarantined=%llu, slowdown=%.2fx",
      static_cast<unsigned long long>(epochs), static_cast<unsigned long long>(drift_flags),
      static_cast<unsigned long long>(evaluations),
      static_cast<unsigned long long>(repartitions),
      static_cast<unsigned long long>(lazy_adoptions),
      static_cast<unsigned long long>(hysteresis_rejections),
      static_cast<unsigned long long>(cost_rejections),
      static_cast<unsigned long long>(instances_moved),
      static_cast<unsigned long long>(migration_bytes), migration_seconds,
      static_cast<unsigned long long>(fault_episodes),
      static_cast<unsigned long long>(quarantined_epochs), live_slowdown);
  if (interrupted_migrations > 0 || migration_resumes > 0 || migration_rollbacks > 0 ||
      migration_wasted_bytes > 0 || duplicates_suppressed > 0) {
    out += StrFormat(
        ", interrupted=%llu, resumes=%llu, rollbacks=%llu, wasted=%lluB, dedup=%llu",
        static_cast<unsigned long long>(interrupted_migrations),
        static_cast<unsigned long long>(migration_resumes),
        static_cast<unsigned long long>(migration_rollbacks),
        static_cast<unsigned long long>(migration_wasted_bytes),
        static_cast<unsigned long long>(duplicates_suppressed));
  }
  out += "}";
  return out;
}

OnlineRepartitioner::OnlineRepartitioner(ObjectSystem* system, CoignRuntime* runtime,
                                         const IccProfile& base_profile,
                                         NetworkProfile network, OnlineOptions options)
    : system_(system),
      runtime_(runtime),
      base_profile_(base_profile),
      network_(std::move(network)),
      options_(options),
      window_(options.window),
      policy_(options.policy, options.analysis),
      episode_detector_(options.quarantine) {
  assert(system_ != nullptr && runtime_ != nullptr);
  system_->AddInterceptor(this);
}

OnlineRepartitioner::~OnlineRepartitioner() { system_->RemoveInterceptor(this); }

void OnlineRepartitioner::SetTransportProbe(TransportProbeFn probe) {
  probe_ = std::move(probe);
  if (probe_) {
    estimator_ = std::make_unique<LiveNetworkEstimator>(
        network_, options_.quarantine.estimator_alpha);
    call_health_ = probe_();
    epoch_health_ = call_health_;
  } else {
    estimator_.reset();
  }
}

ClassificationId OnlineRepartitioner::ClassificationOf(InstanceId instance) const {
  const Result<ClassificationId> classification =
      runtime_->classifier().ClassificationOf(instance);
  return classification.ok() ? *classification : kNoClassification;
}

LiveMigrator OnlineRepartitioner::MakeJournaledMigrator() const {
  MigrationOptions options;
  options.state_bytes_per_instance = options_.policy.state_bytes_per_instance;
  options.ack_bytes = options_.migration_ack_bytes;
  options.copy_attempts_per_instance = options_.migration_copy_attempts;
  LiveMigrator migrator(options, [this](InstanceId id) { return ClassificationOf(id); });
  if (crash_gate_) {
    migrator.SetCrashGate(crash_gate_);
  }
  return migrator;
}

void OnlineRepartitioner::AbsorbMigrationReport(const MigrationReport& report) {
  stats_.instances_moved += report.instances_moved;
  stats_.migration_bytes += report.bytes_transferred;
  stats_.migration_seconds += report.seconds;
  stats_.migration_wasted_bytes += report.wasted_bytes;
  stats_.duplicates_suppressed += report.duplicates_suppressed;
  if (report.interrupted) {
    ++stats_.interrupted_migrations;
  }
  if (charge_) {
    // Committed state plus every retransmitted/abandoned copy went over
    // the wire; the run pays for all of it.
    charge_(report.bytes_transferred + report.wasted_bytes, report.seconds);
  }
}

Status OnlineRepartitioner::ResumePendingMigration() {
  PendingMigration& pending = *pending_;
  ++pending.resumes;
  ++stats_.migration_resumes;
  // Crash recovery from the journal: redo committed flips, roll in-flight
  // copies back. After this every journaled instance has one home again,
  // and the journal is checkpointed (cleared) for the re-attempt.
  Result<RecoveryReport> recovered = LiveMigrator::Recover(*system_, pending.journal);
  if (!recovered.ok()) {
    return recovered.status();
  }
  stats_.migration_rollbacks += recovered->instances_rolled_back;
  stats_.migration_wasted_bytes += recovered->wasted_bytes;
  pending.journal.Clear();
  if (pending.resumes > options_.max_migration_resumes) {
    // Give up: residency is consistent, stragglers rent the old placement
    // at their source until the next accepted repartition moves them.
    pending_.reset();
    cooldown_remaining_ = options_.cooldown_epochs;
    return Status::Ok();
  }
  // Re-attempt toward the already-adopted distribution. Rolled-back
  // stragglers still sit on the wrong machine, so the migrator naturally
  // picks exactly them up.
  LiveMigrator migrator = MakeJournaledMigrator();
  Result<MigrationReport> moved = migrator.Migrate(
      *system_, distribution(), pending.journal, *migration_transport_, migration_jitter_);
  if (!moved.ok()) {
    return moved.status();
  }
  AbsorbMigrationReport(*moved);
  if (moved->complete) {
    pending_.reset();
    cooldown_remaining_ = options_.cooldown_epochs;
  }
  return Status::Ok();
}

void OnlineRepartitioner::OnInstantiated(const ClassDesc& cls, InstanceId id,
                                         InstanceId creator) {
  (void)creator;
  // The classifier binds the classification before placement, so it is
  // already known here. Classifications the base profile covers need no
  // registration; the others are exactly the §6 case — usage the profiling
  // scenarios never saw — and the re-cut needs their metadata (clsid, name,
  // api_usage for constraint pinning) to place them deliberately.
  const ClassificationId classification = ClassificationOf(id);
  if (classification == kNoClassification ||
      base_profile_.FindClassification(classification) != nullptr) {
    return;
  }
  ClassificationInfo& info = live_registry_[classification];
  if (info.id == kNoClassification) {
    info.id = classification;
    info.clsid = cls.clsid;
    info.class_name = cls.name;
    info.api_usage = cls.api_usage;
  }
  ++info.instance_count;
}

void OnlineRepartitioner::OnCallEnd(const ObjectSystem::CallEvent& event,
                                    const Status& status) {
  if (!status.ok()) {
    return;  // Failed calls carry no communication.
  }
  CallKey key;
  key.src = ClassificationOf(event.caller);
  key.dst = ClassificationOf(event.target.instance);
  key.iid = event.target.iid;
  key.method = event.method;
  // The same cheap remotability check the profiling informer uses:
  // interface metadata plus an opaque-parameter scan of the live messages.
  bool remotable = true;
  const InterfaceDesc* iface = system_->interfaces().Lookup(event.target.iid);
  if (iface != nullptr && !iface->remotable) {
    remotable = false;
  }
  if (remotable && event.in != nullptr && event.in->ContainsOpaque()) {
    remotable = false;
  }
  if (remotable && event.out != nullptr && event.out->ContainsOpaque()) {
    remotable = false;
  }
  // With a transport probe, wire reality weights the window: a call the
  // hardened transport had to retry put that many extra round trips on the
  // wire, and the lightweight runtime counts messages, not intents. (Calls
  // are sequential in the simulator, so the probe delta is this call's.)
  uint64_t wire_calls = 1;
  if (probe_) {
    const TransportHealth now = probe_();
    wire_calls += now.retries - call_health_.retries;
    call_health_ = now;
  }
  window_.Record(key, wire_calls, remotable);
}

void OnlineRepartitioner::OnCompute(InstanceId instance, double seconds) {
  window_.RecordCompute(ClassificationOf(instance), seconds);
}

Status OnlineRepartitioner::EndEpoch() {
  ++stats_.epochs;
  ++epochs_since_evaluation_;

  // Fault-episode screening: an epoch whose transport visibly fought the
  // network (timeouts, exhausted budgets, spiked round trips) is not
  // evidence about the application. Quarantine discards it wholesale.
  if (probe_) {
    const TransportHealth now = probe_();
    const uint64_t epoch_calls = now.calls - epoch_health_.calls;
    const uint64_t epoch_faulted = now.faulted_calls - epoch_health_.faulted_calls;
    const uint64_t epoch_bytes = now.wire_bytes - epoch_health_.wire_bytes;
    const double epoch_latency =
        now.wire_latency_seconds - epoch_health_.wire_latency_seconds;
    const double epoch_payload =
        now.wire_payload_seconds - epoch_health_.wire_payload_seconds;
    epoch_health_ = now;
    call_health_ = now;
    if (options_.quarantine.enabled) {
      EpochHealthSample sample;
      sample.calls = epoch_calls;
      sample.faulted_calls = epoch_faulted;
      sample.wire_bytes = epoch_bytes;
      sample.latency_seconds = epoch_latency;
      sample.payload_seconds = epoch_payload;
      const FaultEpisodeDetector::Verdict verdict = episode_detector_.Observe(sample);
      if (verdict.episode != FaultEpisodeDetector::Trigger::kNone) {
        ++stats_.fault_episodes;
      }
      if (verdict.quarantine) {
        ++stats_.quarantined_epochs;
        window_.DiscardEpoch();
        return Status::Ok();
      }
    }
    if (estimator_ != nullptr) {
      estimator_->ObserveEpoch(epoch_calls, epoch_bytes, epoch_latency, epoch_payload);
      stats_.live_slowdown = estimator_->slowdown();
    }
  }

  window_.AdvanceEpoch();

  last_drift_ = DetectDrift(base_profile_, window_.WindowMessageCounts(), options_.drift);
  if (last_drift_.reprofile_recommended) {
    ++stats_.drift_flags;
  }

  // An interrupted migration owns the loop until it completes or is
  // abandoned: recover from its journal and re-attempt before any new
  // evaluation. (Quarantined epochs returned above — recovery waits for a
  // healthy wire rather than re-copying state into a fault episode.)
  if (pending_) {
    return ResumePendingMigration();
  }

  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    return Status::Ok();
  }
  const bool periodic = options_.epochs_per_recut > 0 &&
                        epochs_since_evaluation_ >= options_.epochs_per_recut;
  if (!last_drift_.reprofile_recommended && !periodic) {
    return Status::Ok();
  }

  // Live instance census: what an accepted cut would have to migrate.
  std::unordered_map<ClassificationId, uint64_t> live;
  for (const ObjectSystem::InstanceInfo& info : system_->LiveInstances()) {
    const ClassificationId classification = ClassificationOf(info.id);
    if (classification != kNoClassification) {
      ++live[classification];
    }
  }

  const IccProfile windowed = window_.WindowedProfile(base_profile_, live_registry_);
  // Cut pricing uses the live network estimate when one is maintained —
  // the adaptive loop reacting to measurements, which is precisely what
  // quarantine protects from fault-poisoned epochs.
  const NetworkProfile& pricing = estimator_ != nullptr ? estimator_->live() : network_;
  Result<RepartitionDecision> decision =
      policy_.Evaluate(windowed, pricing, distribution(), live);
  if (!decision.ok()) {
    return decision.status();
  }
  last_decision_ = *decision;
  ++stats_.evaluations;
  epochs_since_evaluation_ = 0;
  COIGN_LOG(kDebug,
            "epoch %llu: %s | current %.4fs proposed %.4fs move %.4fs (%llu instances)",
            static_cast<unsigned long long>(stats_.epochs), decision->reason.c_str(),
            decision->current_seconds, decision->proposed_seconds,
            decision->migration_seconds,
            static_cast<unsigned long long>(decision->instances_to_move));

  if (!decision->adopt) {
    if (decision->reject_cause == RejectCause::kHysteresis) {
      ++stats_.hysteresis_rejections;
    } else if (decision->reject_cause == RejectCause::kMigrationCost) {
      ++stats_.cost_rejections;
    }
    return Status::Ok();
  }

  if (decision->migrate) {
    if (migration_transport_ != nullptr) {
      // Journaled two-phase path: adopt first (the journal's target is the
      // adopted distribution, so resumes after a crash aim at the same
      // cut), then push state through the faulted wire.
      runtime_->AdoptDistribution(decision->proposed);
      PendingMigration pending;
      LiveMigrator migrator = MakeJournaledMigrator();
      Result<MigrationReport> moved =
          migrator.Migrate(*system_, decision->proposed, pending.journal,
                           *migration_transport_, migration_jitter_);
      if (!moved.ok()) {
        return moved.status();
      }
      AbsorbMigrationReport(*moved);
      if (!moved->complete) {
        pending_ = std::move(pending);  // Resume at the next healthy epoch.
      }
    } else {
      LiveMigrator migrator(options_.policy.state_bytes_per_instance,
                            [this](InstanceId id) { return ClassificationOf(id); });
      Result<MigrationReport> moved =
          migrator.Migrate(*system_, decision->proposed, network_);
      if (!moved.ok()) {
        return moved.status();
      }
      if (charge_) {
        charge_(moved->bytes_transferred, moved->seconds);
      }
      stats_.instances_moved += moved->instances_moved;
      stats_.migration_bytes += moved->bytes_transferred;
      stats_.migration_seconds += moved->seconds;
      runtime_->AdoptDistribution(decision->proposed);
    }
  } else {
    ++stats_.lazy_adoptions;  // Live instances rent the old cut until death.
    runtime_->AdoptDistribution(decision->proposed);
  }
  ++stats_.repartitions;
  cooldown_remaining_ = options_.cooldown_epochs;
  return Status::Ok();
}

}  // namespace coign
