#include "src/online/repartitioner.h"

#include <cassert>
#include <cstdio>

#include "src/graph/distribution.h"
#include "src/support/log.h"
#include "src/support/str_util.h"

namespace coign {

std::string OnlineStats::ToString() const {
  std::string out = StrFormat(
      "online{epochs=%llu, drift=%llu, evals=%llu, repartitions=%llu (lazy %llu), "
      "hysteresis_rej=%llu, cost_rej=%llu, moved=%llu, migration_bytes=%llu, "
      "migration_s=%.4f, fault_episodes=%llu, quarantined=%llu, slowdown=%.2fx",
      static_cast<unsigned long long>(epochs), static_cast<unsigned long long>(drift_flags),
      static_cast<unsigned long long>(evaluations),
      static_cast<unsigned long long>(repartitions),
      static_cast<unsigned long long>(lazy_adoptions),
      static_cast<unsigned long long>(hysteresis_rejections),
      static_cast<unsigned long long>(cost_rejections),
      static_cast<unsigned long long>(instances_moved),
      static_cast<unsigned long long>(migration_bytes), migration_seconds,
      static_cast<unsigned long long>(fault_episodes),
      static_cast<unsigned long long>(quarantined_epochs), live_slowdown);
  if (interrupted_migrations > 0 || migration_resumes > 0 || migration_rollbacks > 0 ||
      migration_wasted_bytes > 0 || duplicates_suppressed > 0) {
    out += StrFormat(
        ", interrupted=%llu, resumes=%llu, rollbacks=%llu, wasted=%lluB, dedup=%llu",
        static_cast<unsigned long long>(interrupted_migrations),
        static_cast<unsigned long long>(migration_resumes),
        static_cast<unsigned long long>(migration_rollbacks),
        static_cast<unsigned long long>(migration_wasted_bytes),
        static_cast<unsigned long long>(duplicates_suppressed));
  }
  if (breaker_trips > 0 || safe_mode_entries > 0) {
    out += StrFormat(
        ", breaker_trips=%llu, breaker_reopens=%llu, safe_mode_entries=%llu, "
        "safe_mode_exits=%llu, safe_mode_epochs=%llu",
        static_cast<unsigned long long>(breaker_trips),
        static_cast<unsigned long long>(breaker_reopens),
        static_cast<unsigned long long>(safe_mode_entries),
        static_cast<unsigned long long>(safe_mode_exits),
        static_cast<unsigned long long>(safe_mode_epochs));
  }
  out += "}";
  return out;
}

OnlineRepartitioner::OnlineRepartitioner(ObjectSystem* system, CoignRuntime* runtime,
                                         const IccProfile& base_profile,
                                         NetworkProfile network, OnlineOptions options)
    : system_(system),
      runtime_(runtime),
      base_profile_(base_profile),
      network_(std::move(network)),
      options_(options),
      window_(options.window),
      policy_(options.policy, options.analysis),
      episode_detector_(options.quarantine),
      breaker_(options.breaker) {
  assert(system_ != nullptr && runtime_ != nullptr);
  // A journal file left by a previous process means that process died with
  // a migration in flight: pick it up as the pending migration so the first
  // healthy epoch boundary runs crash recovery against it.
  if (!options_.journal_path.empty()) {
    Result<MigrationJournal> loaded =
        MigrationJournal::LoadFromFile(options_.journal_path);
    if (loaded.ok() && !loaded->empty()) {
      if (loaded->recovered_torn_tail()) {
        COIGN_LOG(kWarning, "journal %s had a torn tail; dropped the partial record",
                  options_.journal_path.c_str());
      }
      if (loaded->corrupt_skipped() > 0) {
        COIGN_LOG(kWarning, "journal %s had %zu corrupt record(s); skipped them",
                  options_.journal_path.c_str(), loaded->corrupt_skipped());
      }
      PendingMigration pending;
      pending.journal = std::move(*loaded);
      pending_ = std::move(pending);
    }
  }
  system_->AddInterceptor(this);
}

OnlineRepartitioner::~OnlineRepartitioner() { system_->RemoveInterceptor(this); }

void OnlineRepartitioner::SetObservability(Observability* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    return;
  }
  // Register the solver-work counters up front so they appear (at zero) in
  // metrics dumps and trace exports even before the first evaluation —
  // trace_lint --require checks for their presence on every online run.
  obs_->metrics().GetCounter("mincut.pushes");
  obs_->metrics().GetCounter("mincut.relabels");
  obs_->metrics().GetCounter("mincut.global_relabels");
  obs_->metrics().GetCounter("mincut.warm_start_hits");
  obs_->metrics().GetCounter("mincut.flow_reused_units");
}

void OnlineRepartitioner::SetTransportProbe(TransportProbeFn probe) {
  probe_ = std::move(probe);
  if (probe_) {
    estimator_ = std::make_unique<LiveNetworkEstimator>(
        network_, options_.quarantine.estimator_alpha);
    call_health_ = probe_();
    epoch_health_ = call_health_;
  } else {
    estimator_.reset();
  }
}

ClassificationId OnlineRepartitioner::ClassificationOf(InstanceId instance) const {
  const Result<ClassificationId> classification =
      runtime_->classifier().ClassificationOf(instance);
  return classification.ok() ? *classification : kNoClassification;
}

LiveMigrator OnlineRepartitioner::MakeJournaledMigrator() const {
  MigrationOptions options;
  options.state_bytes_per_instance = options_.policy.state_bytes_per_instance;
  options.ack_bytes = options_.migration_ack_bytes;
  options.copy_attempts_per_instance = options_.migration_copy_attempts;
  LiveMigrator migrator(options, [this](InstanceId id) { return ClassificationOf(id); });
  if (crash_gate_) {
    migrator.SetCrashGate(crash_gate_);
  }
  // Per-instance state from profiled allocations — the same source the
  // policy priced the migration bill with. 0 = no data, migrator falls
  // back to the flat configured size.
  migrator.SetStateSizeResolver([this](InstanceId id) -> uint64_t {
    const ClassificationId classification = ClassificationOf(id);
    if (classification == kNoClassification) {
      return 0;
    }
    const ClassificationInfo* info = base_profile_.FindClassification(classification);
    if (info == nullptr) {
      auto it = live_registry_.find(classification);
      info = it != live_registry_.end() ? &it->second : nullptr;
    }
    return ProfiledStateBytes(info, 0);
  });
  migrator.SetObservability(obs_);
  return migrator;
}

void OnlineRepartitioner::PersistPendingJournal() const {
  if (options_.journal_path.empty()) {
    return;
  }
  if (!pending_) {
    std::remove(options_.journal_path.c_str());
    return;
  }
  const Status saved = pending_->journal.SaveToFile(options_.journal_path);
  if (!saved.ok()) {
    COIGN_LOG(kWarning, "journal snapshot to %s failed: %s",
              options_.journal_path.c_str(), saved.ToString().c_str());
  }
}

void OnlineRepartitioner::AbandonPendingMigration() {
  pending_.reset();
  cooldown_remaining_ = options_.cooldown_epochs;
  PersistPendingJournal();  // Removes the snapshot file.
  if (obs_ != nullptr) {
    obs_->metrics().GetCounter("online.migrations_abandoned")->Add(1);
    obs_->tracer().Instant("migration-abandoned", "online", kTrackMigration,
                           {{"epoch", Tracer::ArgUint(stats_.epochs)}});
    obs_->Dump("migration-abandoned");
  }
}

void OnlineRepartitioner::AbsorbMigrationReport(const MigrationReport& report) {
  stats_.instances_moved += report.instances_moved;
  stats_.migration_bytes += report.bytes_transferred;
  stats_.migration_seconds += report.seconds;
  stats_.migration_wasted_bytes += report.wasted_bytes;
  stats_.duplicates_suppressed += report.duplicates_suppressed;
  if (report.interrupted) {
    ++stats_.interrupted_migrations;
  }
  if (charge_) {
    // Committed state plus every retransmitted/abandoned copy went over
    // the wire; the run pays for all of it.
    charge_(report.bytes_transferred + report.wasted_bytes, report.seconds);
  }
}

Status OnlineRepartitioner::ResumePendingMigration() {
  PendingMigration& pending = *pending_;
  ++pending.resumes;
  ++stats_.migration_resumes;
  if (obs_ != nullptr) {
    obs_->metrics().GetCounter("online.migration_resumes")->Add(1);
    obs_->tracer().Instant("migration-resume", "online", kTrackMigration,
                           {{"epoch", Tracer::ArgUint(stats_.epochs)},
                            {"resumes", Tracer::ArgUint(pending.resumes)}});
  }
  // Crash recovery from the journal: redo committed flips, roll in-flight
  // copies back. After this every journaled instance has one home again,
  // and the journal is checkpointed (cleared) for the re-attempt.
  Result<RecoveryReport> recovered = LiveMigrator::Recover(*system_, pending.journal);
  if (!recovered.ok()) {
    return recovered.status();
  }
  stats_.migration_rollbacks += recovered->instances_rolled_back;
  stats_.migration_wasted_bytes += recovered->wasted_bytes;
  pending.journal.Clear();
  if (pending.resumes > options_.max_migration_resumes) {
    // Give up: residency is consistent, stragglers rent the old placement
    // at their source until the next accepted repartition moves them.
    AbandonPendingMigration();
    return Status::Ok();
  }
  // Re-attempt toward the already-adopted distribution. Rolled-back
  // stragglers still sit on the wrong machine, so the migrator naturally
  // picks exactly them up.
  LiveMigrator migrator = MakeJournaledMigrator();
  Result<MigrationReport> moved = migrator.Migrate(
      *system_, distribution(), pending.journal, *migration_transport_, migration_jitter_);
  if (!moved.ok()) {
    return moved.status();
  }
  AbsorbMigrationReport(*moved);
  if (moved->complete) {
    pending_.reset();
    cooldown_remaining_ = options_.cooldown_epochs;
  }
  PersistPendingJournal();
  return Status::Ok();
}

bool OnlineRepartitioner::RunBreakerProbe(const BreakerSample& sample) {
  if (migration_transport_ == nullptr) {
    // No hardened wire to probe synthetically: judge by the epoch's own
    // traffic (live instances renting the distributed cut keep the wire
    // evidence flowing even while safe mode holds the all-local plan).
    return sample.calls > 0 && sample.undelivered == 0 &&
           sample.corrupt_rejected == 0;
  }
  const BreakerConfig& config = options_.breaker;
  uint64_t bad = 0;
  for (int i = 0; i < config.probe_calls; ++i) {
    const DeliveryReceipt receipt = migration_transport_->ReliableRoundTrip(
        kClientMachine, kServerMachine, config.probe_bytes, config.probe_bytes,
        migration_jitter_);
    if (!receipt.delivered || receipt.corrupt_rejected > 0) {
      ++bad;
    }
  }
  return bad == 0;
}

void OnlineRepartitioner::EnterSafeMode() {
  safe_mode_ = true;
  ++stats_.safe_mode_entries;
  // Park the distributed plan and lazily adopt the all-local cut: future
  // placements stop crossing the sick wire immediately, and no state is
  // copied over it to get there. Live remote instances rent their seats
  // until the plan is re-promoted (or they die).
  saved_distribution_ = distribution();
  runtime_->AdoptDistribution(EverythingOn(kClientMachine));
  if (obs_ != nullptr) {
    obs_->metrics().GetCounter("safe_mode.entered")->Add(1);
    obs_->tracer().Instant("safe-mode-enter", "online", kTrackOnline,
                           {{"epoch", Tracer::ArgUint(stats_.epochs)}});
    obs_->Dump("safe-mode");
  }
}

void OnlineRepartitioner::ExitSafeMode() {
  safe_mode_ = false;
  ++stats_.safe_mode_exits;
  runtime_->AdoptDistribution(saved_distribution_);
  // Anti-thrash: the re-promoted plan gets the same quiet period an
  // accepted repartition would.
  cooldown_remaining_ = options_.cooldown_epochs;
  if (obs_ != nullptr) {
    obs_->metrics().GetCounter("safe_mode.exited")->Add(1);
    obs_->tracer().Instant("safe-mode-exit", "online", kTrackOnline,
                           {{"epoch", Tracer::ArgUint(stats_.epochs)}});
  }
}

void OnlineRepartitioner::BreakerTick(const BreakerSample& sample) {
  const BreakerState before = breaker_.state();
  breaker_.Observe(sample);
  if (breaker_.WantsProbe()) {
    breaker_.OnProbeResult(RunBreakerProbe(sample));
  }
  const BreakerState after = breaker_.state();
  stats_.breaker_trips = breaker_.trips();
  stats_.breaker_reopens = breaker_.reopens();
  if (obs_ != nullptr) {
    // Gauge sampled onto the counter track each epoch: 0 closed, 1 open,
    // 2 half-open (half-open is only visible here when a probe could not
    // run this epoch).
    obs_->metrics().GetGauge("breaker.state")
        ->Set(after == BreakerState::kClosed ? 0.0
              : after == BreakerState::kOpen ? 1.0
                                             : 2.0);
    if (after != before) {
      obs_->tracer().Instant(
          "breaker-transition", "online", kTrackOnline,
          {{"epoch", Tracer::ArgUint(stats_.epochs)},
           {"from", Tracer::ArgString(BreakerStateName(before))},
           {"to", Tracer::ArgString(BreakerStateName(after))}});
    }
  }
  if (after == BreakerState::kClosed && safe_mode_) {
    ExitSafeMode();
  } else if (after != BreakerState::kClosed && !safe_mode_) {
    EnterSafeMode();
  }
}

void OnlineRepartitioner::OnInstantiated(const ClassDesc& cls, InstanceId id,
                                         InstanceId creator) {
  (void)creator;
  // The classifier binds the classification before placement, so it is
  // already known here. Classifications the base profile covers need no
  // registration; the others are exactly the §6 case — usage the profiling
  // scenarios never saw — and the re-cut needs their metadata (clsid, name,
  // api_usage for constraint pinning) to place them deliberately.
  const ClassificationId classification = ClassificationOf(id);
  if (classification == kNoClassification ||
      base_profile_.FindClassification(classification) != nullptr) {
    return;
  }
  ClassificationInfo& info = live_registry_[classification];
  if (info.id == kNoClassification) {
    info.id = classification;
    info.clsid = cls.clsid;
    info.class_name = cls.name;
    info.api_usage = cls.api_usage;
  }
  ++info.instance_count;
}

void OnlineRepartitioner::OnCallEnd(const ObjectSystem::CallEvent& event,
                                    const Status& status) {
  if (!status.ok()) {
    return;  // Failed calls carry no communication.
  }
  CallKey key;
  key.src = ClassificationOf(event.caller);
  key.dst = ClassificationOf(event.target.instance);
  key.iid = event.target.iid;
  key.method = event.method;
  // The same cheap remotability check the profiling informer uses:
  // interface metadata plus an opaque-parameter scan of the live messages.
  bool remotable = true;
  const InterfaceDesc* iface = system_->interfaces().Lookup(event.target.iid);
  if (iface != nullptr && !iface->remotable) {
    remotable = false;
  }
  if (remotable && event.in != nullptr && event.in->ContainsOpaque()) {
    remotable = false;
  }
  if (remotable && event.out != nullptr && event.out->ContainsOpaque()) {
    remotable = false;
  }
  // With a transport probe, wire reality weights the window: a call the
  // hardened transport had to retry put that many extra round trips on the
  // wire, and the lightweight runtime counts messages, not intents. (Calls
  // are sequential in the simulator, so the probe delta is this call's.)
  uint64_t wire_calls = 1;
  if (probe_) {
    const TransportHealth now = probe_();
    wire_calls += now.retries - call_health_.retries;
    call_health_ = now;
  }
  window_.Record(key, wire_calls, remotable);
}

void OnlineRepartitioner::OnCompute(InstanceId instance, double seconds) {
  window_.RecordCompute(ClassificationOf(instance), seconds);
}

Status OnlineRepartitioner::EndEpoch() {
  ++stats_.epochs;
  ++epochs_since_evaluation_;
  Tracer* tracer = obs_ != nullptr ? &obs_->tracer() : nullptr;
  TraceSpan epoch_span(tracer, "epoch", "online", kTrackOnline);
  epoch_span.AddArg("epoch", stats_.epochs);
  if (obs_ != nullptr) {
    obs_->metrics().GetCounter("online.epochs")->Add(1);
    // Periodic counter-sample track: every metric series gets one "C"
    // event per epoch boundary, so exported traces carry value-over-time
    // graphs (calls, retries, quarantines) aligned with the epoch spans.
    obs_->SampleCounters();
  }

  // Fault-episode screening: an epoch whose transport visibly fought the
  // network (timeouts, exhausted budgets, spiked round trips) is not
  // evidence about the application. Quarantine discards it wholesale.
  if (probe_) {
    const TransportHealth now = probe_();
    const uint64_t epoch_calls = now.calls - epoch_health_.calls;
    const uint64_t epoch_faulted = now.faulted_calls - epoch_health_.faulted_calls;
    const uint64_t epoch_bytes = now.wire_bytes - epoch_health_.wire_bytes;
    const uint64_t epoch_undelivered = now.undelivered - epoch_health_.undelivered;
    const uint64_t epoch_corrupt =
        now.corrupt_rejected - epoch_health_.corrupt_rejected;
    const double epoch_latency =
        now.wire_latency_seconds - epoch_health_.wire_latency_seconds;
    const double epoch_payload =
        now.wire_payload_seconds - epoch_health_.wire_payload_seconds;
    epoch_health_ = now;
    call_health_ = now;
    // The breaker judges every epoch — quarantined ones included: an
    // epoch too sick to be evidence for the estimator is exactly the
    // evidence the breaker exists for. (Half-open probes may put extra
    // round trips on the wire; the cursors above were already advanced,
    // so the next epoch's deltas absorb them.)
    if (options_.breaker.enabled) {
      BreakerSample sample;
      sample.calls = epoch_calls;
      sample.undelivered = epoch_undelivered;
      sample.corrupt_rejected = epoch_corrupt;
      BreakerTick(sample);
    }
    if (options_.quarantine.enabled) {
      EpochHealthSample sample;
      sample.calls = epoch_calls;
      sample.faulted_calls = epoch_faulted;
      sample.wire_bytes = epoch_bytes;
      sample.latency_seconds = epoch_latency;
      sample.payload_seconds = epoch_payload;
      const FaultEpisodeDetector::Verdict verdict = episode_detector_.Observe(sample);
      if (verdict.episode != FaultEpisodeDetector::Trigger::kNone) {
        ++stats_.fault_episodes;
        if (obs_ != nullptr) {
          obs_->metrics().GetCounter("online.fault_episodes")->Add(1);
        }
      }
      if (verdict.quarantine) {
        ++stats_.quarantined_epochs;
        window_.DiscardEpoch();
        epoch_span.AddArg("outcome", "quarantined");
        if (obs_ != nullptr) {
          obs_->metrics().GetCounter("online.quarantined_epochs")->Add(1);
          obs_->tracer().Instant("quarantine", "online", kTrackOnline,
                                 {{"epoch", Tracer::ArgUint(stats_.epochs)}});
          if (!in_quarantine_) {
            // First quarantined epoch of an episode: the retained tail of
            // the trace ring is exactly the evidence that led here.
            obs_->Dump("quarantine");
          }
        }
        in_quarantine_ = true;
        return Status::Ok();
      }
    }
    if (estimator_ != nullptr) {
      estimator_->ObserveEpoch(epoch_calls, epoch_bytes, epoch_latency, epoch_payload);
      stats_.live_slowdown = estimator_->slowdown();
    }
  }

  if (in_quarantine_) {
    in_quarantine_ = false;
    if (obs_ != nullptr) {
      obs_->tracer().Instant("quarantine-exit", "online", kTrackOnline,
                             {{"epoch", Tracer::ArgUint(stats_.epochs)}});
    }
  }

  window_.AdvanceEpoch();

  if (safe_mode_) {
    // Safe mode owns the loop: no evaluations and no migrations over a
    // wire the breaker declared sick — the all-local plan needs neither.
    // The window keeps advancing so evidence stays fresh for the
    // re-promoted plan.
    ++stats_.safe_mode_epochs;
    epoch_span.AddArg("outcome", "safe-mode");
    return Status::Ok();
  }

  last_drift_ = DetectDrift(base_profile_, window_.WindowMessageCounts(), options_.drift);
  if (last_drift_.reprofile_recommended) {
    ++stats_.drift_flags;
    if (obs_ != nullptr) {
      obs_->metrics().GetCounter("online.drift_flags")->Add(1);
    }
  }

  // An interrupted migration owns the loop until it completes or is
  // abandoned: recover from its journal and re-attempt before any new
  // evaluation. (Quarantined epochs returned above — recovery waits for a
  // healthy wire rather than re-copying state into a fault episode.)
  if (pending_) {
    if (migration_transport_ == nullptr) {
      // A journal recovered from disk, but this run has no hardened wire
      // to resume over: repair residency and give the migration up —
      // stragglers rent whatever placement recovery left them with.
      Result<RecoveryReport> recovered =
          LiveMigrator::Recover(*system_, pending_->journal);
      if (recovered.ok()) {
        stats_.migration_rollbacks += recovered->instances_rolled_back;
        stats_.migration_wasted_bytes += recovered->wasted_bytes;
      }
      AbandonPendingMigration();
      return Status::Ok();
    }
    return ResumePendingMigration();
  }

  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    return Status::Ok();
  }
  const bool periodic = options_.epochs_per_recut > 0 &&
                        epochs_since_evaluation_ >= options_.epochs_per_recut;
  if (!last_drift_.reprofile_recommended && !periodic) {
    return Status::Ok();
  }

  // Live instance census: what an accepted cut would have to migrate.
  std::unordered_map<ClassificationId, uint64_t> live;
  for (const ObjectSystem::InstanceInfo& info : system_->LiveInstances()) {
    const ClassificationId classification = ClassificationOf(info.id);
    if (classification != kNoClassification) {
      ++live[classification];
    }
  }

  const IccProfile windowed = window_.WindowedProfile(base_profile_, live_registry_);
  // Cut pricing uses the live network estimate when one is maintained —
  // the adaptive loop reacting to measurements, which is precisely what
  // quarantine protects from fault-poisoned epochs.
  const NetworkProfile& pricing = estimator_ != nullptr ? estimator_->live() : network_;
  Result<RepartitionDecision> decision =
      policy_.Evaluate(windowed, pricing, distribution(), live);
  if (!decision.ok()) {
    return decision.status();
  }
  last_decision_ = *decision;
  ++stats_.evaluations;
  epochs_since_evaluation_ = 0;
  if (obs_ != nullptr) {
    obs_->metrics().GetCounter("online.evaluations")->Add(1);
    // Solver-work deltas since the last sync: the policy session's stats
    // are cumulative, the counters are monotone, so each evaluation adds
    // exactly the work this evaluation performed.
    const MinCutSolveStats& cut = policy_.cut_stats();
    obs_->metrics().GetCounter("mincut.pushes")->Add(cut.pushes - sampled_cut_stats_.pushes);
    obs_->metrics()
        .GetCounter("mincut.relabels")
        ->Add(cut.relabels - sampled_cut_stats_.relabels);
    obs_->metrics()
        .GetCounter("mincut.global_relabels")
        ->Add(cut.global_relabels - sampled_cut_stats_.global_relabels);
    obs_->metrics()
        .GetCounter("mincut.warm_start_hits")
        ->Add(cut.warm_start_hits - sampled_cut_stats_.warm_start_hits);
    obs_->metrics()
        .GetCounter("mincut.flow_reused_units")
        ->Add(static_cast<uint64_t>(cut.flow_reused_units) -
              static_cast<uint64_t>(sampled_cut_stats_.flow_reused_units));
    sampled_cut_stats_ = cut;
    obs_->tracer().Instant(
        "recut-decision", "online", kTrackOnline,
        {{"epoch", Tracer::ArgUint(stats_.epochs)},
         {"adopt", decision->adopt ? "true" : "false"},
         {"migrate", decision->migrate ? "true" : "false"},
         {"gain_s", Tracer::ArgDouble(decision->gain_seconds())},
         {"move_instances", Tracer::ArgUint(decision->instances_to_move)},
         {"reason", Tracer::ArgString(decision->reason)}});
  }
  COIGN_LOG(kDebug,
            "epoch %llu: %s | current %.4fs proposed %.4fs move %.4fs (%llu instances)",
            static_cast<unsigned long long>(stats_.epochs), decision->reason.c_str(),
            decision->current_seconds, decision->proposed_seconds,
            decision->migration_seconds,
            static_cast<unsigned long long>(decision->instances_to_move));

  if (!decision->adopt) {
    if (decision->reject_cause == RejectCause::kHysteresis) {
      ++stats_.hysteresis_rejections;
    } else if (decision->reject_cause == RejectCause::kMigrationCost) {
      ++stats_.cost_rejections;
    }
    return Status::Ok();
  }

  if (decision->migrate) {
    if (migration_transport_ != nullptr) {
      // Journaled two-phase path: adopt first (the journal's target is the
      // adopted distribution, so resumes after a crash aim at the same
      // cut), then push state through the faulted wire.
      runtime_->AdoptDistribution(decision->proposed);
      PendingMigration pending;
      LiveMigrator migrator = MakeJournaledMigrator();
      Result<MigrationReport> moved =
          migrator.Migrate(*system_, decision->proposed, pending.journal,
                           *migration_transport_, migration_jitter_);
      if (!moved.ok()) {
        return moved.status();
      }
      AbsorbMigrationReport(*moved);
      if (!moved->complete) {
        pending_ = std::move(pending);  // Resume at the next healthy epoch.
      }
      PersistPendingJournal();
    } else {
      // Same migrator construction as the journaled path so both price
      // state from profiled allocations; the model-priced overload simply
      // never consults the journal knobs.
      LiveMigrator migrator = MakeJournaledMigrator();
      Result<MigrationReport> moved =
          migrator.Migrate(*system_, decision->proposed, network_);
      if (!moved.ok()) {
        return moved.status();
      }
      if (charge_) {
        charge_(moved->bytes_transferred, moved->seconds);
      }
      stats_.instances_moved += moved->instances_moved;
      stats_.migration_bytes += moved->bytes_transferred;
      stats_.migration_seconds += moved->seconds;
      runtime_->AdoptDistribution(decision->proposed);
    }
  } else {
    ++stats_.lazy_adoptions;  // Live instances rent the old cut until death.
    runtime_->AdoptDistribution(decision->proposed);
    if (obs_ != nullptr) {
      obs_->metrics().GetCounter("online.lazy_adoptions")->Add(1);
    }
  }
  ++stats_.repartitions;
  cooldown_remaining_ = options_.cooldown_epochs;
  if (obs_ != nullptr) {
    obs_->metrics().GetCounter("online.repartitions")->Add(1);
  }
  epoch_span.AddArg("outcome", "repartitioned");
  return Status::Ok();
}

}  // namespace coign
