// The repartition policy: when the windowed communication graph says the
// current distribution is stale, decide whether moving is worth it.
//
// The framing is the rent-or-buy tradeoff of online balanced repartitioning
// (Avin et al.; Räcke/Schmid/Zabrodin): keep paying the communication
// penalty of the current cut ("rent") or pay a one-time state-transfer cost
// to migrate to the better cut ("buy"). We accept a proposed cut only when
// its modeled communication savings over a horizon of future windows exceed
// the modeled migration cost, and additionally gate on a minimum relative
// gain (hysteresis) plus a post-move cooldown so measurement noise cannot
// thrash instances back and forth.

#ifndef COIGN_SRC_ONLINE_POLICY_H_
#define COIGN_SRC_ONLINE_POLICY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/analysis/engine.h"
#include "src/graph/distribution.h"
#include "src/net/network_profiler.h"
#include "src/profile/icc_profile.h"
#include "src/support/status.h"

namespace coign {

struct RepartitionConfig {
  // Modeled serialized state of one component instance; migrating an
  // instance ships this many bytes in one message over the network.
  uint64_t state_bytes_per_instance = 4096;
  // How many future windows the current window is assumed to represent
  // (the "rent" horizon of the rent-or-buy rule). Lazy adoption is modeled
  // as realizing the gain for horizon_windows - 1 windows (live instances
  // keep renting through the first); eager migration realizes all of them
  // but pays the state-transfer bill up front.
  double horizon_windows = 2.0;
  // Hysteresis: proposed cuts must beat the current distribution by at
  // least this fraction of its communication time.
  double min_relative_gain = 0.05;
  // Safety multiplier on the modeled migration cost (>= 1 biases toward
  // staying put, the competitive-analysis "rent longer" bias).
  double migration_safety = 1.0;
  // Below this much decayed window traffic, never repartition.
  double min_window_messages = 100.0;
};

// The quarantine rule: windows measured while the transport was visibly
// fighting faults are not evidence about the application. An epoch whose
// faulted-call fraction spikes above the steady-state level is discarded
// outright — it neither folds into the sliding window, nor updates the
// live network estimate, nor triggers a policy evaluation — and suspicion
// lingers for `hold_epochs` more epochs so a recut never keys off the
// tail of an episode. Without this rule, retry-inflated message weights
// and timeout-inflated latency estimates drive recuts that the
// post-episode network immediately invalidates: thrash.
//
// Detection is baseline-relative: an EWMA of healthy epochs' faulted
// fraction tracks the steady background fault level (which retries absorb
// and the live estimator prices in), and an epoch is quarantined only
// when its fraction exceeds `faulted_fraction_threshold` plus
// `baseline_multiplier` times that baseline. A lossy-but-steady link is
// the network, not an episode. Silent degradation — the wire slowing
// without any call being marked faulted — is screened the same way
// against per-call latency and per-byte payload baselines (the
// FaultEpisodeDetector in episode_detector.h implements the rule).
struct QuarantineConfig {
  bool enabled = true;
  // Absolute floor of the quarantine trigger: with a clean baseline, an
  // epoch is quarantined when faulted calls / remote calls exceeds this.
  double faulted_fraction_threshold = 0.05;
  // Trigger scales with the learned steady-state fault level:
  //   fraction > threshold + multiplier * baseline  =>  quarantine.
  double baseline_multiplier = 3.0;
  // EWMA weight of the newest healthy epoch in the faulted-fraction
  // baseline. Quarantined epochs never update the baseline.
  double baseline_alpha = 0.3;
  // Silent-degradation trigger: quarantine an epoch whose per-call latency
  // or per-byte payload time exceeds this multiple of the healthy-epoch
  // baseline, even when no individual call was marked faulted (a congested
  // or re-routed wire slows everything without tripping the retry path).
  double slowdown_multiplier = 3.0;
  // Extra epochs of distrust after the detector last fired.
  uint64_t hold_epochs = 1;
  // EWMA weight of the newest healthy epoch in the live network estimate.
  double estimator_alpha = 0.4;
};

enum class RejectCause {
  kNone,                  // Accepted.
  kEmptyWindow,           // Nothing observed.
  kInsufficientEvidence,  // Window below min_window_messages.
  kNoImprovement,         // Current distribution already optimal.
  kHysteresis,            // Gain below the relative-gain threshold.
  kMigrationCost,         // Rent-or-buy says keep renting.
};

struct RepartitionDecision {
  // Adopt the proposed distribution (component factories place future
  // instances per the new cut — free; the durable half of a repartition).
  bool adopt = false;
  // Additionally relocate live instances now, paying the state-transfer
  // bill. Implies adopt. False with adopt=true is the lazy path: live
  // instances keep renting the old cut until they are destroyed.
  bool migrate = false;
  RejectCause reject_cause = RejectCause::kNone;
  Distribution proposed;
  // Modeled communication seconds per window under each distribution.
  double current_seconds = 0.0;
  double proposed_seconds = 0.0;
  // Modeled one-time cost of moving the affected live instances.
  double migration_seconds = 0.0;
  uint64_t migration_bytes = 0;
  uint64_t instances_to_move = 0;
  // Why the decision came out the way it did, for reports.
  std::string reason;

  double gain_seconds() const { return current_seconds - proposed_seconds; }
};

class RepartitionPolicy {
 public:
  explicit RepartitionPolicy(RepartitionConfig config = {},
                             AnalysisOptions analysis_options = {})
      : config_(config), engine_(analysis_options) {}

  const RepartitionConfig& config() const { return config_; }

  // Re-cuts `windowed` against `network` and applies the rent-or-buy rule.
  // `live_instances` maps classifications to their live instance counts
  // (what migration would have to ship).
  Result<RepartitionDecision> Evaluate(
      const IccProfile& windowed, const NetworkProfile& network,
      const Distribution& current,
      const std::unordered_map<ClassificationId, uint64_t>& live_instances) const;

  // Cumulative min-cut work across this policy's evaluations: the session
  // warm-starts each epoch's cut from the previous epoch's flow (and
  // short-circuits entirely when the windowed graph is unchanged). The
  // repartitioner samples these into the mincut.* metrics counters.
  const MinCutSolveStats& cut_stats() const { return cut_session_.stats(); }

 private:
  RepartitionConfig config_;
  ProfileAnalysisEngine engine_;
  // Epoch-to-epoch warm-start state. The policy is evaluated from one
  // thread (the repartitioner's epoch loop); mutable keeps Evaluate const
  // for callers while the session accumulates flow across epochs.
  mutable MinCutSession cut_session_;
};

}  // namespace coign

#endif  // COIGN_SRC_ONLINE_POLICY_H_
