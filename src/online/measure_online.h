// The online measurement harness: replays a phase-shifting workload —
// a sequence of scenario phases whose communication patterns differ —
// against one long-lived ObjectSystem, and measures total execution time
// either under a fixed static distribution or with the online
// repartitioner adapting the distribution as phases shift. Every scenario
// execution is one epoch; epoch boundaries fall while the execution's
// instances are still live, so accepted repartitions migrate real state
// and the run pays for it through the network accountant.

#ifndef COIGN_SRC_ONLINE_MEASURE_ONLINE_H_
#define COIGN_SRC_ONLINE_MEASURE_ONLINE_H_

#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/net/network_profiler.h"
#include "src/online/repartitioner.h"
#include "src/runtime/config_record.h"
#include "src/sim/measurement.h"
#include "src/support/status.h"

namespace coign {

struct OnlinePhase {
  std::string scenario_id;
  int repetitions = 1;
};

// `scenarios` cycled `cycles` times with `repetitions` runs per visit:
// the canonical phase-shifting workload.
std::vector<OnlinePhase> CyclicWorkload(const std::vector<std::string>& scenarios,
                                        int repetitions, int cycles);

struct OnlineRunResult {
  RunMeasurement run;        // Includes migration charges when adaptive.
  OnlineStats online;        // Zero-valued for static runs.
  DriftReport final_drift;   // Last epoch's drift report (adaptive only).
  // Cumulative wire health (retries, undelivered, corrupt rejects) and the
  // distribution the run ended on — what a corruption storm must not be
  // able to poison.
  TransportHealth transport;
  Distribution final_distribution;
};

struct OnlineMeasurementOptions {
  NetworkModel network;
  // Fitted profile the repartitioner prices cuts and migrations with.
  NetworkProfile fitted;
  OnlineOptions online;
  bool adaptive = true;  // False: measure the fixed distribution only.
  uint64_t scenario_seed = 17;
  // Non-null → the run executes under this fault model (not owned) with
  // the hardened transport; the repartitioner additionally gets a
  // transport-health probe so the quarantine rule and the live network
  // estimator engage, and migrations take the journaled two-phase path
  // through the accountant's transport (state copies feel the faults).
  TransportFaultModel* faults = nullptr;
  RetryPolicy retry;
  // False models a legacy unframed wire: corrupted deliveries pass
  // undetected and their payloads are consumed as truth (the bench's
  // "wrong answers" baseline). Leave true everywhere else.
  bool checksums = true;
  // Optional simulated coordinator crash during journaled migrations
  // (chaos/bench runs force interruptions with this; see
  // LiveMigrator::CrashGate). Only consulted when `faults` is set.
  LiveMigrator::CrashGate migration_crash_gate;
  // Non-null → the run is traced and metered (not owned): the tracer's
  // clock is bound to the accountant's modeled execution clock for the
  // duration of the run, and the transport, fault injector hooks, and
  // repartitioner all record into it. Observability never draws from the
  // run's RNG or advances modeled time, so traced and untraced runs follow
  // identical schedules.
  Observability* obs = nullptr;
};

// Runs the workload under `config` (a distributed-mode configuration
// record). When adaptive, `base_profile` is the profile the shipped
// distribution was computed from; the repartitioner compares live usage
// against it and re-cuts the windowed graph when usage drifts.
Result<OnlineRunResult> MeasureOnlineRun(Application& app,
                                         const std::vector<OnlinePhase>& workload,
                                         const ConfigurationRecord& config,
                                         const IccProfile& base_profile,
                                         const OnlineMeasurementOptions& options);

}  // namespace coign

#endif  // COIGN_SRC_ONLINE_MEASURE_ONLINE_H_
