#include "src/online/circuit_breaker.h"

#include <algorithm>

#include "src/support/str_util.h"

namespace coign {

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::Open() {
  state_ = BreakerState::kOpen;
  consecutive_bad_ = 0;
  current_hold_ = current_hold_ == 0
                      ? std::max<uint64_t>(1, config_.open_epochs)
                      : std::min(current_hold_ * 2, config_.max_open_epochs);
  hold_remaining_ = current_hold_;
}

void CircuitBreaker::Observe(const BreakerSample& epoch) {
  switch (state_) {
    case BreakerState::kClosed: {
      if (epoch.calls < config_.min_calls) {
        return;  // Too little traffic to judge the link either way.
      }
      const double calls = static_cast<double>(epoch.calls);
      const bool bad =
          static_cast<double>(epoch.undelivered) / calls >
              config_.undelivered_threshold ||
          static_cast<double>(epoch.corrupt_rejected) / calls >
              config_.corrupt_threshold;
      if (!bad) {
        consecutive_bad_ = 0;
        return;
      }
      if (++consecutive_bad_ >= config_.trip_after) {
        ++trips_;
        Open();
      }
      return;
    }
    case BreakerState::kOpen:
      if (hold_remaining_ > 0) {
        --hold_remaining_;
      }
      if (hold_remaining_ == 0) {
        state_ = BreakerState::kHalfOpen;  // Caller probes this epoch.
      }
      return;
    case BreakerState::kHalfOpen:
      // A probe verdict never arrived (e.g. no wire to probe); stay
      // half-open and let the caller try again next epoch.
      return;
  }
}

void CircuitBreaker::OnProbeResult(bool healthy) {
  if (state_ != BreakerState::kHalfOpen) {
    return;
  }
  ++probes_;
  if (healthy) {
    state_ = BreakerState::kClosed;
    consecutive_bad_ = 0;
    current_hold_ = 0;
    return;
  }
  ++reopens_;
  Open();
}

std::string CircuitBreaker::ToString() const {
  return StrFormat("breaker{%s, trips=%llu, reopens=%llu, probes=%llu}",
                   std::string(BreakerStateName(state_)).c_str(),
                   static_cast<unsigned long long>(trips_),
                   static_cast<unsigned long long>(reopens_),
                   static_cast<unsigned long long>(probes_));
}

}  // namespace coign
