#include "src/online/episode_detector.h"

namespace coign {

FaultEpisodeDetector::Verdict FaultEpisodeDetector::Observe(
    const EpochHealthSample& epoch) {
  Verdict verdict;

  const double fraction =
      epoch.calls > 0 ? static_cast<double>(epoch.faulted_calls) /
                            static_cast<double>(epoch.calls)
                      : (epoch.faulted_calls > 0 ? 1.0 : 0.0);
  const double latency_per_call =
      epoch.calls > 0 ? epoch.latency_seconds / static_cast<double>(epoch.calls) : 0.0;
  const double payload_per_byte =
      epoch.wire_bytes > 0
          ? epoch.payload_seconds / static_cast<double>(epoch.wire_bytes)
          : 0.0;

  if (primed_) {
    // Visible faults: baseline-relative so steady background loss is the
    // network, not an episode.
    const double fraction_trigger = config_.faulted_fraction_threshold +
                                    config_.baseline_multiplier * fraction_baseline_;
    if (fraction > fraction_trigger) {
      verdict.episode = Trigger::kFaultedFraction;
    } else if (latency_per_call_baseline_ > 0.0 &&
               latency_per_call >
                   config_.slowdown_multiplier * latency_per_call_baseline_) {
      verdict.episode = Trigger::kLatencySlowdown;
    } else if (payload_per_byte_baseline_ > 0.0 &&
               payload_per_byte >
                   config_.slowdown_multiplier * payload_per_byte_baseline_) {
      verdict.episode = Trigger::kPayloadSlowdown;
    }
  }

  if (verdict.episode != Trigger::kNone) {
    hold_remaining_ = config_.hold_epochs + 1;
  }
  if (hold_remaining_ > 0) {
    --hold_remaining_;
    verdict.quarantine = true;
    return verdict;
  }

  // Healthy epoch: absorb it. Rate baselines only move on epochs that
  // carried the corresponding traffic, so an idle epoch cannot drag the
  // per-call or per-byte baselines toward zero.
  const double alpha = config_.baseline_alpha;
  if (!primed_) {
    fraction_baseline_ = fraction;
    latency_per_call_baseline_ = latency_per_call;
    payload_per_byte_baseline_ = payload_per_byte;
    primed_ = true;
    return verdict;
  }
  fraction_baseline_ = (1.0 - alpha) * fraction_baseline_ + alpha * fraction;
  if (epoch.calls > 0) {
    latency_per_call_baseline_ =
        (1.0 - alpha) * latency_per_call_baseline_ + alpha * latency_per_call;
  }
  if (epoch.wire_bytes > 0) {
    payload_per_byte_baseline_ =
        (1.0 - alpha) * payload_per_byte_baseline_ + alpha * payload_per_byte;
  }
  return verdict;
}

}  // namespace coign
