#include "src/online/window.h"

#include <cmath>

namespace coign {
namespace {

// Scales a profiled histogram so its call count matches the window's
// decayed weight, preserving the profiled size distribution.
ExponentialHistogram ScaleHistogram(const ExponentialHistogram& h, double ratio) {
  ExponentialHistogram scaled;
  for (int bucket : h.NonEmptyBuckets()) {
    const uint64_t count =
        static_cast<uint64_t>(std::llround(static_cast<double>(h.CountAt(bucket)) * ratio));
    const uint64_t bytes =
        static_cast<uint64_t>(std::llround(static_cast<double>(h.BytesAt(bucket)) * ratio));
    if (count > 0) {
      scaled.AddBucket(bucket, count, bytes);
    }
  }
  return scaled;
}

}  // namespace

void SlidingWindowGraph::Record(const CallKey& key, uint64_t calls, bool remotable) {
  EpochCell& cell = epoch_[key];
  cell.calls += calls;
  if (!remotable) {
    cell.non_remotable += calls;
  }
}

void SlidingWindowGraph::RecordCompute(ClassificationId id, double seconds) {
  compute_epoch_[id] += seconds;
}

void SlidingWindowGraph::AdvanceEpoch() {
  ++epochs_;
  for (auto it = window_.begin(); it != window_.end();) {
    it->second.weight *= options_.decay;
    it->second.non_remotable *= options_.decay;
    if (it->second.weight < options_.prune_weight &&
        epoch_.find(it->first) == epoch_.end()) {
      it = window_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [key, cell] : epoch_) {
    Cell& decayed = window_[key];
    decayed.weight += static_cast<double>(cell.calls);
    decayed.non_remotable += static_cast<double>(cell.non_remotable);
  }
  epoch_.clear();

  for (auto it = compute_window_.begin(); it != compute_window_.end();) {
    it->second *= options_.decay;
    if (it->second <= 0.0 && compute_epoch_.find(it->first) == compute_epoch_.end()) {
      it = compute_window_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [id, seconds] : compute_epoch_) {
    compute_window_[id] += seconds;
  }
  compute_epoch_.clear();
}

void SlidingWindowGraph::DiscardEpoch() {
  ++epochs_;
  epoch_.clear();
  compute_epoch_.clear();
}

double SlidingWindowGraph::total_message_weight() const {
  double total = 0.0;
  for (const auto& [key, cell] : window_) {
    total += 2.0 * cell.weight;  // Request + reply per call.
  }
  return total;
}

double SlidingWindowGraph::WeightOf(const CallKey& key) const {
  auto it = window_.find(key);
  return it == window_.end() ? 0.0 : it->second.weight;
}

MessageCounts SlidingWindowGraph::WindowMessageCounts() const {
  MessageCounts counts;
  for (const auto& [key, cell] : window_) {
    const uint64_t rounded = static_cast<uint64_t>(std::llround(cell.weight));
    if (rounded > 0) {
      counts.Record(key.src, key.dst, rounded);
    }
  }
  return counts;
}

IccProfile SlidingWindowGraph::WindowedProfile(
    const IccProfile& base,
    const std::unordered_map<ClassificationId, ClassificationInfo>& live_classifications)
    const {
  IccProfile windowed;
  for (const auto& [id, info] : base.classifications()) {
    windowed.RecordClassification(info);
  }
  for (const auto& [id, info] : live_classifications) {
    if (base.FindClassification(id) == nullptr) {
      windowed.RecordClassification(info);
    }
  }
  auto known = [&](ClassificationId id) {
    return id == kNoClassification || base.FindClassification(id) != nullptr ||
           live_classifications.find(id) != live_classifications.end();
  };
  for (const auto& [key, cell] : window_) {
    if (cell.weight < options_.prune_weight) {
      continue;
    }
    if (!known(key.src) || !known(key.dst)) {
      continue;  // No metadata to place these by; drift still sees them.
    }
    // The live remotability observation is ground truth for both profiled
    // and unprofiled keys.
    const uint64_t non_remotable =
        static_cast<uint64_t>(std::llround(cell.non_remotable));
    auto it = base.calls().find(key);
    if (it != base.calls().end() && it->second.call_count() > 0) {
      const CallSummary& profiled = it->second;
      const double ratio = cell.weight / static_cast<double>(profiled.call_count());
      windowed.InjectCallSummary(key, ScaleHistogram(profiled.requests, ratio),
                                 ScaleHistogram(profiled.replies, ratio), non_remotable);
    } else {
      const uint64_t calls = static_cast<uint64_t>(std::llround(cell.weight));
      if (calls == 0) {
        continue;
      }
      ExponentialHistogram h;
      h.AddBucket(ExponentialHistogram::BucketFor(options_.default_message_bytes), calls,
                  calls * options_.default_message_bytes);
      windowed.InjectCallSummary(key, h, h, non_remotable);
    }
  }
  for (const auto& [id, seconds] : compute_window_) {
    if (seconds > 0.0) {
      windowed.RecordCompute(id, seconds);
    }
  }
  return windowed;
}

void SlidingWindowGraph::Clear() {
  window_.clear();
  epoch_.clear();
  compute_window_.clear();
  compute_epoch_.clear();
  epochs_ = 0;
}

}  // namespace coign
