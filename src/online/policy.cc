#include "src/online/policy.h"

#include "src/analysis/prediction.h"
#include "src/support/str_util.h"

namespace coign {

Result<RepartitionDecision> RepartitionPolicy::Evaluate(
    const IccProfile& windowed, const NetworkProfile& network, const Distribution& current,
    const std::unordered_map<ClassificationId, uint64_t>& live_instances) const {
  RepartitionDecision decision;
  decision.proposed = current;

  if (windowed.empty()) {
    decision.reject_cause = RejectCause::kEmptyWindow;
    decision.reason = "empty window";
    return decision;
  }
  const double window_messages = 2.0 * static_cast<double>(windowed.total_calls());
  if (window_messages < config_.min_window_messages) {
    decision.reject_cause = RejectCause::kInsufficientEvidence;
    decision.reason = StrFormat("insufficient evidence (%.0f messages in window)",
                                window_messages);
    return decision;
  }

  Result<AnalysisResult> analysis = engine_.Analyze(windowed, network, &cut_session_);
  if (!analysis.ok()) {
    return analysis.status();
  }

  // Classifications with no traffic in the window are disconnected nodes in
  // the cut graph — the min cut places them arbitrarily. No evidence means
  // no move: they keep their current placement (the rent-or-buy rule never
  // buys without demand). Without this, a text-only window would silently
  // re-home every idle table component, and the next table phase would pay
  // catastrophically.
  std::unordered_set<ClassificationId> active;
  for (const auto& [key, summary] : windowed.calls()) {
    active.insert(key.src);
    active.insert(key.dst);
  }
  decision.proposed = analysis->distribution;
  for (auto& [id, machine] : decision.proposed.placement) {
    if (active.find(id) == active.end()) {
      machine = current.MachineFor(id);
    }
  }
  decision.current_seconds = PredictCommunicationSeconds(windowed, current, network);
  decision.proposed_seconds =
      PredictCommunicationSeconds(windowed, analysis->distribution, network);

  // Migration bill: every live instance whose classification changes sides
  // ships its state in one message. State size comes from profiled
  // allocations when the window recorded any; the configured flat size is
  // only the fallback for classifications that never charged an allocation.
  for (const auto& [id, count] : live_instances) {
    if (count == 0) {
      continue;
    }
    if (decision.proposed.MachineFor(id) != current.MachineFor(id)) {
      const uint64_t state_bytes = ProfiledStateBytes(
          windowed.FindClassification(id), config_.state_bytes_per_instance);
      decision.instances_to_move += count;
      decision.migration_bytes += count * state_bytes;
      decision.migration_seconds +=
          static_cast<double>(count) *
          network.MessageSeconds(static_cast<double>(state_bytes));
    }
  }

  const double gain = decision.gain_seconds();
  if (gain <= 0.0) {
    decision.reject_cause = RejectCause::kNoImprovement;
    decision.reason = "current distribution already optimal for window";
    return decision;
  }
  if (decision.current_seconds > 0.0 &&
      gain / decision.current_seconds < config_.min_relative_gain) {
    decision.reject_cause = RejectCause::kHysteresis;
    decision.reason = StrFormat("hysteresis: relative gain %.1f%% below %.1f%% threshold",
                                100.0 * gain / decision.current_seconds,
                                100.0 * config_.min_relative_gain);
    return decision;
  }
  // Rent-or-buy over two ways of buying: migrate now (every window of the
  // horizon runs on the new cut, minus the state-transfer bill) or adopt
  // lazily (live instances rent the old cut through the first window; only
  // later windows — fresh instances placed by the factories — gain).
  const double buy_cost = decision.migration_seconds * config_.migration_safety;
  const double migrate_net = gain * config_.horizon_windows - buy_cost;
  const double adopt_net = gain * (config_.horizon_windows - 1.0);
  if (migrate_net <= 0.0 && adopt_net <= 0.0) {
    decision.reject_cause = RejectCause::kMigrationCost;
    decision.reason =
        StrFormat("keep renting: horizon gain %.4fs under move cost %.4fs",
                  gain * config_.horizon_windows, buy_cost);
    return decision;
  }

  decision.adopt = true;
  if (migrate_net > adopt_net) {
    decision.migrate = true;
    decision.reason = StrFormat(
        "repartition: window gain %.4fs/window over horizon %.1f beats move cost %.4fs",
        gain, config_.horizon_windows, buy_cost);
  } else {
    decision.reason = StrFormat(
        "adopt lazily: gain %.4fs/window, move cost %.4fs not worth paying up front",
        gain, buy_cost);
  }
  return decision;
}

}  // namespace coign
