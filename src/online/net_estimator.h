// Live network-cost estimation for the online repartitioner.
//
// The shipped cut was priced with a network profile fitted offline
// (paper §2's statistical sampling). A long-running adaptive system keeps
// that estimate current by watching what its own remote calls actually
// cost. The hardened transport reports every charged second split into a
// latency share (per-message overhead, timeouts, backoff, penalties) and
// a payload share (bytes over the wire), so each epoch refits both cost
// terms independently: latency seconds over message count feeds the
// per-message EWMA, payload seconds over byte count feeds the per-byte
// EWMA. This is the channel through which a hostile network can poison
// the adaptive loop — a latency spike drags cut pricing toward
// message-minimal cuts, a bandwidth collapse toward byte-minimal ones —
// and therefore exactly what the quarantine rule must starve during
// detected fault episodes.

#ifndef COIGN_SRC_ONLINE_NET_ESTIMATOR_H_
#define COIGN_SRC_ONLINE_NET_ESTIMATOR_H_

#include <cstdint>

#include "src/net/network_profiler.h"

namespace coign {

class LiveNetworkEstimator {
 public:
  // `alpha` is the EWMA weight of the newest epoch (0 = frozen at fitted).
  explicit LiveNetworkEstimator(NetworkProfile fitted, double alpha = 0.4)
      : fitted_(fitted), live_(fitted), alpha_(alpha) {}

  // Folds one epoch of observed call traffic into the live estimate.
  // Epochs without remote calls carry no signal and are ignored; the
  // per-byte term only updates when the epoch moved payload bytes.
  void ObserveEpoch(uint64_t remote_calls, uint64_t wire_bytes, double latency_seconds,
                    double payload_seconds);

  const NetworkProfile& fitted() const { return fitted_; }
  const NetworkProfile& live() const { return live_; }
  // Live cost relative to the fitted profile (worst of the two terms);
  // 1 = healthy.
  double slowdown() const {
    const double latency_ratio = fitted_.per_message_seconds > 0.0
                                     ? live_.per_message_seconds /
                                           fitted_.per_message_seconds
                                     : 1.0;
    const double byte_ratio = fitted_.seconds_per_byte > 0.0
                                  ? live_.seconds_per_byte / fitted_.seconds_per_byte
                                  : 1.0;
    return latency_ratio > byte_ratio ? latency_ratio : byte_ratio;
  }
  uint64_t epochs_observed() const { return epochs_observed_; }

 private:
  NetworkProfile fitted_;
  NetworkProfile live_;
  double alpha_;
  uint64_t epochs_observed_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_ONLINE_NET_ESTIMATOR_H_
