#include "src/online/measure_online.h"

#include <memory>

#include "src/sim/accountant.h"

namespace coign {

std::vector<OnlinePhase> CyclicWorkload(const std::vector<std::string>& scenarios,
                                        int repetitions, int cycles) {
  std::vector<OnlinePhase> workload;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (const std::string& id : scenarios) {
      workload.push_back({id, repetitions});
    }
  }
  return workload;
}

Result<OnlineRunResult> MeasureOnlineRun(Application& app,
                                         const std::vector<OnlinePhase>& workload,
                                         const ConfigurationRecord& config,
                                         const IccProfile& base_profile,
                                         const OnlineMeasurementOptions& options) {
  ObjectSystem system;
  COIGN_RETURN_IF_ERROR(app.Install(&system));

  CoignRuntime runtime(&system, config);
  NetworkAccountant accountant(&system, Transport(options.network));
  accountant.transport().SetChecksums(options.checksums);
  if (options.faults != nullptr) {
    accountant.AttachFaults(options.faults, options.retry);
  }
  if (options.obs != nullptr) {
    // Trace timestamps are the run's modeled execution clock; unbind it
    // before the accountant dies so late writes fall back to logical ticks.
    options.obs->tracer().SetClock([&accountant] { return accountant.execution_seconds(); });
    accountant.transport().SetObservability(options.obs);
  }
  struct ClockGuard {
    Observability* obs;
    ~ClockGuard() {
      if (obs != nullptr) {
        obs->tracer().SetClock(nullptr);
      }
    }
  } clock_guard{options.obs};

  std::unique_ptr<OnlineRepartitioner> repartitioner;
  if (options.adaptive) {
    repartitioner = std::make_unique<OnlineRepartitioner>(
        &system, &runtime, base_profile, options.fitted, options.online);
    repartitioner->SetObservability(options.obs);
    if (options.faults != nullptr) {
      repartitioner->SetTransportProbe([&accountant] { return accountant.health(); });
      // Journaled migration: state copies ride the same faulted transport
      // as the calls, and ReliableRoundTrip already advances the fault
      // clock — charge clocks only, no second advance.
      repartitioner->SetMigrationTransport(&accountant.transport(), nullptr);
      repartitioner->SetMigrationCharge([&accountant](uint64_t bytes, double seconds) {
        accountant.ChargeMigrationReceipts(bytes, seconds);
      });
      if (options.migration_crash_gate) {
        repartitioner->SetMigrationCrashGate(options.migration_crash_gate);
      }
    } else {
      repartitioner->SetMigrationCharge([&accountant](uint64_t bytes, double seconds) {
        accountant.ChargeMigration(bytes, seconds);
      });
    }
  }

  Rng rng(options.scenario_seed);
  for (const OnlinePhase& phase : workload) {
    Result<Scenario> scenario = app.FindScenario(phase.scenario_id);
    if (!scenario.ok()) {
      return scenario.status();
    }
    for (int rep = 0; rep < phase.repetitions; ++rep) {
      runtime.BeginScenario();
      COIGN_RETURN_IF_ERROR(scenario->run(system, rng));
      // Epoch boundary before teardown: the execution's instances are
      // still live, so an accepted repartition moves real state.
      if (repartitioner != nullptr) {
        COIGN_RETURN_IF_ERROR(repartitioner->EndEpoch());
      }
      system.DestroyAll();
    }
  }

  OnlineRunResult result;
  result.run.communication_seconds = accountant.communication_seconds();
  result.run.compute_seconds = accountant.compute_seconds();
  result.run.execution_seconds = accountant.execution_seconds();
  result.run.total_calls = accountant.total_calls();
  result.run.remote_calls = accountant.remote_calls();
  result.run.remote_bytes = accountant.remote_bytes();
  result.transport = accountant.health();
  result.final_distribution = runtime.config().distribution;
  if (repartitioner != nullptr) {
    result.online = repartitioner->stats();
    result.final_drift = repartitioner->last_drift();
  }
  return result;
}

}  // namespace coign
