#include "src/online/net_estimator.h"

namespace coign {

void LiveNetworkEstimator::ObserveEpoch(uint64_t remote_calls, uint64_t wire_bytes,
                                        double latency_seconds, double payload_seconds) {
  if (remote_calls == 0) {
    return;
  }
  // Two messages per synchronous round trip.
  const double observed_per_message =
      latency_seconds / (2.0 * static_cast<double>(remote_calls));
  live_.per_message_seconds =
      (1.0 - alpha_) * live_.per_message_seconds + alpha_ * observed_per_message;
  if (wire_bytes > 0) {
    const double observed_per_byte = payload_seconds / static_cast<double>(wire_bytes);
    live_.seconds_per_byte =
        (1.0 - alpha_) * live_.seconds_per_byte + alpha_ * observed_per_byte;
  }
  ++epochs_observed_;
}

}  // namespace coign
