#include "src/online/migration_journal.h"

#include <sstream>

#include "src/support/str_util.h"

namespace coign {

std::string_view MigrationPhaseName(MigrationPhase phase) {
  switch (phase) {
    case MigrationPhase::kIntent:
      return "intent";
    case MigrationPhase::kPrepared:
      return "prepared";
    case MigrationPhase::kCommitted:
      return "committed";
    case MigrationPhase::kRolledBack:
      return "rolled-back";
  }
  return "unknown";
}

namespace {

Result<MigrationPhase> PhaseByName(const std::string& name) {
  if (name == "intent") {
    return MigrationPhase::kIntent;
  }
  if (name == "prepared") {
    return MigrationPhase::kPrepared;
  }
  if (name == "committed") {
    return MigrationPhase::kCommitted;
  }
  if (name == "rolled-back") {
    return MigrationPhase::kRolledBack;
  }
  return InvalidArgumentError("unknown migration phase: " + name);
}

}  // namespace

std::string MigrationRecord::ToString() const {
  return StrFormat("%s inst=%llu m%d->m%d %lluB",
                   std::string(MigrationPhaseName(phase)).c_str(),
                   static_cast<unsigned long long>(instance), from, to,
                   static_cast<unsigned long long>(state_bytes));
}

void MigrationJournal::Append(const MigrationRecord& record) {
  last_index_[record.instance] = records_.size();
  records_.push_back(record);
}

void MigrationJournal::Clear() {
  records_.clear();
  last_index_.clear();
}

const MigrationRecord* MigrationJournal::LastFor(InstanceId instance) const {
  auto it = last_index_.find(instance);
  return it == last_index_.end() ? nullptr : &records_[it->second];
}

std::vector<MigrationRecord> MigrationJournal::InFlight() const {
  std::vector<MigrationRecord> in_flight;
  for (size_t i = 0; i < records_.size(); ++i) {
    const MigrationRecord& record = records_[i];
    auto it = last_index_.find(record.instance);
    if (it == last_index_.end() || it->second != i) {
      continue;  // Superseded by a later record.
    }
    if (record.phase == MigrationPhase::kIntent ||
        record.phase == MigrationPhase::kPrepared) {
      in_flight.push_back(record);
    }
  }
  return in_flight;
}

std::string MigrationJournal::Serialize() const {
  std::string out = "migration-journal v1\n";
  for (const MigrationRecord& record : records_) {
    out += StrFormat("rec %s %llu %d %d %llu\n",
                     std::string(MigrationPhaseName(record.phase)).c_str(),
                     static_cast<unsigned long long>(record.instance), record.from,
                     record.to, static_cast<unsigned long long>(record.state_bytes));
  }
  return out;
}

Result<MigrationJournal> MigrationJournal::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "migration-journal v1") {
    return InvalidArgumentError("migration journal: bad header");
  }
  MigrationJournal journal;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag, phase_name;
    MigrationRecord record;
    unsigned long long instance = 0, bytes = 0;
    if (!(fields >> tag >> phase_name >> instance >> record.from >> record.to >> bytes) ||
        tag != "rec") {
      return InvalidArgumentError("migration journal: bad record: " + line);
    }
    Result<MigrationPhase> phase = PhaseByName(phase_name);
    if (!phase.ok()) {
      return phase.status();
    }
    record.phase = *phase;
    record.instance = static_cast<InstanceId>(instance);
    record.state_bytes = static_cast<uint64_t>(bytes);
    journal.Append(record);
  }
  return journal;
}

std::string MigrationJournal::ToString() const {
  std::string out = StrFormat("journal{%zu records", records_.size());
  const std::vector<MigrationRecord> in_flight = InFlight();
  if (!in_flight.empty()) {
    out += StrFormat(", %zu in flight", in_flight.size());
  }
  out += "}";
  return out;
}

}  // namespace coign
