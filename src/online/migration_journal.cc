#include "src/online/migration_journal.h"

#include <fstream>
#include <sstream>

#include "src/support/crc32c.h"
#include "src/support/str_util.h"

namespace coign {

std::string_view MigrationPhaseName(MigrationPhase phase) {
  switch (phase) {
    case MigrationPhase::kIntent:
      return "intent";
    case MigrationPhase::kPrepared:
      return "prepared";
    case MigrationPhase::kCommitted:
      return "committed";
    case MigrationPhase::kRolledBack:
      return "rolled-back";
  }
  return "unknown";
}

namespace {

Result<MigrationPhase> PhaseByName(const std::string& name) {
  if (name == "intent") {
    return MigrationPhase::kIntent;
  }
  if (name == "prepared") {
    return MigrationPhase::kPrepared;
  }
  if (name == "committed") {
    return MigrationPhase::kCommitted;
  }
  if (name == "rolled-back") {
    return MigrationPhase::kRolledBack;
  }
  return InvalidArgumentError("unknown migration phase: " + name);
}

}  // namespace

std::string MigrationRecord::ToString() const {
  return StrFormat("%s inst=%llu m%d->m%d %lluB",
                   std::string(MigrationPhaseName(phase)).c_str(),
                   static_cast<unsigned long long>(instance), from, to,
                   static_cast<unsigned long long>(state_bytes));
}

void MigrationJournal::Append(const MigrationRecord& record) {
  last_index_[record.instance] = records_.size();
  records_.push_back(record);
}

void MigrationJournal::Clear() {
  records_.clear();
  last_index_.clear();
}

const MigrationRecord* MigrationJournal::LastFor(InstanceId instance) const {
  auto it = last_index_.find(instance);
  return it == last_index_.end() ? nullptr : &records_[it->second];
}

std::vector<MigrationRecord> MigrationJournal::InFlight() const {
  std::vector<MigrationRecord> in_flight;
  for (size_t i = 0; i < records_.size(); ++i) {
    const MigrationRecord& record = records_[i];
    auto it = last_index_.find(record.instance);
    if (it == last_index_.end() || it->second != i) {
      continue;  // Superseded by a later record.
    }
    if (record.phase == MigrationPhase::kIntent ||
        record.phase == MigrationPhase::kPrepared) {
      in_flight.push_back(record);
    }
  }
  return in_flight;
}

std::string MigrationJournal::Serialize() const {
  // v2: each record line ends with the CRC32C of its own body, so the
  // loader can localize mid-file damage to single records instead of
  // rejecting the whole journal.
  std::string out = "migration-journal v2\n";
  for (const MigrationRecord& record : records_) {
    const std::string body =
        StrFormat("rec %s %llu %d %d %llu",
                  std::string(MigrationPhaseName(record.phase)).c_str(),
                  static_cast<unsigned long long>(record.instance), record.from,
                  record.to, static_cast<unsigned long long>(record.state_bytes));
    out += body;
    out += StrFormat(" %08x\n", Crc32c(body));
  }
  return out;
}

namespace {

// Sets `truncated` when the line ends mid-record — fewer fields than a
// complete record carries. A line with all its fields but unusable contents
// (bad tag, unknown phase) is corruption, never tearing: a torn write can
// only lose a suffix, not rewrite completed fields.
Result<MigrationRecord> ParseRecordLine(const std::string& line, bool* truncated) {
  *truncated = false;
  std::istringstream fields(line);
  std::string tag, phase_name;
  MigrationRecord record;
  unsigned long long instance = 0, bytes = 0;
  if (!(fields >> tag >> phase_name >> instance >> record.from >> record.to >> bytes)) {
    *truncated = true;
    return InvalidArgumentError("migration journal: truncated record: " + line);
  }
  if (tag != "rec") {
    return InvalidArgumentError("migration journal: bad record: " + line);
  }
  Result<MigrationPhase> phase = PhaseByName(phase_name);
  if (!phase.ok()) {
    return phase.status();
  }
  record.phase = *phase;
  record.instance = static_cast<InstanceId>(instance);
  record.state_bytes = static_cast<uint64_t>(bytes);
  return record;
}

// Parses the 8-hex-digit CRC field v2 lines end with.
bool ParseCrcHex(const std::string& hex, uint32_t* out) {
  if (hex.size() != 8) {
    return false;
  }
  uint32_t bits = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    bits = (bits << 4) | static_cast<uint32_t>(digit);
  }
  *out = bits;
  return true;
}

}  // namespace

Result<MigrationJournal> MigrationJournal::Parse(const std::string& text) {
  // Durability boundary: a record exists only once its terminating newline
  // is on disk. A crash mid-append leaves a torn tail — bytes after the
  // last newline, or a final terminated line whose fields were cut short —
  // and recovery must treat exactly that suffix as never written. Earlier
  // records are covered by later newlines, so damage there is corruption,
  // not tearing, and stays a hard error.
  const size_t last_newline = text.find_last_of('\n');
  bool torn = last_newline == std::string::npos || last_newline + 1 < text.size();
  const std::string body =
      last_newline == std::string::npos ? "" : text.substr(0, last_newline + 1);

  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line) ||
      (line != "migration-journal v1" && line != "migration-journal v2")) {
    return InvalidArgumentError("migration journal: bad header");
  }
  const bool checksummed = line == "migration-journal v2";
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  MigrationJournal journal;
  for (size_t i = 0; i < lines.size(); ++i) {
    const bool last = i + 1 == lines.size();
    if (!checksummed) {
      // v1: no per-record checksum, so mid-file damage is unlocatable and
      // stays a hard error; only the cut-short final record is tearing.
      bool truncated = false;
      Result<MigrationRecord> record = ParseRecordLine(lines[i], &truncated);
      if (!record.ok()) {
        if (truncated && last) {
          torn = true;
          break;
        }
        return record.status();
      }
      journal.Append(*record);
      continue;
    }
    // v2: verify the trailing CRC before trusting a word of the record.
    // A final line whose CRC field never finished is a torn append; any
    // earlier line that fails to verify — or parses to garbage under a
    // valid checksum — is corruption, skipped and counted so the caller
    // can quarantine instead of losing the whole journal.
    const size_t space = lines[i].find_last_of(' ');
    uint32_t expected = 0;
    if (space == std::string::npos ||
        !ParseCrcHex(lines[i].substr(space + 1), &expected)) {
      if (last) {
        torn = true;
        break;
      }
      ++journal.corrupt_skipped_;
      continue;
    }
    const std::string record_body = lines[i].substr(0, space);
    bool truncated = false;
    if (Crc32c(record_body) != expected) {
      ++journal.corrupt_skipped_;
      continue;
    }
    Result<MigrationRecord> record = ParseRecordLine(record_body, &truncated);
    if (!record.ok()) {
      ++journal.corrupt_skipped_;
      continue;
    }
    journal.Append(*record);
  }
  journal.recovered_torn_tail_ = torn;
  return journal;
}

Status MigrationJournal::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("migration journal: cannot open for write: " + path);
  }
  out << Serialize();
  out.flush();
  if (!out) {
    return InternalError("migration journal: write failed: " + path);
  }
  return Status::Ok();
}

Result<MigrationJournal> MigrationJournal::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("migration journal: cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

std::string MigrationJournal::ToString() const {
  std::string out = StrFormat("journal{%zu records", records_.size());
  const std::vector<MigrationRecord> in_flight = InFlight();
  if (!in_flight.empty()) {
    out += StrFormat(", %zu in flight", in_flight.size());
  }
  if (corrupt_skipped_ > 0) {
    out += StrFormat(", %zu corrupt skipped", corrupt_skipped_);
  }
  out += "}";
  return out;
}

}  // namespace coign
