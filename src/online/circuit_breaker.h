// The per-link circuit breaker behind the repartitioner's safe mode.
//
// Quarantine (episode_detector.h) protects the *evidence*: a faulted epoch
// must not teach the estimator or the window. The breaker protects the
// *plan*: when the wire itself has become untrustworthy — retry budgets
// exhausting, checksummed deliveries bouncing — continuing to run a
// distributed cut means every remote call gambles on a poisoned link. The
// breaker watches the same per-epoch transport-health deltas and runs the
// classic three-state machine:
//
//   closed    normal operation; `trip_after` consecutive bad epochs open it.
//   open      the link is presumed sick for `open_epochs` epoch boundaries;
//             the repartitioner degrades to the all-local plan (zero remote
//             ICC — the one cut that is always realizable) for the duration.
//   half-open the hold expired; one probe round decides. A healthy probe
//             closes the breaker (the distributed plan is re-promoted); a
//             failed probe re-opens it with the hold doubled, up to
//             `max_open_epochs` — flapping links buy geometrically longer
//             quiet periods.
//
// Everything is driven by the simulated epoch clock and the caller's probe
// verdicts; the breaker itself draws no randomness, so same seed means the
// same trip/probe/close sequence.

#ifndef COIGN_SRC_ONLINE_CIRCUIT_BREAKER_H_
#define COIGN_SRC_ONLINE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace coign {

struct BreakerConfig {
  bool enabled = false;
  // An epoch votes "bad" when undelivered/calls or corrupt_rejected/calls
  // crosses its threshold. Undelivered calls exhausted their whole retry
  // budget, so even a small fraction marks a very sick link; corrupt
  // rejects are retried within the budget and need a higher rate to mean
  // the link (and not one unlucky burst) is at fault.
  double undelivered_threshold = 0.05;
  double corrupt_threshold = 0.20;
  // Epochs with fewer calls than this cast no vote either way (too little
  // traffic to judge a link).
  uint64_t min_calls = 4;
  // Consecutive bad epochs before the breaker opens.
  int trip_after = 2;
  // Epoch boundaries the breaker holds open before probing; doubles on
  // every failed probe, capped at max_open_epochs.
  uint64_t open_epochs = 2;
  uint64_t max_open_epochs = 16;
  // Synthetic round trips per half-open probe and their payload size.
  int probe_calls = 4;
  uint64_t probe_bytes = 256;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string_view BreakerStateName(BreakerState state);

// One epoch's wire evidence, as deltas of TransportHealth counters.
struct BreakerSample {
  uint64_t calls = 0;
  uint64_t undelivered = 0;
  uint64_t corrupt_rejected = 0;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config) : config_(config) {}

  // Advances one epoch boundary with that epoch's evidence. In the closed
  // state bad epochs accumulate toward a trip; in the open state the hold
  // counts down and expiry moves to half-open. Call once per epoch, then
  // check WantsProbe().
  void Observe(const BreakerSample& epoch);

  // True in the half-open state: the caller should run a probe round and
  // report the verdict.
  bool WantsProbe() const { return state_ == BreakerState::kHalfOpen; }

  // Half-open probe verdict: healthy closes the breaker and resets the
  // hold; unhealthy re-opens with the hold doubled (capped).
  void OnProbeResult(bool healthy);

  BreakerState state() const { return state_; }
  uint64_t trips() const { return trips_; }          // closed -> open.
  uint64_t reopens() const { return reopens_; }      // failed probes.
  uint64_t probes() const { return probes_; }        // probe rounds judged.
  const BreakerConfig& config() const { return config_; }

  std::string ToString() const;

 private:
  void Open();

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_bad_ = 0;
  uint64_t hold_remaining_ = 0;
  uint64_t current_hold_ = 0;  // Doubles per re-open; reset on close.
  uint64_t trips_ = 0;
  uint64_t reopens_ = 0;
  uint64_t probes_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_ONLINE_CIRCUIT_BREAKER_H_
