// The migration write-ahead journal: the durable record the two-phase
// live migrator appends to before every state change it makes.
//
// One migration writes, per moved instance, the sequence
//   intent -> prepared -> committed
// where `prepared` means the destination acked the state copy and
// `committed` is the commit point: once the committed record is journaled,
// the residency flip is a fact and crash recovery redoes it; before that
// record, recovery rolls the instance back to its source and the copy at
// the destination is discarded. A copy that exhausted its retries is
// journaled `rolled-back` immediately — the instance never left its
// source. An instance therefore can never end up double-resident or lost:
// the journal's last record for it names exactly one authoritative home.
//
// The journal serializes to a line-oriented text form (Serialize/Parse
// round-trip exactly) so a service can persist it across restarts; the
// simulation keeps it in memory and "crashes" by abandoning the migrator
// mid-protocol, which leaves precisely the state a real crash would.

#ifndef COIGN_SRC_ONLINE_MIGRATION_JOURNAL_H_
#define COIGN_SRC_ONLINE_MIGRATION_JOURNAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/com/types.h"
#include "src/support/status.h"

namespace coign {

enum class MigrationPhase {
  kIntent,     // Move decided; copy not yet acked.
  kPrepared,   // Destination acked the state copy.
  kCommitted,  // Commit point: the destination is authoritative.
  kRolledBack, // Copy abandoned; the source is (still) authoritative.
};

std::string_view MigrationPhaseName(MigrationPhase phase);

struct MigrationRecord {
  MigrationPhase phase = MigrationPhase::kIntent;
  InstanceId instance = kNoInstance;
  MachineId from = kClientMachine;
  MachineId to = kServerMachine;
  uint64_t state_bytes = 0;

  std::string ToString() const;
};

class MigrationJournal {
 public:
  void Append(const MigrationRecord& record);
  void Clear();

  const std::vector<MigrationRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  size_t size() const { return records_.size(); }

  // The last journaled record for `instance`, or null if never journaled.
  const MigrationRecord* LastFor(InstanceId instance) const;

  // Records that are an instance's *last* word and still in flight
  // (intent/prepared) — what crash recovery must roll back. Append order.
  std::vector<MigrationRecord> InFlight() const;

  // Exact text round-trip for durability across restarts. Serialize writes
  // the v2 form: every record line carries a trailing CRC32C of its own
  // text. Parse reads v1 (no CRCs) and v2. Both tolerate a torn tail — a
  // crash mid-append leaves bytes after the final newline or a truncated
  // final record, and either is dropped (it was never durably written);
  // recovered_torn_tail() reports whether a tail was dropped. Mid-file
  // damage diverges by version: v1 has no way to localize it and fails
  // hard; v2 skips exactly the records whose CRC or fields no longer
  // check out and counts them in corrupt_skipped() — the caller decides
  // whether to quarantine.
  std::string Serialize() const;
  static Result<MigrationJournal> Parse(const std::string& text);

  // Snapshot persistence across process restarts (plan-cache pattern):
  // SaveToFile writes Serialize() atomically enough for the simulator;
  // LoadFromFile parses with torn-tail tolerance.
  Status SaveToFile(const std::string& path) const;
  static Result<MigrationJournal> LoadFromFile(const std::string& path);

  bool recovered_torn_tail() const { return recovered_torn_tail_; }
  // Records dropped by the v2 loader because their checksum (or their
  // contents under a valid checksum) no longer verified.
  size_t corrupt_skipped() const { return corrupt_skipped_; }

  std::string ToString() const;

 private:
  std::vector<MigrationRecord> records_;
  // Instance -> index of its last record, for O(1) outcome queries.
  std::unordered_map<InstanceId, size_t> last_index_;
  bool recovered_torn_tail_ = false;
  size_t corrupt_skipped_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_ONLINE_MIGRATION_JOURNAL_H_
