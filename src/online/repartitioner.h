// The online repartitioner: closes the loop the paper's §6 leaves open.
//
// Attached beside a distributed-mode CoignRuntime, it watches every
// inter-component call (MessageCounts-style, O(1) per call) through the
// sliding-window accountant. At each epoch boundary it runs the drift
// detector against the profile the current distribution was computed from;
// when drift fires (or on a configured periodic re-cut), it re-runs the
// analysis engine over the windowed graph and asks the rent-or-buy policy
// whether the better cut is worth the migration bill. Accepted cuts are
// realized immediately: live instances are moved by the migrator (state
// bytes charged to the network) and the runtime adopts the new
// distribution so its component factories place future instances per the
// new cut.

#ifndef COIGN_SRC_ONLINE_REPARTITIONER_H_
#define COIGN_SRC_ONLINE_REPARTITIONER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/com/object_system.h"
#include "src/net/network_profiler.h"
#include "src/net/transport.h"
#include "src/online/circuit_breaker.h"
#include "src/online/episode_detector.h"
#include "src/online/migrator.h"
#include "src/online/net_estimator.h"
#include "src/online/policy.h"
#include "src/online/window.h"
#include "src/runtime/drift.h"
#include "src/runtime/rte.h"

namespace coign {

struct OnlineOptions {
  WindowOptions window;
  RepartitionConfig policy;
  DriftOptions drift;
  AnalysisOptions analysis;
  // Re-evaluate the cut every this many epochs even without drift;
  // 0 = drift-driven only.
  uint64_t epochs_per_recut = 0;
  // Epochs to sit still after an accepted repartition (anti-thrash).
  uint64_t cooldown_epochs = 1;
  // Fault-episode quarantine (only effective with a transport probe set).
  QuarantineConfig quarantine;
  // Per-link circuit breaker + degrade-to-local safe mode (only effective
  // with a transport probe set; off by default). While the breaker is
  // open the repartitioner lazily adopts the all-local plan — zero remote
  // ICC, the one cut that needs no healthy wire — and skips evaluations
  // and migration resumes; half-open probes re-promote the saved
  // distributed plan once the link heals.
  BreakerConfig breaker;
  // Journaled-migration knobs (effective with SetMigrationTransport).
  uint64_t migration_ack_bytes = 64;
  int migration_copy_attempts = 2;
  // Epoch boundaries an interrupted/incomplete migration may resume at
  // before recovery abandons it (stragglers rent the old placement).
  uint64_t max_migration_resumes = 8;
  // Non-empty: the pending migration journal is snapshotted to this file
  // after every journaled step, an existing file is recovered from at
  // construction (torn tails tolerated), and the file is removed when the
  // migration completes or is abandoned.
  std::string journal_path;
};

struct OnlineStats {
  uint64_t epochs = 0;
  uint64_t drift_flags = 0;     // Epochs where DetectDrift recommended action.
  uint64_t evaluations = 0;     // Policy evaluations (cut re-runs).
  uint64_t repartitions = 0;    // Accepted, applied repartitions (any kind).
  uint64_t lazy_adoptions = 0;  // Repartitions applied without migrating live state.
  uint64_t hysteresis_rejections = 0;
  uint64_t cost_rejections = 0;  // Rent-or-buy kept the current cut.
  uint64_t instances_moved = 0;
  uint64_t migration_bytes = 0;
  double migration_seconds = 0.0;
  uint64_t fault_episodes = 0;      // Epochs where the fault detector fired.
  uint64_t quarantined_epochs = 0;  // Epochs discarded by the quarantine rule.
  // Journaled-migration path (transport-backed migrations only).
  uint64_t interrupted_migrations = 0;  // Crash-gate hits mid-protocol.
  uint64_t migration_resumes = 0;       // Epoch boundaries that re-entered one.
  uint64_t migration_rollbacks = 0;     // In-flight instances rolled back.
  uint64_t migration_wasted_bytes = 0;  // Retransmitted/discarded state bytes.
  uint64_t duplicates_suppressed = 0;   // Copy retries deduped at the receiver.
  // Circuit-breaker / safe-mode path (only with options.breaker.enabled).
  uint64_t breaker_trips = 0;       // closed -> open transitions.
  uint64_t breaker_reopens = 0;     // Half-open probes that failed.
  uint64_t safe_mode_entries = 0;   // Degrades to the all-local plan.
  uint64_t safe_mode_exits = 0;     // Distributed-plan re-promotions.
  uint64_t safe_mode_epochs = 0;    // Epochs spent degraded.
  // Final live-estimate / fitted per-message ratio (1.0 without a probe).
  double live_slowdown = 1.0;

  std::string ToString() const;
};

class OnlineRepartitioner : public ObjectSystem::Interceptor {
 public:
  // Charged once per applied migration (e.g. into the NetworkAccountant so
  // measured runs pay for their own adaptation).
  using MigrationChargeFn = std::function<void(uint64_t bytes, double seconds)>;

  // `runtime` must be a distributed-mode runtime attached to `system`;
  // `base_profile` is the profile its distribution was computed from. All
  // pointers/references must outlive the repartitioner. Attaches as an
  // interceptor on construction.
  OnlineRepartitioner(ObjectSystem* system, CoignRuntime* runtime,
                      const IccProfile& base_profile, NetworkProfile network,
                      OnlineOptions options = {});
  ~OnlineRepartitioner() override;

  OnlineRepartitioner(const OnlineRepartitioner&) = delete;
  OnlineRepartitioner& operator=(const OnlineRepartitioner&) = delete;

  void SetMigrationCharge(MigrationChargeFn charge) { charge_ = std::move(charge); }

  // Cumulative transport health, polled per call and per epoch (the network
  // accountant's health() is the canonical source). Setting a probe turns
  // on the fault-aware path: retry-inflated wire traffic weights the
  // window, epochs are screened by the quarantine rule, and cut pricing
  // switches to a live network estimate fed by healthy epochs.
  using TransportProbeFn = std::function<TransportHealth()>;
  void SetTransportProbe(TransportProbeFn probe);

  // Null until a transport probe is set.
  const LiveNetworkEstimator* net_estimator() const { return estimator_.get(); }

  // Switches migration to the journaled two-phase path through `transport`
  // (both must outlive the repartitioner; `jitter_rng` may be null): state
  // copies travel the hardened wire, every step is write-ahead journaled,
  // and an interrupted migration re-enters the policy loop — each healthy
  // epoch boundary runs crash recovery from the journal and re-attempts
  // the stragglers, up to max_migration_resumes. Quarantined epochs do not
  // resume: recovery too waits out detected fault episodes.
  void SetMigrationTransport(Transport* transport, Rng* jitter_rng) {
    migration_transport_ = transport;
    migration_jitter_ = jitter_rng;
  }

  // Simulated coordinator crash for chaos runs: forwarded to the migrator
  // on every journaled migration (see LiveMigrator::CrashGate).
  void SetMigrationCrashGate(LiveMigrator::CrashGate gate) {
    crash_gate_ = std::move(gate);
  }

  // Epoch spans, recut-decision/quarantine instants, migration counters,
  // mincut.* solver-work counters, and flight-recorder dumps on quarantine
  // entry and migration abandonment. `obs` is not owned; null disables
  // instrumentation.
  void SetObservability(Observability* obs);

  // Breaker state for reports and tests; safe_mode() is true while the
  // all-local degraded plan is adopted.
  const CircuitBreaker& breaker() const { return breaker_; }
  bool safe_mode() const { return safe_mode_; }

  bool has_pending_migration() const { return pending_.has_value(); }
  // The pending migration's journal; null when none is in flight.
  const MigrationJournal* pending_journal() const {
    return pending_ ? &pending_->journal : nullptr;
  }

  // Marks an epoch boundary: folds the window, runs drift detection, and
  // repartitions if the policy accepts. Call while the epoch's instances
  // are still live so migration has real state to move.
  Status EndEpoch();

  const OnlineStats& stats() const { return stats_; }
  const DriftReport& last_drift() const { return last_drift_; }
  const RepartitionDecision& last_decision() const { return last_decision_; }
  const Distribution& distribution() const { return runtime_->config().distribution; }
  const SlidingWindowGraph& window() const { return window_; }

  // Classifications observed live that the base profile never saw —
  // the §6 case: usage differing from the profiled scenarios.
  const std::unordered_map<ClassificationId, ClassificationInfo>& live_classifications()
      const {
    return live_registry_;
  }

  // --- ObjectSystem::Interceptor -------------------------------------------
  void OnInstantiated(const ClassDesc& cls, InstanceId id, InstanceId creator) override;
  void OnCallEnd(const ObjectSystem::CallEvent& event, const Status& status) override;
  void OnCompute(InstanceId instance, double seconds) override;

 private:
  ClassificationId ClassificationOf(InstanceId instance) const;
  LiveMigrator MakeJournaledMigrator() const;
  // Folds one journaled migration report into stats and the charge hook.
  void AbsorbMigrationReport(const MigrationReport& report);
  // Recovery + re-attempt of the pending migration at an epoch boundary.
  Status ResumePendingMigration();
  // Snapshots (or removes, when none is pending) the journal file.
  void PersistPendingJournal() const;
  // Gives up on the pending migration: stragglers rent the old placement.
  void AbandonPendingMigration();
  // One breaker epoch: feeds the sample, runs a half-open probe when the
  // breaker asks for one, and moves safe mode to match the state.
  void BreakerTick(const BreakerSample& sample);
  // Half-open probe: synthetic round trips through the migration
  // transport when one is attached, else this epoch's sample verdict.
  bool RunBreakerProbe(const BreakerSample& sample);
  void EnterSafeMode();
  void ExitSafeMode();

  ObjectSystem* system_;
  CoignRuntime* runtime_;
  const IccProfile& base_profile_;
  NetworkProfile network_;
  OnlineOptions options_;
  SlidingWindowGraph window_;
  RepartitionPolicy policy_;
  // Metadata (clsid, name, api_usage) for classifications first seen live,
  // registered at instantiation so re-cuts can place and constrain them.
  std::unordered_map<ClassificationId, ClassificationInfo> live_registry_;
  MigrationChargeFn charge_;
  TransportProbeFn probe_;
  std::unique_ptr<LiveNetworkEstimator> estimator_;
  // Probe cursors: per-call (weights retries into the window) and
  // per-epoch (fault detection + estimator feed).
  TransportHealth call_health_;
  TransportHealth epoch_health_;
  OnlineStats stats_;
  DriftReport last_drift_;
  RepartitionDecision last_decision_;
  uint64_t epochs_since_evaluation_ = 0;
  uint64_t cooldown_remaining_ = 0;
  // Journaled migration path.
  Transport* migration_transport_ = nullptr;  // Not owned; null = model-priced.
  Rng* migration_jitter_ = nullptr;           // Not owned.
  LiveMigrator::CrashGate crash_gate_;
  struct PendingMigration {
    MigrationJournal journal;
    uint64_t resumes = 0;
  };
  std::optional<PendingMigration> pending_;
  // Screens epochs for fault episodes (visible faults and silent
  // latency/payload slowdown) against healthy-epoch baselines.
  FaultEpisodeDetector episode_detector_;
  // Per-link breaker + the distributed plan parked while safe mode holds
  // the all-local cut.
  CircuitBreaker breaker_;
  bool safe_mode_ = false;
  Distribution saved_distribution_;
  Observability* obs_ = nullptr;  // Not owned.
  bool in_quarantine_ = false;    // For quarantine-exit instants.
  // Snapshot of the policy session's cumulative solver stats at the last
  // metrics sync; each evaluation adds the delta to the mincut.* counters.
  MinCutSolveStats sampled_cut_stats_;
};

}  // namespace coign

#endif  // COIGN_SRC_ONLINE_REPARTITIONER_H_
