#include "src/online/migrator.h"

#include "src/support/str_util.h"

namespace coign {

std::string MigrationReport::ToString() const {
  return StrFormat("migration{instances=%llu, bytes=%llu, seconds=%.4f}",
                   static_cast<unsigned long long>(instances_moved),
                   static_cast<unsigned long long>(bytes_transferred), seconds);
}

Result<MigrationReport> LiveMigrator::Migrate(ObjectSystem& system,
                                              const Distribution& target,
                                              const NetworkProfile& network) const {
  MigrationReport report;
  for (const ObjectSystem::InstanceInfo& info : system.LiveInstances()) {
    const ClassificationId classification = resolver_(info.id);
    if (classification == kNoClassification) {
      continue;
    }
    const MachineId destination = target.MachineFor(classification);
    if (destination == info.machine) {
      continue;
    }
    COIGN_RETURN_IF_ERROR(system.MoveInstance(info.id, destination));
    report.instances_moved += 1;
    report.bytes_transferred += state_bytes_per_instance_;
    report.seconds +=
        network.MessageSeconds(static_cast<double>(state_bytes_per_instance_));
  }
  return report;
}

}  // namespace coign
