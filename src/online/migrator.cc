#include "src/online/migrator.h"

#include "src/support/str_util.h"

namespace coign {

std::string MigrationReport::ToString() const {
  std::string out = StrFormat("migration{instances=%llu, bytes=%llu, seconds=%.4f",
                              static_cast<unsigned long long>(instances_moved),
                              static_cast<unsigned long long>(bytes_transferred), seconds);
  if (copy_rpcs > 0 || instances_deferred > 0 || interrupted) {
    out += StrFormat(", rpcs=%llu, wasted=%lluB, deferred=%llu, dedup=%llu%s%s",
                     static_cast<unsigned long long>(copy_rpcs),
                     static_cast<unsigned long long>(wasted_bytes),
                     static_cast<unsigned long long>(instances_deferred),
                     static_cast<unsigned long long>(duplicates_suppressed),
                     complete ? "" : ", incomplete", interrupted ? ", interrupted" : "");
  }
  out += "}";
  return out;
}

std::string RecoveryReport::ToString() const {
  return StrFormat("recovery{redone=%llu, rolled_back=%llu, wasted=%lluB}",
                   static_cast<unsigned long long>(instances_redone),
                   static_cast<unsigned long long>(instances_rolled_back),
                   static_cast<unsigned long long>(wasted_bytes));
}

uint64_t LiveMigrator::StateBytesFor(InstanceId instance) const {
  if (state_size_) {
    const uint64_t bytes = state_size_(instance);
    if (bytes > 0) {
      return bytes;
    }
  }
  return options_.state_bytes_per_instance;
}

Result<MigrationReport> LiveMigrator::Migrate(ObjectSystem& system,
                                              const Distribution& target,
                                              const NetworkProfile& network) const {
  MigrationReport report;
  for (const ObjectSystem::InstanceInfo& info : system.LiveInstances()) {
    const ClassificationId classification = resolver_(info.id);
    if (classification == kNoClassification) {
      continue;
    }
    const MachineId destination = target.MachineFor(classification);
    if (destination == info.machine) {
      continue;
    }
    COIGN_RETURN_IF_ERROR(system.MoveInstance(info.id, destination));
    const uint64_t state_bytes = StateBytesFor(info.id);
    report.instances_moved += 1;
    report.bytes_transferred += state_bytes;
    report.seconds += network.MessageSeconds(static_cast<double>(state_bytes));
  }
  return report;
}

Result<MigrationReport> LiveMigrator::Migrate(ObjectSystem& system,
                                              const Distribution& target,
                                              MigrationJournal& journal,
                                              Transport& transport,
                                              Rng* jitter_rng) const {
  MigrationReport report;
  // The gate models the coordinator crashing: every journal append and
  // every residency flip is a step the crash can land in front of.
  auto crashed = [&]() {
    if (gate_ && gate_()) {
      report.interrupted = true;
      report.complete = false;
      if (obs_ != nullptr) {
        obs_->metrics().GetCounter("migration.interrupted")->Add();
        obs_->tracer().Instant("migration-crash-gate", "migration",
                               kTrackMigration);
      }
      return true;
    }
    return false;
  };
  // One instant per journal append mirrors the write-ahead protocol into
  // the trace: intent -> prepared -> committed / rolled-back.
  auto note_phase = [&](const MigrationRecord& record) {
    if (obs_ == nullptr) {
      return;
    }
    obs_->tracer().Instant(
        std::string("journal-") + std::string(MigrationPhaseName(record.phase)),
        "migration", kTrackMigration,
        {{"instance", Tracer::ArgUint(record.instance)},
         {"from", Tracer::ArgInt(record.from)},
         {"to", Tracer::ArgInt(record.to)},
         {"bytes", Tracer::ArgUint(record.state_bytes)}});
  };

  for (const ObjectSystem::InstanceInfo& info : system.LiveInstances()) {
    const ClassificationId classification = resolver_(info.id);
    if (classification == kNoClassification) {
      continue;
    }
    const MachineId destination = target.MachineFor(classification);
    if (destination == info.machine) {
      continue;
    }
    // A record already terminal for this instance in this journal belongs
    // to a run that was not recovered yet; leave it to Recover().
    if (const MigrationRecord* last = journal.LastFor(info.id)) {
      if (last->phase == MigrationPhase::kIntent ||
          last->phase == MigrationPhase::kPrepared) {
        return InternalError("journaled migrate over unrecovered in-flight instance " +
                             std::to_string(info.id));
      }
    }

    if (crashed()) {
      return report;
    }
    const uint64_t state_bytes = StateBytesFor(info.id);
    TraceSpan span(obs_ != nullptr ? &obs_->tracer() : nullptr,
                   "migrate-instance", "migration", kTrackMigration);
    span.AddArg("instance", static_cast<uint64_t>(info.id));
    span.AddArg("bytes", state_bytes);
    MigrationRecord record;
    record.instance = info.id;
    record.from = info.machine;
    record.to = destination;
    record.state_bytes = state_bytes;
    record.phase = MigrationPhase::kIntent;
    journal.Append(record);
    note_phase(record);

    // Copy phase: ship the state through the faulted transport until one
    // round trip is acked or the per-instance budget runs out.
    bool copied = false;
    double copy_seconds = 0.0;
    for (int attempt = 0; attempt < options_.copy_attempts_per_instance; ++attempt) {
      const DeliveryReceipt receipt = transport.ReliableRoundTrip(
          info.machine, destination, state_bytes, options_.ack_bytes, jitter_rng);
      report.copy_rpcs += 1;
      report.seconds += receipt.seconds;
      copy_seconds += receipt.seconds;
      report.duplicates_suppressed += receipt.duplicates_suppressed;
      // Every attempt beyond the one that landed re-shipped the state.
      const uint64_t shipped = static_cast<uint64_t>(receipt.attempts);
      report.wasted_bytes += state_bytes * (shipped - (receipt.delivered ? 1 : 0));
      if (receipt.delivered) {
        copied = true;
        break;
      }
    }
    if (!copied) {
      record.phase = MigrationPhase::kRolledBack;
      journal.Append(record);
      note_phase(record);
      report.instances_deferred += 1;
      report.complete = false;
      if (obs_ != nullptr) {
        obs_->metrics().GetCounter("migration.instances_deferred")->Add();
      }
      span.AddArg("outcome", "deferred");
      span.End(copy_seconds);
      continue;
    }

    if (crashed()) {
      span.AddArg("outcome", "interrupted");
      span.End(copy_seconds);
      return report;
    }
    record.phase = MigrationPhase::kPrepared;
    journal.Append(record);
    note_phase(record);

    if (crashed()) {
      span.AddArg("outcome", "interrupted");
      span.End(copy_seconds);
      return report;
    }
    // Commit point: once this record is journaled the destination is
    // authoritative, crash or no crash.
    record.phase = MigrationPhase::kCommitted;
    journal.Append(record);
    note_phase(record);

    if (crashed()) {
      span.AddArg("outcome", "interrupted");
      span.End(copy_seconds);
      return report;
    }
    COIGN_RETURN_IF_ERROR(system.MoveInstance(info.id, destination));
    report.instances_moved += 1;
    report.bytes_transferred += state_bytes;
    if (obs_ != nullptr) {
      obs_->metrics().GetCounter("migration.instances_committed")->Add();
      obs_->metrics().GetCounter("migration.state_bytes")->Add(state_bytes);
    }
    span.AddArg("outcome", "committed");
    span.End(copy_seconds);
  }
  if (obs_ != nullptr && report.wasted_bytes > 0) {
    obs_->metrics().GetCounter("migration.wasted_bytes")->Add(report.wasted_bytes);
  }
  return report;
}

Result<RecoveryReport> LiveMigrator::Recover(ObjectSystem& system,
                                             const MigrationJournal& journal) {
  RecoveryReport report;
  const std::vector<MigrationRecord>& records = journal.records();
  for (const MigrationRecord& record : records) {
    if (journal.LastFor(record.instance) != &record) {
      continue;  // Superseded by a later record for the same instance.
    }
    Result<MachineId> machine = system.MachineOf(record.instance);
    if (!machine.ok()) {
      continue;  // Instance destroyed since; nothing to repair.
    }
    switch (record.phase) {
      case MigrationPhase::kCommitted:
        // Redo: the flip is a fact the moment the record was journaled.
        if (*machine != record.to) {
          COIGN_RETURN_IF_ERROR(system.MoveInstance(record.instance, record.to));
        }
        report.instances_redone += 1;
        break;
      case MigrationPhase::kIntent:
      case MigrationPhase::kPrepared:
        // Roll back: discard the in-flight copy, source stays home.
        if (*machine != record.from) {
          COIGN_RETURN_IF_ERROR(system.MoveInstance(record.instance, record.from));
        }
        report.instances_rolled_back += 1;
        report.wasted_bytes += record.state_bytes;
        break;
      case MigrationPhase::kRolledBack:
        break;  // Already consistent: the move never happened.
    }
  }
  return report;
}

}  // namespace coign
