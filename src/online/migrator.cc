#include "src/online/migrator.h"

#include "src/support/str_util.h"

namespace coign {

std::string MigrationReport::ToString() const {
  std::string out = StrFormat("migration{instances=%llu, bytes=%llu, seconds=%.4f",
                              static_cast<unsigned long long>(instances_moved),
                              static_cast<unsigned long long>(bytes_transferred), seconds);
  if (copy_rpcs > 0 || instances_deferred > 0 || interrupted) {
    out += StrFormat(", rpcs=%llu, wasted=%lluB, deferred=%llu, dedup=%llu%s%s",
                     static_cast<unsigned long long>(copy_rpcs),
                     static_cast<unsigned long long>(wasted_bytes),
                     static_cast<unsigned long long>(instances_deferred),
                     static_cast<unsigned long long>(duplicates_suppressed),
                     complete ? "" : ", incomplete", interrupted ? ", interrupted" : "");
  }
  out += "}";
  return out;
}

std::string RecoveryReport::ToString() const {
  return StrFormat("recovery{redone=%llu, rolled_back=%llu, wasted=%lluB}",
                   static_cast<unsigned long long>(instances_redone),
                   static_cast<unsigned long long>(instances_rolled_back),
                   static_cast<unsigned long long>(wasted_bytes));
}

Result<MigrationReport> LiveMigrator::Migrate(ObjectSystem& system,
                                              const Distribution& target,
                                              const NetworkProfile& network) const {
  MigrationReport report;
  for (const ObjectSystem::InstanceInfo& info : system.LiveInstances()) {
    const ClassificationId classification = resolver_(info.id);
    if (classification == kNoClassification) {
      continue;
    }
    const MachineId destination = target.MachineFor(classification);
    if (destination == info.machine) {
      continue;
    }
    COIGN_RETURN_IF_ERROR(system.MoveInstance(info.id, destination));
    report.instances_moved += 1;
    report.bytes_transferred += options_.state_bytes_per_instance;
    report.seconds +=
        network.MessageSeconds(static_cast<double>(options_.state_bytes_per_instance));
  }
  return report;
}

Result<MigrationReport> LiveMigrator::Migrate(ObjectSystem& system,
                                              const Distribution& target,
                                              MigrationJournal& journal,
                                              Transport& transport,
                                              Rng* jitter_rng) const {
  MigrationReport report;
  const uint64_t state_bytes = options_.state_bytes_per_instance;
  // The gate models the coordinator crashing: every journal append and
  // every residency flip is a step the crash can land in front of.
  auto crashed = [&]() {
    if (gate_ && gate_()) {
      report.interrupted = true;
      report.complete = false;
      return true;
    }
    return false;
  };

  for (const ObjectSystem::InstanceInfo& info : system.LiveInstances()) {
    const ClassificationId classification = resolver_(info.id);
    if (classification == kNoClassification) {
      continue;
    }
    const MachineId destination = target.MachineFor(classification);
    if (destination == info.machine) {
      continue;
    }
    // A record already terminal for this instance in this journal belongs
    // to a run that was not recovered yet; leave it to Recover().
    if (const MigrationRecord* last = journal.LastFor(info.id)) {
      if (last->phase == MigrationPhase::kIntent ||
          last->phase == MigrationPhase::kPrepared) {
        return InternalError("journaled migrate over unrecovered in-flight instance " +
                             std::to_string(info.id));
      }
    }

    if (crashed()) {
      return report;
    }
    MigrationRecord record;
    record.instance = info.id;
    record.from = info.machine;
    record.to = destination;
    record.state_bytes = state_bytes;
    record.phase = MigrationPhase::kIntent;
    journal.Append(record);

    // Copy phase: ship the state through the faulted transport until one
    // round trip is acked or the per-instance budget runs out.
    bool copied = false;
    for (int attempt = 0; attempt < options_.copy_attempts_per_instance; ++attempt) {
      const DeliveryReceipt receipt = transport.ReliableRoundTrip(
          info.machine, destination, state_bytes, options_.ack_bytes, jitter_rng);
      report.copy_rpcs += 1;
      report.seconds += receipt.seconds;
      report.duplicates_suppressed += receipt.duplicates_suppressed;
      // Every attempt beyond the one that landed re-shipped the state.
      const uint64_t shipped = static_cast<uint64_t>(receipt.attempts);
      report.wasted_bytes += state_bytes * (shipped - (receipt.delivered ? 1 : 0));
      if (receipt.delivered) {
        copied = true;
        break;
      }
    }
    if (!copied) {
      record.phase = MigrationPhase::kRolledBack;
      journal.Append(record);
      report.instances_deferred += 1;
      report.complete = false;
      continue;
    }

    if (crashed()) {
      return report;
    }
    record.phase = MigrationPhase::kPrepared;
    journal.Append(record);

    if (crashed()) {
      return report;
    }
    // Commit point: once this record is journaled the destination is
    // authoritative, crash or no crash.
    record.phase = MigrationPhase::kCommitted;
    journal.Append(record);

    if (crashed()) {
      return report;
    }
    COIGN_RETURN_IF_ERROR(system.MoveInstance(info.id, destination));
    report.instances_moved += 1;
    report.bytes_transferred += state_bytes;
  }
  return report;
}

Result<RecoveryReport> LiveMigrator::Recover(ObjectSystem& system,
                                             const MigrationJournal& journal) {
  RecoveryReport report;
  const std::vector<MigrationRecord>& records = journal.records();
  for (const MigrationRecord& record : records) {
    if (journal.LastFor(record.instance) != &record) {
      continue;  // Superseded by a later record for the same instance.
    }
    Result<MachineId> machine = system.MachineOf(record.instance);
    if (!machine.ok()) {
      continue;  // Instance destroyed since; nothing to repair.
    }
    switch (record.phase) {
      case MigrationPhase::kCommitted:
        // Redo: the flip is a fact the moment the record was journaled.
        if (*machine != record.to) {
          COIGN_RETURN_IF_ERROR(system.MoveInstance(record.instance, record.to));
        }
        report.instances_redone += 1;
        break;
      case MigrationPhase::kIntent:
      case MigrationPhase::kPrepared:
        // Roll back: discard the in-flight copy, source stays home.
        if (*machine != record.from) {
          COIGN_RETURN_IF_ERROR(system.MoveInstance(record.instance, record.from));
        }
        report.instances_rolled_back += 1;
        report.wasted_bytes += record.state_bytes;
        break;
      case MigrationPhase::kRolledBack:
        break;  // Already consistent: the move never happened.
    }
  }
  return report;
}

}  // namespace coign
