// The sliding-window ICC accountant — the online half of the paper's §6
// future work. The lightweight runtime can count messages between
// components "with only slight additional overhead"; this window turns
// those counts into a decayed per-pair communication graph the analysis
// engine can re-cut while the application keeps running.
//
// Epoch-based exponential decay: Record() is O(1) into the current epoch's
// accumulator; AdvanceEpoch() folds the accumulator into the decayed window
// (window = decay * window + epoch) and prunes entries whose decayed weight
// has fallen below a floor, so memory stays bounded no matter how long the
// application runs or how its usage wanders.

#ifndef COIGN_SRC_ONLINE_WINDOW_H_
#define COIGN_SRC_ONLINE_WINDOW_H_

#include <cstdint>
#include <unordered_map>

#include "src/profile/icc_profile.h"
#include "src/runtime/drift.h"

namespace coign {

struct WindowOptions {
  // Per-epoch retention of old traffic; 0 forgets instantly, 1 never
  // forgets. 0.5 gives an effective window of ~2 epochs.
  double decay = 0.5;
  // Decayed call weights below this are dropped at epoch boundaries.
  double prune_weight = 0.01;
  // Mean one-way bytes assumed for calls the profiling scenarios never saw
  // (the lightweight runtime counts messages but cannot size them).
  uint64_t default_message_bytes = 64;
};

class SlidingWindowGraph {
 public:
  explicit SlidingWindowGraph(WindowOptions options = {}) : options_(options) {}

  // O(1) record path, called on every completed inter-component call.
  // `remotable` is the lightweight runtime's cheap check (interface
  // metadata + opaque-parameter scan); non-remotable calls force the
  // endpoints to stay colocated in any re-cut.
  void Record(const CallKey& key, uint64_t calls = 1, bool remotable = true);
  // Local compute attributed to a classification, decayed like call weight.
  void RecordCompute(ClassificationId id, double seconds);

  // Folds the current epoch into the decayed window and prunes.
  void AdvanceEpoch();

  // Throws the current epoch's accumulators away without folding or
  // decaying — the quarantine path for epochs measured during a detected
  // fault episode. The preserved window keeps describing the last healthy
  // traffic; the epoch still counts toward epoch_count().
  void DiscardEpoch();

  uint64_t epoch_count() const { return epochs_; }
  // Decayed total one-way message weight across the window (2 per call).
  double total_message_weight() const;
  // Decayed call weight of one key (current epoch excluded).
  double WeightOf(const CallKey& key) const;
  size_t tracked_keys() const { return window_.size(); }

  // The window as per-pair message counts (rounded), for DetectDrift.
  MessageCounts WindowMessageCounts() const;

  // Synthesizes an ICC profile describing the window's traffic, for
  // re-analysis. Byte sizes come from `base`: a call key the profiling
  // scenarios saw re-uses its profiled size histograms scaled to the
  // window's observed call weight; an unprofiled key is synthesized at
  // default_message_bytes. Keys are included only when both endpoint
  // classifications carry metadata — from `base` or from
  // `live_classifications`, the registry of classifications first seen
  // during live execution (usage the profiling scenarios never covered).
  IccProfile WindowedProfile(
      const IccProfile& base,
      const std::unordered_map<ClassificationId, ClassificationInfo>& live_classifications =
          {}) const;

  void Clear();

 private:
  struct Cell {
    double weight = 0.0;          // Decayed call count.
    double non_remotable = 0.0;   // Decayed non-remotable call count.
  };
  struct EpochCell {
    uint64_t calls = 0;
    uint64_t non_remotable = 0;
  };

  WindowOptions options_;
  std::unordered_map<CallKey, Cell, CallKeyHash> window_;
  std::unordered_map<CallKey, EpochCell, CallKeyHash> epoch_;
  std::unordered_map<ClassificationId, double> compute_window_;
  std::unordered_map<ClassificationId, double> compute_epoch_;
  uint64_t epochs_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_ONLINE_WINDOW_H_
