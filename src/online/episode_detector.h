// The baseline-relative fault-episode detector behind the quarantine rule.
//
// Each epoch the repartitioner hands the detector that epoch's transport
// health delta. The detector maintains EWMA baselines of healthy epochs —
// the faulted-call fraction, the per-call latency, and the per-byte
// payload time — and declares an episode when the epoch stands out against
// any of them:
//   - faulted fraction  > threshold + multiplier * fraction baseline
//     (visible faults: drops, timeouts, duplicates, scaled attempts);
//   - per-call latency  > slowdown_multiplier * latency baseline, or
//   - per-byte payload  > slowdown_multiplier * payload baseline
//     (silent degradation: the wire got slower without a single call
//     being marked faulted — a congested link, a re-routed path).
// Quarantined epochs never update any baseline, so a long episode cannot
// teach the detector that broken is normal; a lossy-but-steady or
// slow-but-steady link raises the baselines and stops looking like an
// episode.

#ifndef COIGN_SRC_ONLINE_EPISODE_DETECTOR_H_
#define COIGN_SRC_ONLINE_EPISODE_DETECTOR_H_

#include <cstdint>

#include "src/online/policy.h"

namespace coign {

// One epoch's transport activity, as deltas of TransportHealth counters.
struct EpochHealthSample {
  uint64_t calls = 0;
  uint64_t faulted_calls = 0;
  uint64_t wire_bytes = 0;
  double latency_seconds = 0.0;  // Message-count-proportional time.
  double payload_seconds = 0.0;  // Byte-proportional time.
};

class FaultEpisodeDetector {
 public:
  enum class Trigger {
    kNone,
    kFaultedFraction,
    kLatencySlowdown,
    kPayloadSlowdown,
  };

  struct Verdict {
    // A fresh episode was declared this epoch (counts toward
    // OnlineStats::fault_episodes).
    Trigger episode = Trigger::kNone;
    // Discard this epoch's evidence (fresh episode or hold tail).
    bool quarantine = false;
  };

  explicit FaultEpisodeDetector(QuarantineConfig config) : config_(config) {}

  // Judges one epoch and, when it is healthy, absorbs it into the
  // baselines. The first observed epoch primes the baselines and is never
  // quarantined — there is nothing yet to be relative to.
  Verdict Observe(const EpochHealthSample& epoch);

  // Healthy-epoch baselines, exposed for reports and tests.
  double fraction_baseline() const { return fraction_baseline_; }
  double latency_baseline() const { return latency_per_call_baseline_; }
  double payload_baseline() const { return payload_per_byte_baseline_; }

 private:
  QuarantineConfig config_;
  uint64_t hold_remaining_ = 0;
  double fraction_baseline_ = 0.0;
  double latency_per_call_baseline_ = 0.0;
  double payload_per_byte_baseline_ = 0.0;
  bool primed_ = false;
};

}  // namespace coign

#endif  // COIGN_SRC_ONLINE_EPISODE_DETECTOR_H_
