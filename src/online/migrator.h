// The live migrator: relocates running component instances between
// machines inside the ObjectSystem to realize a newly adopted distribution.
//
// The paper's component factories place instances at *instantiation* time;
// adapting a running application additionally requires moving instances
// that already exist. The migrator walks the live instance table, moves
// every instance whose classification landed on the other side of the new
// cut, and bills the state transfer (one message of modeled serialized
// state per instance) so adaptive runs cannot pretend migration is free.

#ifndef COIGN_SRC_ONLINE_MIGRATOR_H_
#define COIGN_SRC_ONLINE_MIGRATOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/com/object_system.h"
#include "src/graph/distribution.h"
#include "src/net/network_profiler.h"
#include "src/support/status.h"

namespace coign {

struct MigrationReport {
  uint64_t instances_moved = 0;
  uint64_t bytes_transferred = 0;
  double seconds = 0.0;

  std::string ToString() const;
};

class LiveMigrator {
 public:
  // Maps a live instance to its classification; return kNoClassification
  // for unclassified instances (they stay put — nothing is known of them).
  using ClassificationResolver = std::function<ClassificationId(InstanceId)>;

  LiveMigrator(uint64_t state_bytes_per_instance, ClassificationResolver resolver)
      : state_bytes_per_instance_(state_bytes_per_instance),
        resolver_(std::move(resolver)) {}

  // Moves every live instance whose classification's machine under
  // `target` differs from where the instance currently runs. Charges each
  // move one state message priced by `network`.
  Result<MigrationReport> Migrate(ObjectSystem& system, const Distribution& target,
                                  const NetworkProfile& network) const;

 private:
  uint64_t state_bytes_per_instance_;
  ClassificationResolver resolver_;
};

}  // namespace coign

#endif  // COIGN_SRC_ONLINE_MIGRATOR_H_
