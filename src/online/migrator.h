// The live migrator: relocates running component instances between
// machines inside the ObjectSystem to realize a newly adopted distribution.
//
// The paper's component factories place instances at *instantiation* time;
// adapting a running application additionally requires moving instances
// that already exist. The migrator walks the live instance table (sorted
// by id, so runs are deterministic) and moves every instance whose
// classification landed on the other side of the new cut.
//
// Two migration paths:
//
//  - The model-priced path bills each move one state message priced by a
//    NetworkProfile. The wire is assumed perfect; this is the fault-free
//    planning estimate.
//
//  - The journaled two-phase path pushes each instance's state through
//    the hardened net::Transport — so drops, Gilbert-Elliott bursts,
//    partitions, and crashes hit the copy — and write-ahead journals
//    every step:   intent -> (copy acked) prepared -> committed.
//    The committed journal record is the commit point; only after it is
//    durable does the migrator flip residency in the ObjectSystem. A
//    crash at ANY point (simulated by the CrashGate firing) leaves a
//    journal from which Recover() restores the one-home-per-instance
//    invariant: committed records are redone (flip to destination),
//    in-flight intent/prepared records are rolled back (stay at source,
//    destination copy discarded). Never double-resident, never lost.

#ifndef COIGN_SRC_ONLINE_MIGRATOR_H_
#define COIGN_SRC_ONLINE_MIGRATOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/com/object_system.h"
#include "src/graph/distribution.h"
#include "src/net/network_profiler.h"
#include "src/net/transport.h"
#include "src/obs/obs.h"
#include "src/online/migration_journal.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace coign {

struct MigrationOptions {
  // Modeled serialized state per instance, shipped in one request message.
  // The fallback when no per-instance state-size resolver is set (or the
  // resolver has no allocation data for an instance's classification).
  uint64_t state_bytes_per_instance = 4096;
  // Destination's copy-ack reply size.
  uint64_t ack_bytes = 64;
  // Transport round trips the copy phase may spend per instance before the
  // move is journaled rolled-back and deferred (each round trip already
  // retries internally under the transport's RetryPolicy).
  int copy_attempts_per_instance = 2;
};

struct MigrationReport {
  uint64_t instances_moved = 0;
  uint64_t bytes_transferred = 0;  // State bytes that reached committed moves.
  double seconds = 0.0;
  // Journaled-path accounting.
  uint64_t instances_deferred = 0;     // Copy exhausted its budget; rolled back.
  uint64_t wasted_bytes = 0;           // Retransmitted or abandoned state bytes.
  uint64_t copy_rpcs = 0;              // Transport round trips issued.
  uint64_t duplicates_suppressed = 0;  // Receiver-side dedup of copy retries.
  bool complete = true;    // Every wanted move committed (none deferred).
  bool interrupted = false;  // The crash gate fired mid-protocol.

  std::string ToString() const;
};

// What crash recovery did with a journal.
struct RecoveryReport {
  uint64_t instances_redone = 0;       // Committed: residency flip re-applied.
  uint64_t instances_rolled_back = 0;  // In flight: source stays authoritative.
  uint64_t wasted_bytes = 0;           // State bytes of discarded in-flight copies.

  std::string ToString() const;
};

class LiveMigrator {
 public:
  // Maps a live instance to its classification; return kNoClassification
  // for unclassified instances (they stay put — nothing is known of them).
  using ClassificationResolver = std::function<ClassificationId(InstanceId)>;

  // Simulated coordinator crash: consulted once before every journal
  // append and every residency flip. Returning true abandons the
  // migration at exactly that point — journal and ObjectSystem are left
  // as a real crash would leave them, for Recover() to repair.
  using CrashGate = std::function<bool()>;

  LiveMigrator(const MigrationOptions& options, ClassificationResolver resolver)
      : options_(options), resolver_(std::move(resolver)) {}
  LiveMigrator(uint64_t state_bytes_per_instance, ClassificationResolver resolver)
      : resolver_(std::move(resolver)) {
    options_.state_bytes_per_instance = state_bytes_per_instance;
  }

  // Serialized state size of one live instance, in bytes. Profiled
  // allocation drives this (heterogeneous components ship heterogeneous
  // state); returning 0 falls back to options().state_bytes_per_instance.
  using StateSizeResolver = std::function<uint64_t(InstanceId)>;

  const MigrationOptions& options() const { return options_; }
  void SetCrashGate(CrashGate gate) { gate_ = std::move(gate); }
  void SetStateSizeResolver(StateSizeResolver resolver) {
    state_size_ = std::move(resolver);
  }
  // Per-phase journal instants, per-instance copy spans, and migration
  // counters. `obs` is not owned; null disables instrumentation.
  void SetObservability(Observability* obs) { obs_ = obs; }

  // Model-priced path: moves every live instance whose classification's
  // machine under `target` differs from where the instance currently
  // runs. Charges each move one state message priced by `network`.
  Result<MigrationReport> Migrate(ObjectSystem& system, const Distribution& target,
                                  const NetworkProfile& network) const;

  // Journaled two-phase path: same move set, but each copy travels
  // through `transport` (faults and retries included) and every protocol
  // step is journaled first. Appends to `journal` (callers keep it across
  // resumes); instances whose last journal record is already committed or
  // rolled-back are *not* re-examined here — run Recover() first, then a
  // fresh Migrate() naturally re-attempts rolled-back stragglers because
  // they still sit on the wrong machine. Returns with interrupted=true
  // the moment the crash gate fires.
  Result<MigrationReport> Migrate(ObjectSystem& system, const Distribution& target,
                                  MigrationJournal& journal, Transport& transport,
                                  Rng* jitter_rng) const;

  // Crash recovery from a journal: redo committed flips, roll in-flight
  // instances back to their source. Idempotent — recovering twice leaves
  // residency identical. After Recover() every journaled instance has
  // exactly one home.
  static Result<RecoveryReport> Recover(ObjectSystem& system,
                                        const MigrationJournal& journal);

 private:
  uint64_t StateBytesFor(InstanceId instance) const;

  MigrationOptions options_;
  ClassificationResolver resolver_;
  CrashGate gate_;
  StateSizeResolver state_size_;
  Observability* obs_ = nullptr;  // Not owned.
};

}  // namespace coign

#endif  // COIGN_SRC_ONLINE_MIGRATOR_H_
