// The partition-plan cache: (profile fingerprint x cohort bucket) -> plan.
//
// A cohort's plan is a pure function of its cache key — the cut is priced
// at the bucket's geometric center, never at the member mean — so a
// repeated fleet hits for every cohort and a drifting fleet (clients
// churning within their link classes) hits for every bucket that stays
// occupied. LRU eviction bounds memory on long-running services facing
// many profiles; hit/miss counters feed the fleet reports.
//
// Thread safety: all operations lock an internal mutex, so the cache may
// be probed from any thread. The fleet service nevertheless performs all
// lookups and insertions on its coordinator thread in cohort grid order so
// the LRU sequence — and therefore eviction, and therefore every counter —
// is deterministic however many workers compute plans.

#ifndef COIGN_SRC_FLEET_PLAN_CACHE_H_
#define COIGN_SRC_FLEET_PLAN_CACHE_H_

#include <cstdint>
#include <iosfwd>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/analysis/engine.h"
#include "src/fleet/cohort.h"
#include "src/obs/obs.h"
#include "src/support/status.h"

namespace coign {

struct PlanCacheKey {
  uint64_t profile_fingerprint = 0;
  CohortKey bucket;

  friend bool operator==(const PlanCacheKey&, const PlanCacheKey&) = default;
};

struct PlanCacheKeyHash {
  size_t operator()(const PlanCacheKey& key) const {
    uint64_t h = key.profile_fingerprint;
    h = h * 0x9e3779b97f4a7c15ull + CohortKeyHash()(key.bucket);
    return static_cast<size_t>(h);
  }
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  // Damaged v4 snapshot segments dropped on load (checksum mismatch,
  // unparseable record under a valid checksum, or duplicate key).
  uint64_t corrupt_skipped = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0 : static_cast<double>(hits) / lookups();
  }
  std::string ToString() const;
};

class PlanCache {
 public:
  // capacity 0 disables caching (every lookup misses, inserts are dropped).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Returns a copy of the cached plan and refreshes its LRU position.
  std::optional<AnalysisResult> Lookup(const PlanCacheKey& key);

  // Inserts (or refreshes) a plan, evicting least-recently-used entries
  // beyond capacity.
  void Insert(const PlanCacheKey& key, AnalysisResult plan);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  PlanCacheStats stats() const;
  void Clear();

  // Not owned; null disables instrumentation. Used only by the loader to
  // report damaged snapshot records (counter + instant + flight-recorder
  // dump) — the lookup/insert hot path stays uninstrumented here.
  void SetObservability(Observability* obs) { obs_ = obs; }

  // --- Persistence ----------------------------------------------------------
  // Byte-exact text snapshot of the entries, written least- to
  // most-recently-used so loading reproduces the LRU order exactly.
  // Doubles are serialized as bit patterns (hex), so a save/load round
  // trip is the identity down to the last ULP. Stats are not persisted —
  // a warm start is capacity, not traffic.
  //
  // Serialize writes the v4 form: every record block is followed by a
  // `crc` line carrying the CRC32C of the block's text. Load still reads
  // v1-v3 with their original strict semantics (any damage fails the
  // load); v4 damage is localized — a record whose checksum or contents
  // no longer verify is skipped and counted in stats().corrupt_skipped,
  // a tail with no terminating crc line is a torn append and dropped
  // silently, and everything intact loads normally.
  std::string Serialize() const;
  // Replaces the contents with a parsed snapshot. Entries beyond this
  // cache's capacity are dropped oldest-first; stats are left untouched
  // (except corrupt_skipped, which accumulates loader damage counts).
  Status Load(const std::string& text);
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  struct Entry {
    PlanCacheKey key;
    AnalysisResult plan;
  };

  // Parses one record (entry/plan/place/edge lines) from `in`.
  static Status ParseRecord(std::istream& in, bool has_loss_bucket,
                            bool has_cut_units, Entry* entry);

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<PlanCacheKey, std::list<Entry>::iterator, PlanCacheKeyHash> index_;
  PlanCacheStats stats_;
  Observability* obs_ = nullptr;  // Not owned.
};

}  // namespace coign

#endif  // COIGN_SRC_FLEET_PLAN_CACHE_H_
