#include "src/fleet/service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/analysis/prediction.h"
#include "src/fleet/fingerprint.h"
#include "src/support/str_util.h"

namespace coign {

std::string FleetRegret::ToString() const {
  return StrFormat("regret{mean=%.2f%%, p95=%.2f%%, max=%.2f%%, "
                   "cohort_mean=%.6fs, optimal_mean=%.6fs}",
                   100.0 * mean, 100.0 * p95, 100.0 * max, mean_cohort_seconds,
                   mean_optimal_seconds);
}

std::string FleetPlanStats::ToString() const {
  return StrFormat("fleet{clients=%zu, cohorts=%zu, plans_computed=%zu, "
                   "cache_hits=%zu}",
                   clients, cohorts, plans_computed, cache_hits);
}

int FleetPlanResult::CohortIndexOf(uint32_t client_id) const {
  if (client_id >= client_cohort_.size()) {
    return -1;
  }
  return client_cohort_[client_id];
}

FleetPartitionService::FleetPartitionService(FleetServiceOptions options)
    : options_(options),
      engine_(options.analysis),
      cache_(options.cache_capacity),
      pool_(options.worker_threads) {
  cache_.SetObservability(options_.obs);
  cut_sessions_.resize(static_cast<size_t>(pool_.slot_count()));
}

Result<FleetPlanResult> FleetPartitionService::Plan(
    const IccProfile& profile, const std::vector<FleetClient>& fleet) {
  if (fleet.empty()) {
    return InvalidArgumentError("fleet is empty");
  }

  const uint64_t fingerprint = ProfileFingerprint(profile);
  std::vector<Cohort> cohorts = BuildCohorts(fleet, options_.cohorting);

  FleetPlanResult result;
  result.stats.clients = fleet.size();
  result.stats.cohorts = cohorts.size();
  result.plans.resize(cohorts.size());

  // Cache probes run here on the coordinator, in grid order, so LRU
  // traffic (and with it eviction and the hit/miss counters) does not
  // depend on worker scheduling.
  std::vector<size_t> misses;
  for (size_t i = 0; i < cohorts.size(); ++i) {
    CohortPlan& plan = result.plans[i];
    plan.cohort = std::move(cohorts[i]);
    std::optional<AnalysisResult> cached =
        cache_.Lookup(PlanCacheKey{fingerprint, plan.cohort.key});
    if (cached.has_value()) {
      plan.analysis = *std::move(cached);
      plan.from_cache = true;
      ++result.stats.cache_hits;
    } else {
      misses.push_back(i);
    }
  }

  // Analyze the missing cohorts across the pool; each task writes only its
  // own slot. Errors are collected per slot and reported in index order.
  std::vector<Status> task_status(misses.size());
  pool_.ParallelFor(misses.size(), [&](size_t task_index) {
    CohortPlan& plan = result.plans[misses[task_index]];
    // Lossy cohorts price their cut on the loss-inflated representative:
    // expected retransmissions make every message slower, which pushes the
    // min cut toward fewer, larger crossings than the clean bucket's plan.
    const NetworkProfile pricing = NetworkProfile::Exact(
        InflateForLoss(plan.cohort.representative, plan.cohort.representative_drop));
    // Per-slot warm start: cohort graphs share topology (same profile),
    // so each solve after a slot's first resumes from retained flow.
    Result<AnalysisResult> analyzed = engine_.Analyze(
        profile, pricing, &cut_sessions_[static_cast<size_t>(WorkerPool::CurrentSlot())]);
    if (analyzed.ok()) {
      plan.analysis = *std::move(analyzed);
    } else {
      task_status[task_index] = analyzed.status();
    }
  });
  for (const Status& status : task_status) {
    if (!status.ok()) {
      return status;
    }
  }
  result.stats.plans_computed = misses.size();

  // Insertions, like probes, stay on the coordinator in grid order.
  for (size_t miss : misses) {
    const CohortPlan& plan = result.plans[miss];
    cache_.Insert(PlanCacheKey{fingerprint, plan.cohort.key}, plan.analysis);
  }

  if (options_.obs != nullptr) {
    // Coordinator-side, after the barrier, in grid order: worker
    // scheduling can never reorder (or time-skew) what gets recorded.
    Tracer& tracer = options_.obs->tracer();
    for (const CohortPlan& plan : result.plans) {
      const double start = tracer.Now();
      tracer.Complete("cohort-plan", "fleet", kTrackFleet, start, tracer.Now(),
                      {{"cohort", Tracer::ArgString(plan.cohort.key.ToString())},
                       {"members", Tracer::ArgUint(plan.cohort.members.size())},
                       {"cache", Tracer::ArgString(plan.from_cache ? "hit" : "miss")}});
    }
    MetricsRegistry& metrics = options_.obs->metrics();
    metrics.GetCounter("fleet.plan_calls")->Add(1);
    metrics.GetCounter("fleet.clients")->Add(result.stats.clients);
    metrics.GetCounter("fleet.cohorts")->Add(result.stats.cohorts);
    metrics.GetCounter("fleet.cache.hits")->Add(result.stats.cache_hits);
    metrics.GetCounter("fleet.cache.misses")->Add(misses.size());
    metrics.GetGauge("fleet.pool.workers")
        ->Set(static_cast<double>(options_.worker_threads));
  }

  // Client id -> cohort index, for CohortIndexOf.
  uint32_t max_id = 0;
  for (const FleetClient& client : fleet) {
    max_id = std::max(max_id, client.id);
  }
  result.client_cohort_.assign(static_cast<size_t>(max_id) + 1, -1);
  for (size_t i = 0; i < result.plans.size(); ++i) {
    for (uint32_t member : result.plans[i].cohort.members) {
      result.client_cohort_[member] = static_cast<int>(i);
    }
  }

  if (!options_.compute_regret) {
    return result;
  }

  // Regret pass: every client's individually optimal cut (the per-client
  // bill cohorting avoids) vs its cohort's plan, both priced on the
  // client's own exact network.
  std::vector<double> cohort_seconds(fleet.size());
  std::vector<double> optimal_seconds(fleet.size());
  std::vector<Status> regret_status(fleet.size());
  pool_.ParallelFor(fleet.size(), [&](size_t i) {
    const FleetClient& client = fleet[i];
    // Both sides of the regret ratio feel the client's own measured loss.
    const NetworkProfile exact = NetworkProfile::Exact(
        InflateForLoss(client.network, client.fault_rates.drop));
    const int cohort_index = result.CohortIndexOf(client.id);
    const ExecutionPrediction cohort_prediction = PredictExecutionTime(
        profile, result.plans[cohort_index].analysis.distribution, exact);
    Result<AnalysisResult> optimal = engine_.Analyze(
        profile, exact, &cut_sessions_[static_cast<size_t>(WorkerPool::CurrentSlot())]);
    if (!optimal.ok()) {
      regret_status[i] = optimal.status();
      return;
    }
    const ExecutionPrediction optimal_prediction =
        PredictExecutionTime(profile, optimal->distribution, exact);
    cohort_seconds[i] = cohort_prediction.total_seconds();
    optimal_seconds[i] = optimal_prediction.total_seconds();
  });
  for (const Status& status : regret_status) {
    if (!status.ok()) {
      return status;
    }
  }

  // Reduce in index order on the coordinator: deterministic sums.
  std::vector<double> regrets(fleet.size());
  double cohort_sum = 0.0;
  double optimal_sum = 0.0;
  for (size_t i = 0; i < fleet.size(); ++i) {
    cohort_sum += cohort_seconds[i];
    optimal_sum += optimal_seconds[i];
    regrets[i] = optimal_seconds[i] > 0.0
                     ? cohort_seconds[i] / optimal_seconds[i] - 1.0
                     : 0.0;
    result.regret.mean += regrets[i];
    result.regret.max = std::max(result.regret.max, regrets[i]);
  }
  result.regret.mean /= static_cast<double>(fleet.size());
  result.regret.mean_cohort_seconds = cohort_sum / static_cast<double>(fleet.size());
  result.regret.mean_optimal_seconds = optimal_sum / static_cast<double>(fleet.size());
  std::sort(regrets.begin(), regrets.end());
  result.regret.p95 =
      regrets[static_cast<size_t>(0.95 * static_cast<double>(regrets.size() - 1))];
  return result;
}

}  // namespace coign
