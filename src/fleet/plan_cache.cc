#include "src/fleet/plan_cache.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/support/crc32c.h"
#include "src/support/str_util.h"

namespace coign {

namespace {

// Exact double round-trip: serialize the bit pattern, not a decimal
// approximation, so a reloaded cache prices cuts byte-identically.
std::string DoubleHex(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return StrFormat("%016llx", static_cast<unsigned long long>(bits));
}

bool ParseDoubleHex(const std::string& hex, double* out) {
  if (hex.size() != 16) {
    return false;
  }
  uint64_t bits = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    bits = (bits << 4) | static_cast<uint64_t>(digit);
  }
  std::memcpy(out, &bits, sizeof(bits));
  return true;
}

}  // namespace

std::string PlanCacheStats::ToString() const {
  std::string out =
      StrFormat("plan-cache{hits=%llu, misses=%llu, hit_rate=%.1f%%, "
                "insertions=%llu, evictions=%llu",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses), 100.0 * hit_rate(),
                static_cast<unsigned long long>(insertions),
                static_cast<unsigned long long>(evictions));
  if (corrupt_skipped > 0) {
    out += StrFormat(", corrupt_skipped=%llu",
                     static_cast<unsigned long long>(corrupt_skipped));
  }
  out += "}";
  return out;
}

std::optional<AnalysisResult> PlanCache::Lookup(const PlanCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // Refresh to most recent.
  return it->second->plan;
}

void PlanCache::Insert(const PlanCacheKey& key, AnalysisResult plan) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

std::string PlanCache::Serialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // v2 appended the loss bucket to each entry line; v3 appends the exact
  // fixed-point cut value (CapUnits) to each plan line; v4 terminates each
  // record block with a `crc` line over the block's text, so a loader can
  // localize disk damage to single records. Older snapshots still load:
  // v1 entries get a clean loss bucket, and v1/v2 plans get
  // cut_value_units = 0 (recomputed on the next cache miss).
  std::string out = StrFormat("plan-cache v4 %zu\n", lru_.size());
  // Least-recent first: replaying inserts in file order rebuilds the
  // exact LRU sequence (the last line loaded ends up most recent).
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const Entry& entry = *it;
    const AnalysisResult& plan = entry.plan;
    // Placement sorted by classification id: the plan map is unordered,
    // the snapshot must not be.
    std::vector<std::pair<ClassificationId, MachineId>> placement(
        plan.distribution.placement.begin(), plan.distribution.placement.end());
    std::sort(placement.begin(), placement.end());
    std::string block;
    block += StrFormat("entry %llu %d %d %d\n",
                       static_cast<unsigned long long>(entry.key.profile_fingerprint),
                       entry.key.bucket.latency_bucket, entry.key.bucket.bandwidth_bucket,
                       entry.key.bucket.loss_bucket);
    block += StrFormat("plan %s %s %zu %zu %llu %llu %zu %d %zu %zu %lld\n",
                       DoubleHex(plan.predicted_comm_seconds).c_str(),
                       DoubleHex(plan.total_comm_seconds).c_str(),
                       plan.client_classifications, plan.server_classifications,
                       static_cast<unsigned long long>(plan.client_instances),
                       static_cast<unsigned long long>(plan.server_instances),
                       plan.non_remotable_pairs, plan.distribution.default_machine,
                       placement.size(), plan.cut_edges.size(),
                       static_cast<long long>(plan.cut_value_units));
    for (const auto& [classification, machine] : placement) {
      block += StrFormat("place %u %d\n", classification, machine);
    }
    for (const CutEdgeReport& edge : plan.cut_edges) {
      block += StrFormat("edge %u %u %s\n", edge.client_side, edge.server_side,
                         DoubleHex(edge.seconds).c_str());
    }
    out += block;
    out += StrFormat("crc %08x\n", Crc32c(block));
  }
  return out;
}

Status PlanCache::ParseRecord(std::istream& in, bool has_loss_bucket,
                              bool has_cut_units, Entry* entry) {
  std::string tag;
  unsigned long long fingerprint = 0;
  if (!(in >> tag >> fingerprint >> entry->key.bucket.latency_bucket >>
        entry->key.bucket.bandwidth_bucket) ||
      tag != "entry") {
    return InvalidArgumentError("plan cache: bad entry line");
  }
  if (has_loss_bucket && !(in >> entry->key.bucket.loss_bucket)) {
    return InvalidArgumentError("plan cache: bad entry line");
  }
  entry->key.profile_fingerprint = static_cast<uint64_t>(fingerprint);
  AnalysisResult& plan = entry->plan;
  std::string predicted_hex, total_hex;
  unsigned long long client_instances = 0, server_instances = 0;
  size_t placements = 0, edges = 0;
  if (!(in >> tag >> predicted_hex >> total_hex >> plan.client_classifications >>
        plan.server_classifications >> client_instances >> server_instances >>
        plan.non_remotable_pairs >> plan.distribution.default_machine >> placements >>
        edges) ||
      tag != "plan" || !ParseDoubleHex(predicted_hex, &plan.predicted_comm_seconds) ||
      !ParseDoubleHex(total_hex, &plan.total_comm_seconds)) {
    return InvalidArgumentError("plan cache: bad plan line");
  }
  if (has_cut_units) {
    long long units = 0;
    if (!(in >> units)) {
      return InvalidArgumentError("plan cache: bad plan line");
    }
    plan.cut_value_units = static_cast<CapUnits>(units);
  }
  plan.client_instances = static_cast<uint64_t>(client_instances);
  plan.server_instances = static_cast<uint64_t>(server_instances);
  for (size_t p = 0; p < placements; ++p) {
    ClassificationId classification = kNoClassification;
    MachineId machine = kClientMachine;
    if (!(in >> tag >> classification >> machine) || tag != "place") {
      return InvalidArgumentError("plan cache: bad place line");
    }
    plan.distribution.placement[classification] = machine;
  }
  for (size_t e = 0; e < edges; ++e) {
    CutEdgeReport edge;
    std::string seconds_hex;
    if (!(in >> tag >> edge.client_side >> edge.server_side >> seconds_hex) ||
        tag != "edge" || !ParseDoubleHex(seconds_hex, &edge.seconds)) {
      return InvalidArgumentError("plan cache: bad edge line");
    }
    plan.cut_edges.push_back(edge);
  }
  return Status::Ok();
}

namespace {

// Parses the "crc <8hex>" lines terminating v4 record blocks.
bool ParseCrcLine(const std::string& line, uint32_t* out) {
  if (line.size() != 12 || line.compare(0, 4, "crc ") != 0) {
    return false;
  }
  uint32_t bits = 0;
  for (size_t i = 4; i < 12; ++i) {
    const char c = line[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    bits = (bits << 4) | static_cast<uint32_t>(digit);
  }
  *out = bits;
  return true;
}

}  // namespace

Status PlanCache::Load(const std::string& text) {
  std::istringstream in(text);
  std::string tag, version;
  size_t count = 0;
  if (!(in >> tag >> version) || tag != "plan-cache" ||
      (version != "v1" && version != "v2" && version != "v3" && version != "v4")) {
    return InvalidArgumentError("plan cache: bad header");
  }
  std::list<Entry> loaded;
  uint64_t skipped = 0;
  if (version != "v4") {
    // v1-v3 predate per-record checksums: damage cannot be localized, so
    // any malformed byte fails the whole load (original strict semantics).
    if (!(in >> count)) {
      return InvalidArgumentError("plan cache: bad header");
    }
    const bool has_loss_bucket = version != "v1";
    const bool has_cut_units = version == "v3";
    for (size_t i = 0; i < count; ++i) {
      Entry entry;
      COIGN_RETURN_IF_ERROR(ParseRecord(in, has_loss_bucket, has_cut_units, &entry));
      // File order is least-recent first; push_front keeps front = most recent.
      loaded.push_front(std::move(entry));
    }
  } else {
    // v4: scan record blocks up to their `crc` lines and verify each
    // block before trusting a word of it. A block that fails its checksum
    // — or parses to garbage under a valid one, or repeats a key — is
    // skipped and counted, never fatal. The header count is advisory
    // only: damage changes how many records survive.
    const size_t header_end = text.find('\n');
    std::vector<std::string> lines;
    if (header_end != std::string::npos) {
      std::istringstream body(text.substr(header_end + 1));
      std::string line;
      while (std::getline(body, line)) {
        lines.push_back(line);
      }
    }
    const bool unterminated = !text.empty() && text.back() != '\n';
    std::unordered_map<PlanCacheKey, char, PlanCacheKeyHash> seen;
    std::string block;
    for (size_t i = 0; i < lines.size(); ++i) {
      const bool last = i + 1 == lines.size();
      uint32_t expected = 0;
      if ((last && unterminated) || !ParseCrcLine(lines[i], &expected)) {
        block += lines[i];
        block += '\n';
        continue;
      }
      if (Crc32c(block) != expected) {
        ++skipped;
        block.clear();
        continue;
      }
      std::istringstream record_in(block);
      Entry entry;
      const Status parsed = ParseRecord(record_in, /*has_loss_bucket=*/true,
                                        /*has_cut_units=*/true, &entry);
      block.clear();
      if (!parsed.ok() || seen.count(entry.key) != 0) {
        ++skipped;
        continue;
      }
      seen.emplace(entry.key, 0);
      loaded.push_front(std::move(entry));
    }
    // Leftover block lines with no terminating crc line are a torn
    // append: the record never became durable, dropped without counting
    // as corruption.
  }

  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_.corrupt_skipped += skipped;
  if (skipped > 0 && obs_ != nullptr) {
    obs_->metrics().GetCounter("fleet.cache.corrupt_skipped")->Add(skipped);
    obs_->tracer().Instant("cache-corrupt-skip", "fleet", kTrackFleet,
                           {{"skipped", Tracer::ArgUint(skipped)}});
    obs_->Dump("cache-corrupt");
  }
  if (capacity_ == 0) {
    return Status::Ok();
  }
  for (Entry& entry : loaded) {
    if (lru_.size() >= capacity_) {
      break;  // Oldest entries beyond capacity are dropped.
    }
    if (index_.count(entry.key) != 0) {
      return InvalidArgumentError("plan cache: duplicate key in snapshot");
    }
    lru_.push_back(std::move(entry));
    index_[lru_.back().key] = std::prev(lru_.end());
  }
  return Status::Ok();
}

Status PlanCache::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("plan cache: cannot open for write: " + path);
  }
  out << Serialize();
  out.flush();
  if (!out) {
    return InternalError("plan cache: write failed: " + path);
  }
  return Status::Ok();
}

Status PlanCache::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("plan cache: cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Load(buffer.str());
}

}  // namespace coign
