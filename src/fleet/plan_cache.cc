#include "src/fleet/plan_cache.h"

#include "src/support/str_util.h"

namespace coign {

std::string PlanCacheStats::ToString() const {
  return StrFormat("plan-cache{hits=%llu, misses=%llu, hit_rate=%.1f%%, "
                   "insertions=%llu, evictions=%llu}",
                   static_cast<unsigned long long>(hits),
                   static_cast<unsigned long long>(misses), 100.0 * hit_rate(),
                   static_cast<unsigned long long>(insertions),
                   static_cast<unsigned long long>(evictions));
}

std::optional<AnalysisResult> PlanCache::Lookup(const PlanCacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // Refresh to most recent.
  return it->second->plan;
}

void PlanCache::Insert(const PlanCacheKey& key, AnalysisResult plan) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace coign
